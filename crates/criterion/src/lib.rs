//! Vendored stand-in for the `criterion` crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the subset of the criterion API the benches use is
//! implemented here: [`Criterion`], benchmark groups, [`Bencher::iter`]
//! and [`Bencher::iter_batched`], plus the [`criterion_group!`] /
//! [`criterion_main!`] entry points.
//!
//! Measurement is intentionally simple — a calibrated wall-clock loop
//! reporting the mean iteration time to stdout. There is no statistical
//! analysis, HTML report, or baseline comparison; the benches stay
//! runnable and comparable across commits on the same machine.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard compiler-fence helper, for parity with the
/// real crate's `criterion::black_box`.
pub use std::hint::black_box;

/// How much a measured routine's setup output costs to hold in memory.
/// Only a hint upstream; ignored here beyond API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; large batches are fine.
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Units for a group's reported throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per routine call.
    Elements(u64),
    /// Bytes processed per routine call.
    Bytes(u64),
}

/// A benchmark identifier built from a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone, e.g. `group/128`.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter, e.g. `group/scan/128`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    target: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            target,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes ~1/10 of the
        // measurement budget, then measure until the budget is spent.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took * 10 >= self.target || batch >= 1 << 20 {
                self.elapsed += took;
                self.iters += batch;
                break;
            }
            batch *= 4;
        }
        while self.elapsed < self.target {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
        }
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        while self.elapsed < self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters as u32
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work one routine call performs, so results
    /// are also reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; this harness calibrates by wall
    /// clock rather than a fixed sample count, so the hint is ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) {
        let mut b = Bencher::new(self.criterion.measurement_time);
        f(&mut b);
        self.report(&id.to_string(), &b);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F)
    where
        S: std::fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.measurement_time);
        f(&mut b, input);
        self.report(&id.to_string(), &b);
    }

    /// Ends the group (report output is already flushed per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.mean();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let per_sec = n as f64 / mean.as_secs_f64();
                format!("  ({per_sec:.0} elem/s)")
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                let per_sec = n as f64 / mean.as_secs_f64();
                format!("  ({:.1} MiB/s)", per_sec / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<28} time: {:>12}{rate}   ({} iters)",
            self.name,
            id,
            fmt_duration(mean),
            b.iters
        );
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let measurement_time = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or_else(|| Duration::from_millis(300));
        Criterion { measurement_time }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        println!(
            "{:<36} time: {:>12}   ({} iters)",
            id,
            fmt_duration(b.mean()),
            b.iters
        );
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert!(b.iters > 0);
        assert!(b.mean() < Duration::from_millis(5));
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::from_parameter(42), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
