//! Vendored stand-in for the `criterion` crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the subset of the criterion API the benches use is
//! implemented here: [`Criterion`], benchmark groups, [`Bencher::iter`]
//! and [`Bencher::iter_batched`], plus the [`criterion_group!`] /
//! [`criterion_main!`] entry points.
//!
//! Measurement is intentionally simple — a calibrated wall-clock loop
//! split into batches, reporting the lower/median/upper per-iteration
//! batch means to stdout (the same three-number shape real criterion
//! prints, so `reports/bench_summary.txt` and the `xtask bench-compare`
//! tooling parse both). There is no statistical analysis or HTML report;
//! the benches stay runnable and comparable across commits on the same
//! machine.
//!
//! Passing `--test` (as `cargo bench -- --test` does for smoke-testing
//! bench code) switches to a minimal measurement budget so every bench
//! executes at least once without burning CI time.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard compiler-fence helper, for parity with the
/// real crate's `criterion::black_box`.
pub use std::hint::black_box;

/// How much a measured routine's setup output costs to hold in memory.
/// Only a hint upstream; ignored here beyond API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; large batches are fine.
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Units for a group's reported throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per routine call.
    Elements(u64),
    /// Bytes processed per routine call.
    Bytes(u64),
}

/// A benchmark identifier built from a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone, e.g. `group/128`.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter, e.g. `group/scan/128`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One timed batch: total wall time over `iters` routine calls.
#[derive(Debug, Clone, Copy)]
struct Sample {
    elapsed: Duration,
    iters: u64,
}

impl Sample {
    fn per_iter_ns(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.iters as f64
        }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    target: Duration,
    samples: Vec<Sample>,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            target,
            samples: Vec::new(),
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        self.samples.push(Sample { elapsed, iters });
        self.elapsed += elapsed;
        self.iters += iters;
    }

    /// Times `routine` over a calibrated number of iterations, collecting
    /// per-batch samples for the lower/median/upper report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes ~1/10 of the
        // measurement budget, then measure until the budget is spent.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took * 10 >= self.target || batch >= 1 << 20 {
                self.record(took, batch);
                break;
            }
            batch *= 4;
        }
        while self.elapsed < self.target {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.record(start.elapsed(), batch);
        }
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        while self.elapsed < self.target || self.samples.is_empty() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.record(start.elapsed(), 1);
        }
    }

    fn mean(&self) -> Duration {
        (self.elapsed.as_nanos() as u64)
            .checked_div(self.iters)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// `(lower, median, upper)` of the per-iteration batch means, in
    /// nanoseconds. With a single batch all three collapse to its mean.
    fn spread_ns(&self) -> (f64, f64, f64) {
        let mut per: Vec<f64> = self.samples.iter().map(Sample::per_iter_ns).collect();
        if per.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        per.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = if per.len() % 2 == 1 {
            per[per.len() / 2]
        } else {
            (per[per.len() / 2 - 1] + per[per.len() / 2]) / 2.0
        };
        (per[0], median, *per.last().expect("non-empty"))
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.4} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.4} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.4} ms", ns / 1_000_000.0)
    } else {
        format!("{:.4} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the amount of work one routine call performs, so results
    /// are also reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; this harness calibrates by wall
    /// clock rather than a fixed sample count, so the hint is ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) {
        let mut b = Bencher::new(self.criterion.measurement_time);
        f(&mut b);
        self.report(&id.to_string(), &b);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F)
    where
        S: std::fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.measurement_time);
        f(&mut b, input);
        self.report(&id.to_string(), &b);
    }

    /// Ends the group (report output is already flushed per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.mean();
        let (lo, med, hi) = b.spread_ns();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let per_sec = n as f64 / mean.as_secs_f64();
                format!("  ({per_sec:.0} elem/s)")
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                let per_sec = n as f64 / mean.as_secs_f64();
                format!("  ({:.1} MiB/s)", per_sec / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<28} time: [{} {} {}]{rate}   ({} iters)",
            self.name,
            id,
            fmt_ns(lo),
            fmt_ns(med),
            fmt_ns(hi),
            b.iters
        );
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks for a smoke run: execute every
        // bench once-ish, skip real measurement.
        let smoke = std::env::args().any(|a| a == "--test");
        let measurement_time = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or_else(|| Duration::from_millis(if smoke { 1 } else { 300 }));
        Criterion { measurement_time }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        let (lo, med, hi) = b.spread_ns();
        println!(
            "{:<36} time: [{} {} {}]   ({} iters)",
            id,
            fmt_ns(lo),
            fmt_ns(med),
            fmt_ns(hi),
            b.iters
        );
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert!(b.iters > 0);
        assert!(b.mean() < Duration::from_millis(5));
        let (lo, med, hi) = b.spread_ns();
        assert!(lo <= med && med <= hi);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher::new(Duration::from_millis(2));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn spread_is_ordered_and_median_is_central() {
        let mut b = Bencher::new(Duration::ZERO);
        for (ns, iters) in [(100u64, 1u64), (300, 1), (200, 1)] {
            b.record(Duration::from_nanos(ns), iters);
        }
        let (lo, med, hi) = b.spread_ns();
        assert_eq!((lo, med, hi), (100.0, 200.0, 300.0));
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(1),
        };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::from_parameter(42), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
