//! Vendored stand-in for the `rand` crate.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the small subset of the `rand` 0.9 API the simulator
//! actually uses is implemented here: a seedable deterministic generator
//! ([`rngs::StdRng`]), uniform ranges ([`Rng::random_range`]), slice
//! helpers ([`seq::IndexedRandom::choose`], [`seq::SliceRandom::shuffle`]).
//!
//! The generator is xoshiro256** seeded via SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12-based `StdRng`, but everything
//! in this repository treats the RNG as an opaque deterministic function
//! of the seed, which this crate preserves: same seed, same stream, on
//! every platform.

#![warn(missing_docs)]

/// A generator that can be constructed from a numeric seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::random_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high]` (inclusive bounds).
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high, "empty sample range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                // Modulo sampling: the bias over a 64-bit draw is
                // negligible for the simulator's small ranges.
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + OneLess> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_inclusive(rng, self.start, self.end.one_less())
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Internal helper: the predecessor of a value (to turn an exclusive upper
/// bound into an inclusive one).
pub trait OneLess {
    /// `self - 1` for integers; identity minus an ulp is not needed for
    /// floats because exclusive float ranges sample `[low, high)` anyway.
    fn one_less(self) -> Self;
}

macro_rules! impl_one_less_int {
    ($($t:ty),*) => {$(
        impl OneLess for $t {
            fn one_less(self) -> Self { self - 1 }
        }
    )*};
}

impl_one_less_int!(u8, u16, u32, u64, usize, i32, i64);

impl OneLess for f64 {
    fn one_less(self) -> Self {
        // Float ranges sample [low, high); keeping the bound is correct
        // because sample_inclusive for f64 never returns `high` when the
        // unit draw is < 1.
        self
    }
}

/// The raw generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, available on every generator.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a range (`0..n`, `a..=b`, float ranges).
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A uniformly random value of a supported primitive type.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types [`Rng::random`] can produce.
pub trait Random {
    /// A uniformly random value.
    fn random<R: RngCore>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u8 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for bool {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng`; everything here
    /// only requires determinism in the seed, which this provides.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// In-place random mutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let v = rng.random_range(5u32..=5);
            assert_eq!(v, 5);
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_samples_cover_the_space() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3, 4];
        assert!(items.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "32 elements almost surely move");
    }
}
