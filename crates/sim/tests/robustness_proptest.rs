//! Property tests: the simulator is total over valid workloads and
//! arbitrary policy/selector combinations — no panic, no accounting drift.

use proptest::prelude::*;

use odbgc_sim::core_policies::{
    EstimatorKind, FixedRatePolicy, RatePolicy, SagaConfig, SagaPolicy, SaioPolicy,
};
use odbgc_sim::gc::SelectorKind;
use odbgc_sim::store::StoreConfig;
use odbgc_sim::trace::synthetic::{churn, ChurnConfig};
use odbgc_sim::{SimConfig, Simulator};

fn arb_policy() -> impl Strategy<Value = usize> {
    0usize..4
}

fn build_policy(which: usize, frac: f64, rate: u64) -> Box<dyn RatePolicy> {
    match which {
        0 => Box::new(FixedRatePolicy::new(rate)),
        1 => Box::new(SaioPolicy::with_frac(frac)),
        2 => Box::new(SagaPolicy::new(
            SagaConfig {
                dt_max: 64,
                ..SagaConfig::new(frac.min(0.5))
            },
            EstimatorKind::Oracle.build(),
        )),
        _ => Box::new(SagaPolicy::new(
            SagaConfig {
                dt_max: 64,
                ..SagaConfig::new(frac.min(0.5))
            },
            EstimatorKind::fgs_hb_default().build(),
        )),
    }
}

fn arb_selector() -> impl Strategy<Value = SelectorKind> {
    prop_oneof![
        Just(SelectorKind::UpdatedPointer),
        Just(SelectorKind::Random),
        Just(SelectorKind::RoundRobin),
        Just(SelectorKind::MostGarbageOracle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_policy_on_any_churn_workload_keeps_accounting(
        seed in any::<u64>(),
        steps in 50usize..400,
        which in arb_policy(),
        selector in arb_selector(),
        frac in 0.02f64..0.6,
        rate in 2u64..60,
    ) {
        let cfg = ChurnConfig { steps, ..ChurnConfig::default() };
        let trace = churn(&cfg, seed);
        let sim_config = SimConfig {
            store: StoreConfig::tiny(),
            selector,
            selector_seed: seed,
            preamble_collections: 2,
            // Deep audit after every collection: remsets, refcounts,
            // extents, ledgers.
            deep_checks: true,
            exact_oracle_recompute: true,
            shadow_estimator: Some(EstimatorKind::fgs_hb_default()),
            gc_workers: None,
        };
        let mut policy = build_policy(which, frac, rate);
        let r = Simulator::new(sim_config)
            .replay(&trace, policy.as_mut(), odbgc_sim::ReplayOptions::new())
            .expect("synthetic workloads always replay");
        // Conservation holds for every combination.
        prop_assert_eq!(
            r.total_garbage_generated,
            r.total_garbage_collected + r.final_garbage_bytes
        );
        prop_assert!(r.final_db_size >= r.final_live_bytes);
        prop_assert_eq!(r.events_replayed, trace.len() as u64);
        // Series totals agree with ledgers.
        let gc_io: u64 = r.collections.iter().map(|c| c.gc_io).sum();
        prop_assert_eq!(gc_io, r.gc_io_total);
    }

    /// The parallel collector's deterministic reduction: any GC worker
    /// count must produce the *identical* `RunResult` as the sequential
    /// collector, for arbitrary workloads, policies, and selectors, with
    /// deep consistency audits on after every collection.
    #[test]
    fn gc_worker_count_never_changes_results(
        seed in any::<u64>(),
        steps in 50usize..300,
        which in arb_policy(),
        selector in arb_selector(),
        frac in 0.02f64..0.6,
        rate in 2u64..60,
        workers in 2usize..9,
    ) {
        let cfg = ChurnConfig { steps, ..ChurnConfig::default() };
        let trace = churn(&cfg, seed);
        let base = SimConfig {
            store: StoreConfig::tiny(),
            selector,
            selector_seed: seed,
            preamble_collections: 2,
            deep_checks: true,
            ..SimConfig::default()
        };
        let run = |gc_workers: usize| {
            let mut policy = build_policy(which, frac, rate);
            Simulator::new(SimConfig { gc_workers: Some(gc_workers), ..base.clone() })
                .replay(&trace, policy.as_mut(), odbgc_sim::ReplayOptions::new())
                .expect("synthetic workloads always replay")
        };
        let sequential = run(1);
        let parallel = run(workers);
        prop_assert_eq!(sequential, parallel);
    }

    #[test]
    fn simulation_of_merged_workloads_is_total(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        interleave_seed in any::<u64>(),
    ) {
        let cfg = ChurnConfig { steps: 150, ..ChurnConfig::default() };
        let a = churn(&cfg, seed_a);
        let b = churn(&cfg, seed_b);
        let merged = odbgc_sim::trace::merge::interleave(&[a, b], interleave_seed);
        let mut policy = SaioPolicy::with_frac(0.1);
        let r = Simulator::new(SimConfig {
            store: StoreConfig::tiny(),
            preamble_collections: 2,
            deep_checks: true,
            ..SimConfig::default()
        })
        .replay(&merged, &mut policy, odbgc_sim::ReplayOptions::new())
        .expect("merged synthetic workloads replay");
        prop_assert_eq!(r.events_replayed, merged.len() as u64);
    }
}
