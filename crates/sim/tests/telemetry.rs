//! Acceptance tests for the telemetry layer (ISSUE 4).
//!
//! These pin the contract the CLI and CI rely on: telemetry is a pure
//! observer (identical `RunResult`), the decision log is complete, the
//! JSON export round-trips byte-identically, and plan telemetry is
//! deterministic across worker counts once wall-clock fields are
//! stripped.

use odbgc_sim::core_policies::{
    EstimatorKind, PolicySpec, RatePolicy, SagaConfig, SagaPolicy, SaioPolicy,
};
use odbgc_sim::oo7::{Oo7App, Oo7Params};
use odbgc_sim::trace::Trace;
use odbgc_sim::{
    verify_header, ExperimentPlan, Json, PlanTelemetry, ReplayOptions, RunTelemetry, SimConfig,
    Simulator,
};

fn tiny_trace(seed: u64) -> Trace {
    Oo7App::standard(Oo7Params::tiny(), seed).generate().0
}

#[test]
fn telemetry_is_a_pure_observer_of_the_run() {
    let trace = tiny_trace(11);
    let sim = Simulator::new(SimConfig::tiny());
    let plain = {
        let mut p = SaioPolicy::with_frac(0.08);
        sim.replay(&trace, &mut p, ReplayOptions::new())
            .expect("run")
    };
    let (instrumented, telemetry) = {
        let mut p = SaioPolicy::with_frac(0.08);
        let mut sink = RunTelemetry::new(p.name());
        let r = sim
            .replay(&trace, &mut p, ReplayOptions::new().telemetry(&mut sink))
            .expect("run");
        (r, sink)
    };
    assert_eq!(plain, instrumented, "telemetry must not perturb the run");
    assert_eq!(
        telemetry.decisions.len() as u64,
        plain.collection_count(),
        "one decision record per collection"
    );
}

#[test]
fn run_export_round_trips_byte_identically() {
    let trace = tiny_trace(12);
    let sim = Simulator::new(SimConfig::tiny());
    let mut policy = SagaPolicy::new(SagaConfig::new(0.10), EstimatorKind::CgsCb.build());
    let mut telemetry = RunTelemetry::new(policy.name());
    sim.replay(
        &trace,
        &mut policy,
        ReplayOptions::new().telemetry(&mut telemetry),
    )
    .expect("run");
    let doc = telemetry.to_json();
    let text = doc.to_string_pretty();
    let reparsed = Json::parse(&text).expect("export must parse");
    assert_eq!(
        reparsed.to_string_pretty(),
        text,
        "parse → re-emit must be byte-identical"
    );
    assert_eq!(verify_header(&reparsed).as_deref(), Ok("run"));
    // The exported decision count agrees with the in-memory log.
    let decisions = reparsed.get("decisions").and_then(Json::as_arr).unwrap();
    assert_eq!(decisions.len(), telemetry.decisions.len());
    assert_eq!(
        reparsed.get("decision_count").and_then(Json::as_u64),
        Some(decisions.len() as u64)
    );
}

#[test]
fn decision_records_expose_estimator_error_against_exact_garbage() {
    let trace = tiny_trace(13);
    let mut cfg = SimConfig::tiny();
    cfg.shadow_estimator = Some(EstimatorKind::Oracle);
    let sim = Simulator::new(cfg);
    let mut policy = SaioPolicy::with_frac(0.10);
    let mut telemetry = RunTelemetry::new(policy.name());
    sim.replay(
        &trace,
        &mut policy,
        ReplayOptions::new().telemetry(&mut telemetry),
    )
    .expect("run");
    assert!(!telemetry.decisions.is_empty());
    for d in &telemetry.decisions {
        // The shadow oracle is exact, so the signed error is zero.
        assert_eq!(d.estimate_error(), Some(0.0));
    }
}

fn tiny_plan() -> ExperimentPlan {
    ExperimentPlan::new(Oo7Params::tiny(), &[1, 2, 3], SimConfig::tiny()).cells([
        (5.0, PolicySpec::saio(0.05)),
        (10.0, PolicySpec::saio(0.10)),
        (
            10.0,
            PolicySpec::saga_dt_max(0.10, EstimatorKind::Oracle, 20),
        ),
    ])
}

#[test]
fn plan_telemetry_is_identical_across_worker_counts_modulo_wall_time() {
    let plan = tiny_plan();
    let serial = plan.run_with_jobs(Some(1));
    let parallel = plan.run_with_jobs(Some(8));
    let a = PlanTelemetry::from_outcome(&plan, &serial)
        .to_json()
        .strip_volatile()
        .to_string_pretty();
    let b = PlanTelemetry::from_outcome(&plan, &parallel)
        .to_json()
        .strip_volatile()
        .to_string_pretty();
    assert_eq!(a, b, "jobs=1 and jobs=8 must agree after stripping timing");
}

#[test]
fn plan_export_parses_and_carries_the_header() {
    let plan = tiny_plan();
    let outcome = plan.run();
    let telemetry = PlanTelemetry::from_outcome(&plan, &outcome);
    let text = telemetry.to_json().to_string_pretty();
    let doc = Json::parse(&text).expect("plan export must parse");
    assert_eq!(verify_header(&doc).as_deref(), Ok("plan"));
    assert_eq!(doc.get("failure_count").and_then(Json::as_u64), Some(0));
    let cells = doc.get("cells").and_then(Json::as_arr).unwrap();
    assert_eq!(cells.len(), plan.cells.len());
    for cell in cells {
        let runs = cell.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), plan.seeds.len());
    }
}

#[test]
fn stripping_volatile_keys_removes_all_wall_clock_fields() {
    let plan = tiny_plan();
    let outcome = plan.run();
    let stripped = PlanTelemetry::from_outcome(&plan, &outcome)
        .to_json()
        .strip_volatile()
        .to_string_pretty();
    assert!(!stripped.contains("\"timing\""));
    assert!(!stripped.contains("\"wall_"));
}
