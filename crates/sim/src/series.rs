//! Per-collection time series (the raw material of Figures 6 and 7).
//!
//! The record type lives in `odbgc-engine` (the engine appends one per
//! collection, replayed or live); this module re-exports it under its
//! historical path.

pub use odbgc_engine::CollectionRecord;
