//! Simulation configuration.
//!
//! The configuration type lives in `odbgc-engine` now that the replay
//! loop's core is the shared [`odbgc_engine::StoreEngine`]; a simulation
//! run is just an engine driven by a trace, so the two drivers share one
//! configuration. This module re-exports it under its historical name.

pub use odbgc_engine::EngineConfig as SimConfig;
