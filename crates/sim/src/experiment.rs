//! Multi-seed experiment running and aggregation.
//!
//! The paper's accuracy figures plot, for each requested setting, the mean
//! over 10 runs differing only in the random seed, with error bars at the
//! min and max of the per-run means (§4.1). This module reproduces that
//! protocol: generate one OO7 trace per seed, simulate each under a fresh
//! policy instance, and aggregate.

use std::thread;

use odbgc_core::RatePolicy;
use odbgc_oo7::{Oo7App, Oo7Params};
use odbgc_trace::Trace;

use crate::config::SimConfig;
use crate::simulator::{RunResult, Simulator};

/// One aggregated sweep point: requested setting `x`, achieved
/// min/mean/max across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The requested setting (the x-axis value).
    pub x: f64,
    /// Mean achieved value across runs.
    pub mean: f64,
    /// Minimum achieved value (lower error bar).
    pub min: f64,
    /// Maximum achieved value (upper error bar).
    pub max: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

/// Aggregates per-run scalar values into a sweep point.
///
/// Total on its input: an empty slice (every run left the scalar
/// undefined, e.g. no collections fired in the measured window) yields
/// `runs: 0` with NaN statistics, which reports render as "-".
pub fn sweep_point(x: f64, values: &[f64]) -> SweepPoint {
    if values.is_empty() {
        return SweepPoint {
            x,
            mean: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            runs: 0,
        };
    }
    let sum: f64 = values.iter().sum();
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    SweepPoint {
        x,
        mean: sum / values.len() as f64,
        min,
        max,
        runs: values.len(),
    }
}

/// The runs of one experiment configuration across seeds.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// One result per seed, in seed order.
    pub runs: Vec<RunResult>,
}

impl ExperimentOutcome {
    /// Extracts one scalar per run, skipping runs where it is undefined.
    pub fn scalar(&self, f: impl Fn(&RunResult) -> Option<f64>) -> Vec<f64> {
        self.runs.iter().filter_map(f).collect()
    }

    /// Achieved GC-I/O percentages (measured window).
    pub fn gc_io_pcts(&self) -> Vec<f64> {
        self.scalar(|r| r.gc_io_pct)
    }

    /// Achieved mean garbage percentages (measured window).
    pub fn garbage_pcts(&self) -> Vec<f64> {
        self.scalar(|r| r.garbage_pct_mean)
    }
}

/// Generates one OO7 trace per seed and runs each under a fresh policy
/// from `make_policy`, in parallel.
#[deprecated(
    since = "0.2.0",
    note = "build an `ExperimentPlan` of `PolicySpec` cells and call \
            `run()` — see `crate::runner`; this closure-based shim will \
            be removed after one release"
)]
pub fn run_oo7_experiment<F>(
    params: Oo7Params,
    seeds: &[u64],
    config: &SimConfig,
    make_policy: F,
) -> ExperimentOutcome
where
    F: Fn() -> Box<dyn RatePolicy> + Sync,
{
    let runs: Vec<RunResult> = thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let config = config.clone();
                let make_policy = &make_policy;
                scope.spawn(move || {
                    let (trace, _chars) = Oo7App::standard(params, seed).generate();
                    let sim = Simulator::new(config);
                    let mut policy = make_policy();
                    sim.run(&trace, policy.as_mut())
                        .expect("OO7 trace must replay cleanly")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("run panicked"))
            .collect()
    });
    ExperimentOutcome { runs }
}

/// Runs a single seed on a pre-generated trace (for time-series figures).
pub fn run_single(trace: &Trace, config: &SimConfig, policy: &mut dyn RatePolicy) -> RunResult {
    Simulator::new(config.clone())
        .run(trace, policy)
        .expect("trace must replay cleanly")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use odbgc_core::SaioPolicy;

    #[test]
    fn sweep_point_statistics() {
        let p = sweep_point(5.0, &[4.0, 6.0, 5.0]);
        assert_eq!(p.mean, 5.0);
        assert_eq!(p.min, 4.0);
        assert_eq!(p.max, 6.0);
        assert_eq!(p.runs, 3);
    }

    #[test]
    fn empty_sweep_point_is_nan_with_zero_runs() {
        let p = sweep_point(1.0, &[]);
        assert_eq!(p.x, 1.0);
        assert_eq!(p.runs, 0);
        assert!(p.mean.is_nan() && p.min.is_nan() && p.max.is_nan());
    }

    #[test]
    fn multi_seed_experiment_produces_one_run_per_seed() {
        let outcome = run_oo7_experiment(Oo7Params::tiny(), &[1, 2, 3], &SimConfig::tiny(), || {
            Box::new(SaioPolicy::with_frac(0.10))
        });
        assert_eq!(outcome.runs.len(), 3);
        // Different seeds → different traces → (almost surely) different
        // I/O totals; at minimum the runs all completed with collections.
        for r in &outcome.runs {
            assert!(r.collection_count() > 0);
        }
    }

    #[test]
    fn experiment_is_reproducible() {
        let run = || {
            run_oo7_experiment(Oo7Params::tiny(), &[5, 6], &SimConfig::tiny(), || {
                Box::new(SaioPolicy::with_frac(0.05))
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.gc_io_total, y.gc_io_total);
            assert_eq!(x.garbage_pct_mean, y.garbage_pct_mean);
        }
    }
}
