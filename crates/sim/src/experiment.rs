//! Multi-seed experiment aggregation.
//!
//! The paper's accuracy figures plot, for each requested setting, the mean
//! over 10 runs differing only in the random seed, with error bars at the
//! min and max of the per-run means (§4.1). This module reproduces that
//! protocol's aggregation side: an [`ExperimentOutcome`] keeps one result
//! per seed — a successful [`RunResult`] or the [`JobError`] that replaced
//! it — and the scalar extractors aggregate over the successes only, so a
//! failed seed shrinks the run count instead of poisoning the statistics
//! (reports already render the empty case as "-").
//!
//! Experiment *execution* lives in [`crate::runner`]: build an
//! [`crate::ExperimentPlan`] of [`odbgc_core::PolicySpec`] cells and call
//! `run()`.

use odbgc_core::RatePolicy;
use odbgc_trace::Trace;

use crate::config::SimConfig;
use crate::runner::JobError;
use crate::simulator::{RunResult, SimError, Simulator};

/// One aggregated sweep point: requested setting `x`, achieved
/// min/mean/max across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The requested setting (the x-axis value).
    pub x: f64,
    /// Mean achieved value across runs.
    pub mean: f64,
    /// Minimum achieved value (lower error bar).
    pub min: f64,
    /// Maximum achieved value (upper error bar).
    pub max: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

/// Aggregates per-run scalar values into a sweep point.
///
/// Total on its input: an empty slice (every run left the scalar
/// undefined — no collections fired in the measured window, or every
/// seed's job failed) yields `runs: 0` with NaN statistics, which reports
/// render as "-".
pub fn sweep_point(x: f64, values: &[f64]) -> SweepPoint {
    if values.is_empty() {
        return SweepPoint {
            x,
            mean: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            runs: 0,
        };
    }
    let sum: f64 = values.iter().sum();
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    SweepPoint {
        x,
        mean: sum / values.len() as f64,
        min,
        max,
        runs: values.len(),
    }
}

/// The runs of one experiment configuration across seeds.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// One result per seed, in seed order; a failed job keeps its
    /// structured error in place of the result.
    pub runs: Vec<Result<RunResult, JobError>>,
}

impl ExperimentOutcome {
    /// The successful runs, in seed order.
    pub fn successes(&self) -> impl Iterator<Item = &RunResult> {
        self.runs.iter().filter_map(|r| r.as_ref().ok())
    }

    /// The failed jobs, in seed order.
    pub fn failures(&self) -> impl Iterator<Item = &JobError> {
        self.runs.iter().filter_map(|r| r.as_ref().err())
    }

    /// Extracts one scalar per successful run, skipping failed jobs and
    /// runs where the scalar is undefined.
    pub fn scalar(&self, f: impl Fn(&RunResult) -> Option<f64>) -> Vec<f64> {
        self.successes().filter_map(f).collect()
    }

    /// Achieved GC-I/O percentages (measured window).
    pub fn gc_io_pcts(&self) -> Vec<f64> {
        self.scalar(|r| r.gc_io_pct)
    }

    /// Achieved mean garbage percentages (measured window).
    pub fn garbage_pcts(&self) -> Vec<f64> {
        self.scalar(|r| r.garbage_pct_mean)
    }
}

/// Runs a single seed on a pre-generated trace (for time-series figures).
///
/// Returns the simulator's error instead of panicking, so callers decide
/// whether a malformed trace is fatal.
pub fn run_single(
    trace: &Trace,
    config: &SimConfig,
    policy: &mut dyn RatePolicy,
) -> Result<RunResult, SimError> {
    Simulator::new(config.clone())
        .replay(trace, policy, crate::simulator::ReplayOptions::new())
        .map_err(crate::simulator::ReplayError::into_sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{ExperimentPlan, JobErrorKind};
    use odbgc_core::{PolicySpec, SaioPolicy};
    use odbgc_oo7::{Oo7App, Oo7Params};

    #[test]
    fn sweep_point_statistics() {
        let p = sweep_point(5.0, &[4.0, 6.0, 5.0]);
        assert_eq!(p.mean, 5.0);
        assert_eq!(p.min, 4.0);
        assert_eq!(p.max, 6.0);
        assert_eq!(p.runs, 3);
    }

    #[test]
    fn empty_sweep_point_is_nan_with_zero_runs() {
        let p = sweep_point(1.0, &[]);
        assert_eq!(p.x, 1.0);
        assert_eq!(p.runs, 0);
        assert!(p.mean.is_nan() && p.min.is_nan() && p.max.is_nan());
    }

    #[test]
    fn multi_seed_plan_produces_one_run_per_seed() {
        let outcome = ExperimentPlan::new(Oo7Params::tiny(), &[1, 2, 3], SimConfig::tiny())
            .cell(10.0, PolicySpec::saio(0.10))
            .run();
        let cell = &outcome.cells[0].outcome;
        assert_eq!(cell.runs.len(), 3);
        // Different seeds → different traces → (almost surely) different
        // I/O totals; at minimum the runs all completed with collections.
        for r in cell.successes() {
            assert!(r.collection_count() > 0);
        }
        assert_eq!(cell.successes().count(), 3);
    }

    #[test]
    fn experiment_is_reproducible() {
        let run = || {
            ExperimentPlan::new(Oo7Params::tiny(), &[5, 6], SimConfig::tiny())
                .cell(5.0, PolicySpec::saio(0.05))
                .run()
        };
        let a = run();
        let b = run();
        for (x, y) in a.cells[0]
            .outcome
            .successes()
            .zip(b.cells[0].outcome.successes())
        {
            assert_eq!(x.gc_io_total, y.gc_io_total);
            assert_eq!(x.garbage_pct_mean, y.garbage_pct_mean);
        }
    }

    #[test]
    fn scalars_skip_failed_runs() {
        let sim_fail = || JobError {
            cell_index: 0,
            spec: PolicySpec::saio(0.10),
            seed: 2,
            kind: JobErrorKind::Panicked("boom".into()),
        };
        let (trace, _) = Oo7App::standard(Oo7Params::tiny(), 1).generate();
        let mut policy = SaioPolicy::with_frac(0.10);
        let good = run_single(&trace, &SimConfig::tiny(), &mut policy).expect("replays");
        let outcome = ExperimentOutcome {
            runs: vec![Ok(good), Err(sim_fail())],
        };
        assert_eq!(outcome.successes().count(), 1);
        assert_eq!(outcome.failures().count(), 1);
        let pcts = outcome.gc_io_pcts();
        assert_eq!(pcts.len(), 1, "failed run must not contribute a value");
        let p = sweep_point(10.0, &pcts);
        assert_eq!(p.runs, 1);
    }

    #[test]
    fn run_single_surfaces_sim_errors() {
        let mut b = odbgc_trace::TraceBuilder::new();
        b.access(odbgc_trace::ObjectId::new(42));
        let trace = b.finish();
        let mut policy = SaioPolicy::with_frac(0.10);
        let e = run_single(&trace, &SimConfig::tiny(), &mut policy).unwrap_err();
        assert_eq!(e.event_index, 0);
    }
}
