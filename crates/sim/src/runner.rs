//! Data-driven experiment execution.
//!
//! The paper's figures are grids: a list of requested settings (the
//! x-axis) × a list of seeds, every cell simulated identically and then
//! aggregated (§4.1). This module makes that grid a value — an
//! [`ExperimentPlan`] of [`PolicySpec`] cells — and executes it on a
//! fixed-size worker pool:
//!
//! * **Flattening.** The plan is flattened to (cell × seed) jobs pulled
//!   from a shared work queue by `N` threads (`N` from an explicit
//!   override, the `ODBGC_JOBS` environment variable, or
//!   [`std::thread::available_parallelism`], in that order).
//! * **Trace memoisation.** Every cell of a column replays the same OO7
//!   trace, so traces are built exactly once per (params, seed) in a
//!   shared [`TraceCache`] and handed out as `Arc`s. [`CacheStats`]
//!   counts hits and misses so tests can assert the exactly-once
//!   property.
//! * **Deterministic reduction.** Results land in pre-assigned slots and
//!   are reduced in (cell, seed) order, so the outcome is identical for
//!   any thread count — `--jobs 1` and `--jobs 8` agree byte for byte.
//! * **Timing.** Each job's wall time is recorded alongside its result
//!   and surfaced per cell and per plan for reports.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use odbgc_core::PolicySpec;
use odbgc_oo7::{Oo7App, Oo7Params};
use odbgc_trace::Trace;

use crate::config::SimConfig;
use crate::experiment::ExperimentOutcome;
use crate::simulator::{RunResult, Simulator};

/// One cell of an experiment grid: a requested setting and the policy
/// that should achieve it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCell {
    /// The requested setting (the x-axis value, e.g. a percentage).
    pub x: f64,
    /// The policy to run in this cell.
    pub spec: PolicySpec,
}

/// A complete experiment as data: workload parameters, seeds, simulator
/// configuration, and the grid cells to run.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// OO7 database/workload parameters (shared by every cell).
    pub params: Oo7Params,
    /// Seeds, one trace per seed (shared by every cell).
    pub seeds: Vec<u64>,
    /// Simulator configuration (shared by every cell).
    pub config: SimConfig,
    /// The grid cells, in report order.
    pub cells: Vec<PlanCell>,
}

impl ExperimentPlan {
    /// A plan with no cells yet.
    pub fn new(params: Oo7Params, seeds: &[u64], config: SimConfig) -> Self {
        ExperimentPlan {
            params,
            seeds: seeds.to_vec(),
            config,
            cells: Vec::new(),
        }
    }

    /// Adds one grid cell.
    pub fn cell(mut self, x: f64, spec: PolicySpec) -> Self {
        self.cells.push(PlanCell { x, spec });
        self
    }

    /// Adds one cell per (x, spec) pair.
    pub fn cells(mut self, cells: impl IntoIterator<Item = (f64, PolicySpec)>) -> Self {
        self.cells
            .extend(cells.into_iter().map(|(x, spec)| PlanCell { x, spec }));
        self
    }

    /// Executes the plan; worker count from [`default_jobs`].
    pub fn run(&self) -> PlanOutcome {
        self.run_with_jobs(None)
    }

    /// Executes the plan on `jobs` workers (`None` → [`default_jobs`]).
    pub fn run_with_jobs(&self, jobs: Option<usize>) -> PlanOutcome {
        run_plan(self, jobs)
    }
}

/// Trace-cache hit/miss counts for one plan execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from an already-built trace.
    pub hits: u64,
    /// Lookups that had to build the trace (exactly one per seed).
    pub misses: u64,
}

/// Builds each (params, seed) trace exactly once and shares it between
/// all jobs that replay it.
pub struct TraceCache {
    params: Oo7Params,
    slots: Vec<(u64, OnceLock<Arc<Trace>>)>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceCache {
    /// An empty cache for the given workload over the given seeds.
    pub fn new(params: Oo7Params, seeds: &[u64]) -> Self {
        TraceCache {
            params,
            slots: seeds.iter().map(|&s| (s, OnceLock::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The trace for `seed`, building it on first use.
    ///
    /// Concurrent callers for the same seed block on the single builder
    /// (via [`OnceLock`]), so the build happens exactly once; the miss
    /// counter is bumped only inside the build, making `misses` the
    /// exact number of traces generated.
    pub fn get(&self, seed: u64) -> Arc<Trace> {
        let slot = self
            .slots
            .iter()
            .find(|(s, _)| *s == seed)
            .map(|(_, slot)| slot)
            .unwrap_or_else(|| panic!("seed {seed} not in plan"));
        let mut built = false;
        let trace = slot.get_or_init(|| {
            built = true;
            self.misses.fetch_add(1, Ordering::Relaxed);
            let (trace, _chars) = Oo7App::standard(self.params, seed).generate();
            Arc::new(trace)
        });
        if !built {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(trace)
    }

    /// Hit/miss counts so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The results of one plan cell across all seeds.
#[derive(Debug)]
pub struct CellOutcome {
    /// The requested setting, copied from the cell.
    pub x: f64,
    /// The policy spec, copied from the cell.
    pub spec: PolicySpec,
    /// One result per seed, in seed order.
    pub outcome: ExperimentOutcome,
    /// Per-seed job wall time, in seed order.
    pub wall_times: Vec<Duration>,
}

impl CellOutcome {
    /// Total wall time spent on this cell's jobs (sum over seeds; under
    /// parallel execution this exceeds elapsed time).
    pub fn cpu_time(&self) -> Duration {
        self.wall_times.iter().sum()
    }
}

/// The results of a whole plan.
#[derive(Debug)]
pub struct PlanOutcome {
    /// One outcome per plan cell, in plan order.
    pub cells: Vec<CellOutcome>,
    /// Trace-cache statistics for the execution.
    pub cache: CacheStats,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Elapsed wall time for the whole plan.
    pub elapsed: Duration,
}

impl PlanOutcome {
    /// Total per-job wall time across all cells (the work the pool did).
    pub fn cpu_time(&self) -> Duration {
        self.cells.iter().map(CellOutcome::cpu_time).sum()
    }
}

/// The worker count used when none is given explicitly: the `ODBGC_JOBS`
/// environment variable if set and positive, otherwise
/// [`std::thread::available_parallelism`].
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("ODBGC_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn run_plan(plan: &ExperimentPlan, jobs: Option<usize>) -> PlanOutcome {
    let started = Instant::now();
    let n_seeds = plan.seeds.len();
    let n_jobs_total = plan.cells.len() * n_seeds;
    let workers = jobs
        .unwrap_or_else(default_jobs)
        .max(1)
        .min(n_jobs_total.max(1));

    let cache = TraceCache::new(plan.params, &plan.seeds);
    // One pre-assigned slot per job: job i = cell (i / seeds) × seed
    // (i % seeds). Workers only ever write their own slot, and the
    // reduction below reads the slots in order — so the outcome does not
    // depend on scheduling.
    let slots: Vec<OnceLock<(RunResult, Duration)>> =
        (0..n_jobs_total).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs_total {
                    break;
                }
                let cell = &plan.cells[i / n_seeds];
                let seed = plan.seeds[i % n_seeds];
                let job_started = Instant::now();
                let trace = cache.get(seed);
                let mut policy = cell.spec.build();
                let result = Simulator::new(plan.config.clone())
                    .run(&trace, policy.as_mut())
                    .expect("OO7 trace must replay cleanly");
                assert!(
                    slots[i].set((result, job_started.elapsed())).is_ok(),
                    "job slot written twice"
                );
            });
        }
    });

    let mut slots = slots;
    let cells = plan
        .cells
        .iter()
        .enumerate()
        .map(|(c, cell)| {
            let mut runs = Vec::with_capacity(n_seeds);
            let mut wall_times = Vec::with_capacity(n_seeds);
            for s in 0..n_seeds {
                let (result, wall) = slots[c * n_seeds + s]
                    .take()
                    .expect("every job ran to completion");
                runs.push(result);
                wall_times.push(wall);
            }
            CellOutcome {
                x: cell.x,
                spec: cell.spec.clone(),
                outcome: ExperimentOutcome { runs },
                wall_times,
            }
        })
        .collect();

    PlanOutcome {
        cells,
        cache: cache.stats(),
        jobs: workers,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_core::EstimatorKind;

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::new(Oo7Params::tiny(), &[1, 2, 3], SimConfig::tiny()).cells([
            (10.0, PolicySpec::saio(0.10)),
            (
                5.0,
                PolicySpec::saga_dt_max(0.05, EstimatorKind::Oracle, 20),
            ),
        ])
    }

    #[test]
    fn plan_runs_every_cell_for_every_seed() {
        let out = tiny_plan().run_with_jobs(Some(2));
        assert_eq!(out.cells.len(), 2);
        for cell in &out.cells {
            assert_eq!(cell.outcome.runs.len(), 3);
            assert_eq!(cell.wall_times.len(), 3);
            assert!(cell.wall_times.iter().all(|w| *w > Duration::ZERO));
        }
        assert!(out.elapsed > Duration::ZERO);
        assert!(out.cpu_time() > Duration::ZERO);
    }

    #[test]
    fn traces_are_built_exactly_once_per_seed() {
        let plan = tiny_plan();
        let out = plan.run_with_jobs(Some(4));
        // 2 cells × 3 seeds = 6 lookups; 3 builds, 3 hits.
        assert_eq!(out.cache.misses, plan.seeds.len() as u64);
        assert_eq!(
            out.cache.hits,
            (plan.cells.len() as u64 - 1) * plan.seeds.len() as u64
        );
    }

    #[test]
    fn full_saio_sweep_builds_each_trace_exactly_once() {
        // The paper's sweep protocol: 9 requested fractions × 10 seeds.
        // All 90 jobs share 10 traces; the cache must build each exactly
        // once and serve the remaining 80 lookups as hits — and the
        // parallel outcome must be identical to the serial one.
        let fracs = [0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50];
        let seeds: Vec<u64> = (1..=10).collect();
        let plan = ExperimentPlan::new(Oo7Params::tiny(), &seeds, SimConfig::tiny()).cells(
            fracs
                .iter()
                .map(|&frac| (frac * 100.0, PolicySpec::saio(frac))),
        );
        let parallel = plan.run_with_jobs(Some(8));
        assert_eq!(parallel.cache.misses, 10, "one build per seed");
        assert_eq!(parallel.cache.hits, 80, "all other lookups cached");

        let serial = plan.run_with_jobs(Some(1));
        assert_eq!(serial.cache.misses, 10);
        for (p, s) in parallel.cells.iter().zip(&serial.cells) {
            assert_eq!(p.x, s.x);
            assert_eq!(p.spec, s.spec);
            assert_eq!(p.outcome.runs, s.outcome.runs);
        }
    }

    #[test]
    fn cached_traces_are_byte_identical_to_fresh_generation() {
        let cache = TraceCache::new(Oo7Params::tiny(), &[7]);
        let first = cache.get(7);
        let second = cache.get(7);
        let fresh = Oo7App::standard(Oo7Params::tiny(), 7).generate().0;
        assert_eq!(
            odbgc_trace::codec::encode(&first),
            odbgc_trace::codec::encode(&fresh)
        );
        assert_eq!(
            odbgc_trace::codec::encode(&first),
            odbgc_trace::codec::encode(&second)
        );
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn worker_count_is_clamped_to_job_count() {
        let out = tiny_plan().run_with_jobs(Some(64));
        assert!(out.jobs <= 6, "6 jobs cannot use {} workers", out.jobs);
    }

    #[test]
    #[should_panic(expected = "not in plan")]
    fn cache_rejects_unplanned_seeds() {
        TraceCache::new(Oo7Params::tiny(), &[1]).get(2);
    }
}
