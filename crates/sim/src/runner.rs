//! Data-driven experiment execution.
//!
//! The paper's figures are grids: a list of requested settings (the
//! x-axis) × a list of seeds, every cell simulated identically and then
//! aggregated (§4.1). This module makes that grid a value — an
//! [`ExperimentPlan`] of [`PolicySpec`] cells — and executes it on a
//! fixed-size worker pool:
//!
//! * **Flattening.** The plan is flattened to (cell × seed) jobs pulled
//!   from a shared work queue by `N` threads (`N` from an explicit
//!   override, the `ODBGC_JOBS` environment variable, or
//!   [`std::thread::available_parallelism`], in that order).
//! * **Trace memoisation.** Every cell of a column replays the same OO7
//!   trace, so traces are built exactly once per (params, seed) in a
//!   shared [`TraceCache`] and handed out as `Arc`s. [`CacheStats`]
//!   counts hits and misses so tests can assert the exactly-once
//!   property.
//! * **Persistent corpus.** The in-memory cache dies with the process;
//!   an optional second tier — an on-disk [`TraceCorpus`] of binary
//!   tracefiles named by [`ExperimentPlan::corpus`] or the
//!   `ODBGC_CORPUS` environment variable — survives it. Lookups then go
//!   memory → corpus → generate, and a generated trace is installed in
//!   the corpus (atomic temp-file + rename) so *other* processes and
//!   later runs skip generation entirely. [`PlanOutcome::corpus`]
//!   reports hit/miss/generated counts and load time.
//! * **Deterministic reduction.** Results land in pre-assigned slots and
//!   are reduced in (cell, seed) order, so the outcome is identical for
//!   any thread count — `--jobs 1` and `--jobs 8` agree byte for byte,
//!   including the failure list.
//! * **Fault tolerance.** Plan execution is *total* over job failures: a
//!   [`SimError`] or a panic inside one (cell, seed) job becomes a
//!   structured [`JobError`] in that job's slot instead of unwinding the
//!   pool, so every other cell's results survive. A [`FailurePolicy`]
//!   knob selects between running the whole grid regardless
//!   ([`FailurePolicy::Continue`], the default) and stopping dispatch
//!   after the first failure ([`FailurePolicy::FailFast`]).
//! * **Timing.** Each job's wall time is recorded alongside its result
//!   and surfaced per cell and per plan for reports.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use odbgc_core::PolicySpec;
use odbgc_oo7::{Oo7App, Oo7Params};
use odbgc_trace::Trace;
use odbgc_tracefile::{CorpusKey, CorpusStats, TraceCorpus};

use crate::config::SimConfig;
use crate::experiment::ExperimentOutcome;
use crate::simulator::{RunResult, SimError, Simulator};

/// One cell of an experiment grid: a requested setting and the policy
/// that should achieve it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCell {
    /// The requested setting (the x-axis value, e.g. a percentage).
    pub x: f64,
    /// The policy to run in this cell.
    pub spec: PolicySpec,
}

/// What to do with the rest of the grid once one job has failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Run every job regardless of failures (the default): the outcome
    /// carries all successful results plus one [`JobError`] per failed
    /// job, and is byte-identical for any worker count.
    #[default]
    Continue,
    /// Stop dispatching new jobs after the first failure, but let jobs
    /// already in flight finish. Jobs never dispatched are reported as
    /// [`JobErrorKind::Skipped`]. Which jobs were in flight depends on
    /// the worker count and scheduling, so — unlike `Continue` — the
    /// outcome is not identical across worker counts.
    FailFast,
}

/// How an injected fault sabotages its job (the failure-path test rig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Replace the job's trace with one that cannot replay, producing a
    /// deterministic [`JobErrorKind::Sim`] failure.
    PoisonTrace,
    /// Panic inside the job, producing a [`JobErrorKind::Panicked`]
    /// failure with a deterministic payload.
    Panic,
}

/// A deliberate fault wired into one (cell, seed) job.
///
/// This is the injection side of the failure machinery: production plans
/// carry no faults, and tests (or `odbgc sweep --poison`) use it to
/// exercise degrade-and-report behavior on real execution paths — the
/// poisoned trace really is replayed by the [`Simulator`], and the panic
/// really unwinds through the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Index into [`ExperimentPlan::cells`] of the job to sabotage.
    pub cell_index: usize,
    /// Seed of the job to sabotage.
    pub seed: u64,
    /// The failure mode to inject.
    pub kind: FaultKind,
}

/// Why one (cell, seed) job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobErrorKind {
    /// The simulator rejected the trace.
    Sim(SimError),
    /// The job panicked; the payload is stringified.
    Panicked(String),
    /// [`FailurePolicy::FailFast`] stopped dispatch before this job
    /// started.
    Skipped,
}

impl std::fmt::Display for JobErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobErrorKind::Sim(e) => write!(f, "{e}"),
            JobErrorKind::Panicked(msg) => write!(f, "panicked: {msg}"),
            JobErrorKind::Skipped => write!(f, "skipped (fail-fast)"),
        }
    }
}

/// One failed (cell, seed) job, identifying exactly which grid point was
/// lost and why.
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// Index into [`ExperimentPlan::cells`] of the failed job.
    pub cell_index: usize,
    /// The failed cell's policy spec (its report label).
    pub spec: PolicySpec,
    /// The failed job's seed.
    pub seed: u64,
    /// What went wrong.
    pub kind: JobErrorKind,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell {} ({}) seed {}: {}",
            self.cell_index, self.spec, self.seed, self.kind
        )
    }
}

impl std::error::Error for JobError {}

/// A complete experiment as data: workload parameters, seeds, simulator
/// configuration, and the grid cells to run.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// OO7 database/workload parameters (shared by every cell).
    pub params: Oo7Params,
    /// Seeds, one trace per seed (shared by every cell).
    pub seeds: Vec<u64>,
    /// Simulator configuration (shared by every cell).
    pub config: SimConfig,
    /// The grid cells, in report order.
    pub cells: Vec<PlanCell>,
    /// What to do with the rest of the grid after a job fails.
    pub failure_policy: FailurePolicy,
    /// Deliberate faults for testing the failure machinery (empty in
    /// production plans).
    pub faults: Vec<FaultSpec>,
    /// Directory of the persistent trace corpus. `None` falls back to
    /// the `ODBGC_CORPUS` environment variable; unset means no corpus
    /// tier (traces are generated in-process as before).
    pub corpus: Option<PathBuf>,
}

impl ExperimentPlan {
    /// A plan with no cells yet.
    pub fn new(params: Oo7Params, seeds: &[u64], config: SimConfig) -> Self {
        ExperimentPlan {
            params,
            seeds: seeds.to_vec(),
            config,
            cells: Vec::new(),
            failure_policy: FailurePolicy::default(),
            faults: Vec::new(),
            corpus: None,
        }
    }

    /// Uses (and fills) the persistent trace corpus at `dir`, overriding
    /// the `ODBGC_CORPUS` environment variable.
    pub fn with_corpus(mut self, dir: impl Into<PathBuf>) -> Self {
        self.corpus = Some(dir.into());
        self
    }

    /// Adds one grid cell.
    pub fn cell(mut self, x: f64, spec: PolicySpec) -> Self {
        self.cells.push(PlanCell { x, spec });
        self
    }

    /// Adds one cell per (x, spec) pair.
    pub fn cells(mut self, cells: impl IntoIterator<Item = (f64, PolicySpec)>) -> Self {
        self.cells
            .extend(cells.into_iter().map(|(x, spec)| PlanCell { x, spec }));
        self
    }

    /// Sets the failure policy (default: [`FailurePolicy::Continue`]).
    pub fn on_failure(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Wires a deliberate fault into one (cell, seed) job.
    pub fn inject_fault(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }

    /// Executes the plan; worker count from [`default_jobs`].
    pub fn run(&self) -> PlanOutcome {
        self.run_with_jobs(None)
    }

    /// Executes the plan on `jobs` workers (`None` → [`default_jobs`]).
    pub fn run_with_jobs(&self, jobs: Option<usize>) -> PlanOutcome {
        run_plan(self, jobs, None)
    }

    /// Like [`ExperimentPlan::run_with_jobs`], invoking `progress` after
    /// every completed job with the counts so far. The callback runs on
    /// worker threads (hence `Sync`) and must be cheap; it observes
    /// execution without influencing results.
    pub fn run_with_jobs_and_progress(
        &self,
        jobs: Option<usize>,
        progress: &(dyn Fn(PlanProgress) + Sync),
    ) -> PlanOutcome {
        run_plan(self, jobs, Some(progress))
    }
}

/// A snapshot of plan execution, handed to progress callbacks after each
/// completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanProgress {
    /// Jobs finished so far (successes and failures).
    pub done: usize,
    /// Total jobs in the plan (cells × seeds).
    pub total: usize,
    /// Failures so far.
    pub failed: usize,
}

/// Trace-cache hit/miss counts for one plan execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from an already-built trace.
    pub hits: u64,
    /// Lookups that had to build the trace (exactly one per seed).
    pub misses: u64,
}

/// A cached trace plus whether it originally came from the corpus.
type TraceSlot = OnceLock<(Arc<Trace>, bool)>;

/// One seed's cache slot, with its corpus coordinates resolved up front.
struct SeedSlot {
    seed: u64,
    // Resolved once at cache construction when a corpus is attached: the
    // corpus key (workload hash × seed) and the on-disk path it maps to.
    // Sweep-loop lookups that land here repeatedly neither re-hash the
    // workload key nor re-resolve the file name per hit.
    resolved: Option<(CorpusKey, PathBuf)>,
    // Each slot remembers whether its trace originally came from the
    // corpus, so memory-tier re-serves of corpus data still count toward
    // the corpus hit tally (see `TraceCorpus::note_hit`).
    trace: TraceSlot,
}

/// Builds each (params, seed) trace exactly once per process and shares
/// it between all jobs that replay it.
///
/// With a [`TraceCorpus`] attached, an in-memory miss consults the
/// on-disk corpus before generating, and a generated trace is installed
/// there for other processes: the lookup order is memory → corpus →
/// generate.
pub struct TraceCache {
    params: Oo7Params,
    corpus: Option<TraceCorpus>,
    slots: Vec<SeedSlot>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceCache {
    /// An empty cache for the given workload over the given seeds, with
    /// no persistent tier.
    pub fn new(params: Oo7Params, seeds: &[u64]) -> Self {
        TraceCache::with_corpus(params, seeds, None)
    }

    /// An empty cache backed by the given corpus (if any). The workload
    /// cache key is computed once here — not per lookup — and each
    /// seed's corpus path is resolved once for the cache's lifetime.
    pub fn with_corpus(params: Oo7Params, seeds: &[u64], corpus: Option<TraceCorpus>) -> Self {
        let workload = corpus.as_ref().map(|_| params.cache_key());
        let slots = seeds
            .iter()
            .map(|&seed| SeedSlot {
                seed,
                resolved: corpus.as_ref().map(|c| {
                    let key = CorpusKey::new(workload.clone().expect("corpus present"), seed);
                    let path = c.path_of(&key);
                    (key, path)
                }),
                trace: OnceLock::new(),
            })
            .collect();
        TraceCache {
            params,
            corpus,
            slots,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The trace for `seed`, building it on first use.
    ///
    /// Concurrent callers for the same seed block on the single builder
    /// (via [`OnceLock`]), so the build happens exactly once; the miss
    /// counter is bumped only inside the build, making `misses` the
    /// exact number of traces materialized in this process (whether
    /// loaded from the corpus or generated).
    pub fn get(&self, seed: u64) -> Arc<Trace> {
        let slot = self
            .slots
            .iter()
            .find(|s| s.seed == seed)
            .unwrap_or_else(|| panic!("seed {seed} not in plan"));
        let mut built = false;
        let (trace, from_corpus) = slot.trace.get_or_init(|| {
            built = true;
            self.misses.fetch_add(1, Ordering::Relaxed);
            let generate = || Oo7App::standard(self.params, seed).generate().0;
            match (&self.corpus, &slot.resolved) {
                (Some(corpus), Some((key, path))) => {
                    let (trace, loaded) = corpus.load_or_generate_at(path, key, generate);
                    (Arc::new(trace), loaded)
                }
                _ => (Arc::new(generate()), false),
            }
        });
        if !built {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if *from_corpus {
                if let Some(corpus) = &self.corpus {
                    corpus.note_hit();
                }
            }
        }
        Arc::clone(trace)
    }

    /// Hit/miss counts so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Corpus-tier counters, if a corpus is attached.
    pub fn corpus_stats(&self) -> Option<CorpusStats> {
        self.corpus.as_ref().map(TraceCorpus::stats)
    }
}

/// The results of one plan cell across all seeds.
#[derive(Debug)]
pub struct CellOutcome {
    /// The requested setting, copied from the cell.
    pub x: f64,
    /// The policy spec, copied from the cell.
    pub spec: PolicySpec,
    /// One result per seed, in seed order; failed jobs keep their
    /// [`JobError`] in place so the seed alignment survives.
    pub outcome: ExperimentOutcome,
    /// Wall time of each *successful* job, in seed order (failed jobs
    /// record no duration).
    pub wall_times: Vec<Duration>,
}

impl CellOutcome {
    /// Total wall time spent on this cell's successful jobs (sum over
    /// seeds; under parallel execution this exceeds elapsed time).
    pub fn cpu_time(&self) -> Duration {
        self.wall_times.iter().sum()
    }
}

/// The results of a whole plan.
#[derive(Debug)]
pub struct PlanOutcome {
    /// One outcome per plan cell, in plan order.
    pub cells: Vec<CellOutcome>,
    /// Every failed job, in deterministic (cell, seed) order. Empty when
    /// the whole grid ran clean.
    pub failures: Vec<JobError>,
    /// Trace-cache statistics for the execution.
    pub cache: CacheStats,
    /// Persistent-corpus statistics, when a corpus was in use (via
    /// [`ExperimentPlan::corpus`] or `ODBGC_CORPUS`).
    pub corpus: Option<CorpusStats>,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Elapsed wall time for the whole plan.
    pub elapsed: Duration,
}

impl PlanOutcome {
    /// Total per-job wall time across all cells (the work the pool did).
    pub fn cpu_time(&self) -> Duration {
        self.cells.iter().map(CellOutcome::cpu_time).sum()
    }

    /// Did every job produce a result?
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The worker count used when none is given explicitly: the `ODBGC_JOBS`
/// environment variable if set and positive, otherwise
/// [`std::thread::available_parallelism`]. An `ODBGC_JOBS` value that is
/// not a positive integer is ignored with a one-line stderr warning
/// rather than silently — the same message shape
/// [`odbgc_engine::config::default_gc_workers`] uses for
/// `ODBGC_GC_WORKERS`.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("ODBGC_JOBS") {
        match odbgc_core::parse_worker_env("ODBGC_JOBS", &v, "using all available cores") {
            Ok(n) => return n,
            Err(warning) => eprintln!("{warning}"),
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The malformed trace used by [`FaultKind::PoisonTrace`]: its first
/// event touches an object that was never created, so the store rejects
/// it at event 0.
fn poison_trace() -> Trace {
    let mut b = odbgc_trace::TraceBuilder::new();
    b.access(odbgc_trace::ObjectId::new(u32::MAX as u64));
    b.finish()
}

/// Renders a panic payload for [`JobErrorKind::Panicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

fn run_plan(
    plan: &ExperimentPlan,
    jobs: Option<usize>,
    progress: Option<&(dyn Fn(PlanProgress) + Sync)>,
) -> PlanOutcome {
    let started = Instant::now();
    let n_seeds = plan.seeds.len();
    let n_jobs_total = plan.cells.len() * n_seeds;
    let workers = jobs
        .unwrap_or_else(default_jobs)
        .max(1)
        .min(n_jobs_total.max(1));
    let fail_fast = plan.failure_policy == FailurePolicy::FailFast;

    let corpus = match &plan.corpus {
        Some(dir) => match TraceCorpus::open(dir) {
            Ok(corpus) => Some(corpus),
            Err(e) => {
                eprintln!(
                    "odbgc: trace corpus {} unusable ({e}); generating traces instead",
                    dir.display()
                );
                None
            }
        },
        None => TraceCorpus::from_env(),
    };
    let cache = TraceCache::with_corpus(plan.params, &plan.seeds, corpus);
    // One pre-assigned slot per job: job i = cell (i / seeds) × seed
    // (i % seeds). Workers only ever write their own slot, and the
    // reduction below reads the slots in order — so the outcome does not
    // depend on scheduling.
    let slots: Vec<OnceLock<Result<(RunResult, Duration), JobError>>> =
        (0..n_jobs_total).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let done = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);

    // One job, total over its own failures: a trace that will not replay
    // surfaces as `Sim`, a panic anywhere inside the policy, store,
    // collector, or simulator is caught and surfaces as `Panicked`.
    let run_job = |i: usize| -> Result<(RunResult, Duration), JobError> {
        let cell_index = i / n_seeds;
        let cell = &plan.cells[cell_index];
        let seed = plan.seeds[i % n_seeds];
        let fault = plan
            .faults
            .iter()
            .find(|f| f.cell_index == cell_index && f.seed == seed);
        let job_started = Instant::now();
        let sim_result = catch_unwind(AssertUnwindSafe(|| {
            if matches!(fault, Some(f) if f.kind == FaultKind::Panic) {
                panic!("injected fault: cell {cell_index} seed {seed}");
            }
            let trace = match fault {
                Some(f) if f.kind == FaultKind::PoisonTrace => Arc::new(poison_trace()),
                _ => cache.get(seed),
            };
            let mut policy = cell.spec.build();
            Simulator::new(plan.config.clone())
                .replay(
                    &*trace,
                    policy.as_mut(),
                    crate::simulator::ReplayOptions::new(),
                )
                .map_err(crate::simulator::ReplayError::into_sim)
        }));
        let kind = match sim_result {
            Ok(Ok(result)) => return Ok((result, job_started.elapsed())),
            Ok(Err(e)) => JobErrorKind::Sim(e),
            Err(payload) => JobErrorKind::Panicked(panic_message(payload)),
        };
        Err(JobError {
            cell_index,
            spec: cell.spec.clone(),
            seed,
            kind,
        })
    };

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if fail_fast && stop.load(Ordering::Acquire) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs_total {
                    break;
                }
                let outcome = run_job(i);
                if outcome.is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                    if fail_fast {
                        stop.store(true, Ordering::Release);
                    }
                }
                assert!(slots[i].set(outcome).is_ok(), "job slot written twice");
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(report) = progress {
                    report(PlanProgress {
                        done: finished,
                        total: n_jobs_total,
                        failed: failed.load(Ordering::Relaxed),
                    });
                }
            });
        }
    });

    let mut slots = slots;
    let mut failures: Vec<JobError> = Vec::new();
    let cells = plan
        .cells
        .iter()
        .enumerate()
        .map(|(c, cell)| {
            let mut runs = Vec::with_capacity(n_seeds);
            let mut wall_times = Vec::new();
            for s in 0..n_seeds {
                // An empty slot means fail-fast stopped dispatch before
                // this job was ever claimed.
                let outcome = slots[c * n_seeds + s].take().unwrap_or_else(|| {
                    Err(JobError {
                        cell_index: c,
                        spec: cell.spec.clone(),
                        seed: plan.seeds[s],
                        kind: JobErrorKind::Skipped,
                    })
                });
                match outcome {
                    Ok((result, wall)) => {
                        runs.push(Ok(result));
                        wall_times.push(wall);
                    }
                    Err(e) => {
                        failures.push(e.clone());
                        runs.push(Err(e));
                    }
                }
            }
            CellOutcome {
                x: cell.x,
                spec: cell.spec.clone(),
                outcome: ExperimentOutcome { runs },
                wall_times,
            }
        })
        .collect();

    PlanOutcome {
        cells,
        failures,
        corpus: cache.corpus_stats(),
        cache: cache.stats(),
        jobs: workers,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_core::EstimatorKind;

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::new(Oo7Params::tiny(), &[1, 2, 3], SimConfig::tiny()).cells([
            (10.0, PolicySpec::saio(0.10)),
            (
                5.0,
                PolicySpec::saga_dt_max(0.05, EstimatorKind::Oracle, 20),
            ),
        ])
    }

    #[test]
    fn plan_runs_every_cell_for_every_seed() {
        let out = tiny_plan().run_with_jobs(Some(2));
        assert_eq!(out.cells.len(), 2);
        assert!(out.is_complete());
        for cell in &out.cells {
            assert_eq!(cell.outcome.runs.len(), 3);
            assert!(cell.outcome.runs.iter().all(Result::is_ok));
            assert_eq!(cell.wall_times.len(), 3);
            assert!(cell.wall_times.iter().all(|w| *w > Duration::ZERO));
        }
        assert!(out.elapsed > Duration::ZERO);
        assert!(out.cpu_time() > Duration::ZERO);
    }

    #[test]
    fn traces_are_built_exactly_once_per_seed() {
        let plan = tiny_plan();
        let out = plan.run_with_jobs(Some(4));
        // 2 cells × 3 seeds = 6 lookups; 3 builds, 3 hits.
        assert_eq!(out.cache.misses, plan.seeds.len() as u64);
        assert_eq!(
            out.cache.hits,
            (plan.cells.len() as u64 - 1) * plan.seeds.len() as u64
        );
    }

    #[test]
    fn full_saio_sweep_builds_each_trace_exactly_once() {
        // The paper's sweep protocol: 9 requested fractions × 10 seeds.
        // All 90 jobs share 10 traces; the cache must build each exactly
        // once and serve the remaining 80 lookups as hits — and the
        // parallel outcome must be identical to the serial one.
        let fracs = [0.02, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50];
        let seeds: Vec<u64> = (1..=10).collect();
        let plan = ExperimentPlan::new(Oo7Params::tiny(), &seeds, SimConfig::tiny()).cells(
            fracs
                .iter()
                .map(|&frac| (frac * 100.0, PolicySpec::saio(frac))),
        );
        let parallel = plan.run_with_jobs(Some(8));
        assert_eq!(parallel.cache.misses, 10, "one build per seed");
        assert_eq!(parallel.cache.hits, 80, "all other lookups cached");

        let serial = plan.run_with_jobs(Some(1));
        assert_eq!(serial.cache.misses, 10);
        for (p, s) in parallel.cells.iter().zip(&serial.cells) {
            assert_eq!(p.x, s.x);
            assert_eq!(p.spec, s.spec);
            assert_eq!(p.outcome.runs, s.outcome.runs);
        }
    }

    #[test]
    fn cached_traces_are_byte_identical_to_fresh_generation() {
        let cache = TraceCache::new(Oo7Params::tiny(), &[7]);
        let first = cache.get(7);
        let second = cache.get(7);
        let fresh = Oo7App::standard(Oo7Params::tiny(), 7).generate().0;
        assert_eq!(
            odbgc_trace::codec::encode(&first),
            odbgc_trace::codec::encode(&fresh)
        );
        assert_eq!(
            odbgc_trace::codec::encode(&first),
            odbgc_trace::codec::encode(&second)
        );
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    /// A unique throwaway corpus directory, cleaned up on drop.
    struct TempCorpusDir(PathBuf);
    impl TempCorpusDir {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("odbgc-runner-corpus-{name}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            TempCorpusDir(dir)
        }
    }
    impl Drop for TempCorpusDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn corpus_tier_fills_on_first_run_and_serves_the_second() {
        let tmp = TempCorpusDir::new("fill");
        let plan = tiny_plan();

        let cold = plan.clone().with_corpus(&tmp.0).run_with_jobs(Some(2));
        let stats = cold.corpus.expect("corpus attached");
        assert_eq!(stats.hits, 0, "cold corpus cannot hit");
        assert_eq!(stats.generated, plan.seeds.len() as u64);

        let warm = plan.clone().with_corpus(&tmp.0).run_with_jobs(Some(2));
        let stats = warm.corpus.expect("corpus attached");
        // Every job was ultimately served by corpus data: one disk load
        // per seed, the rest re-served by the memory tier on top.
        let jobs = (plan.cells.len() * plan.seeds.len()) as u64;
        assert_eq!(stats.hits, jobs, "all jobs served from the corpus");
        assert_eq!(stats.generated, 0, "nothing regenerated");

        // Corpus-served traces replay to the same results as generated ones.
        for (c, w) in cold.cells.iter().zip(&warm.cells) {
            assert_eq!(c.outcome.runs, w.outcome.runs);
        }
    }

    #[test]
    fn corpus_loaded_trace_is_identical_to_generated() {
        let tmp = TempCorpusDir::new("identity");
        let filler = TraceCache::with_corpus(
            Oo7Params::tiny(),
            &[42],
            Some(TraceCorpus::open(&tmp.0).unwrap()),
        );
        let generated = filler.get(42);

        let loader = TraceCache::with_corpus(
            Oo7Params::tiny(),
            &[42],
            Some(TraceCorpus::open(&tmp.0).unwrap()),
        );
        let loaded = loader.get(42);
        assert_eq!(*generated, *loaded);
        let stats = loader.corpus_stats().unwrap();
        assert_eq!((stats.hits, stats.generated), (1, 0));
    }

    #[test]
    fn different_params_use_distinct_corpus_entries() {
        let tmp = TempCorpusDir::new("keyed");
        let a = TraceCache::with_corpus(
            Oo7Params::tiny(),
            &[1],
            Some(TraceCorpus::open(&tmp.0).unwrap()),
        );
        a.get(1);
        // Same seed, different workload: must generate, not hit.
        let mut params = Oo7Params::tiny();
        params.num_atomic_per_comp += 1;
        let b = TraceCache::with_corpus(params, &[1], Some(TraceCorpus::open(&tmp.0).unwrap()));
        b.get(1);
        let stats = b.corpus_stats().unwrap();
        assert_eq!((stats.hits, stats.generated), (0, 1));
    }

    #[test]
    fn unusable_corpus_dir_degrades_to_generation() {
        let tmp = TempCorpusDir::new("unusable");
        std::fs::create_dir_all(&tmp.0).unwrap();
        let file = tmp.0.join("not-a-dir");
        std::fs::write(&file, b"occupied").unwrap();
        let out = tiny_plan().with_corpus(&file).run_with_jobs(Some(2));
        assert!(out.corpus.is_none(), "corpus silently skipped");
        assert!(out.is_complete(), "plan still ran without the corpus");
    }

    #[test]
    fn worker_count_is_clamped_to_job_count() {
        let out = tiny_plan().run_with_jobs(Some(64));
        assert!(out.jobs <= 6, "6 jobs cannot use {} workers", out.jobs);
    }

    #[test]
    #[should_panic(expected = "not in plan")]
    fn cache_rejects_unplanned_seeds() {
        TraceCache::new(Oo7Params::tiny(), &[1]).get(2);
    }

    #[test]
    fn poisoned_trace_becomes_a_structured_sim_error() {
        let out = tiny_plan()
            .inject_fault(FaultSpec {
                cell_index: 1,
                seed: 2,
                kind: FaultKind::PoisonTrace,
            })
            .run_with_jobs(Some(4));
        assert_eq!(out.failures.len(), 1);
        let f = &out.failures[0];
        assert_eq!(f.cell_index, 1);
        assert_eq!(f.seed, 2);
        assert!(matches!(&f.kind, JobErrorKind::Sim(e) if e.event_index == 0));
        // Every other job still produced a result.
        let ok: usize = out
            .cells
            .iter()
            .map(|c| c.outcome.successes().count())
            .sum();
        assert_eq!(ok, 5);
        // The failed seed keeps its slot in the cell's run list.
        assert!(out.cells[1].outcome.runs[1].is_err());
        assert_eq!(out.cells[1].wall_times.len(), 2);
    }

    #[test]
    fn panicking_job_is_reported_not_fatal() {
        let out = tiny_plan()
            .inject_fault(FaultSpec {
                cell_index: 0,
                seed: 3,
                kind: FaultKind::Panic,
            })
            .run_with_jobs(Some(2));
        assert_eq!(out.failures.len(), 1);
        let f = &out.failures[0];
        assert_eq!((f.cell_index, f.seed), (0, 3));
        assert!(
            matches!(&f.kind, JobErrorKind::Panicked(msg) if msg.contains("injected fault")),
            "unexpected kind: {:?}",
            f.kind
        );
        assert!(f.to_string().contains("panicked"));
    }

    #[test]
    fn fail_fast_stops_dispatch_after_first_failure() {
        // Serial execution makes fail-fast deterministic: the poisoned
        // job is the very first (cell 0, seed 1), so every later job must
        // be skipped, not run.
        let out = tiny_plan()
            .on_failure(FailurePolicy::FailFast)
            .inject_fault(FaultSpec {
                cell_index: 0,
                seed: 1,
                kind: FaultKind::PoisonTrace,
            })
            .run_with_jobs(Some(1));
        assert_eq!(out.failures.len(), 6, "1 failure + 5 skipped");
        assert!(matches!(out.failures[0].kind, JobErrorKind::Sim(_)));
        assert!(out.failures[1..]
            .iter()
            .all(|f| f.kind == JobErrorKind::Skipped));
        let ok: usize = out
            .cells
            .iter()
            .map(|c| c.outcome.successes().count())
            .sum();
        assert_eq!(ok, 0);
    }

    #[test]
    fn continue_policy_runs_everything_despite_failures() {
        let out = tiny_plan()
            .inject_fault(FaultSpec {
                cell_index: 0,
                seed: 1,
                kind: FaultKind::PoisonTrace,
            })
            .run_with_jobs(Some(1));
        assert_eq!(out.failures.len(), 1);
        let ok: usize = out
            .cells
            .iter()
            .map(|c| c.outcome.successes().count())
            .sum();
        assert_eq!(ok, 5, "all non-poisoned jobs must still run");
    }

    #[test]
    fn progress_callback_reports_every_completion_and_failures() {
        let seen = std::sync::Mutex::new(Vec::new());
        let out = tiny_plan()
            .inject_fault(FaultSpec {
                cell_index: 0,
                seed: 1,
                kind: FaultKind::PoisonTrace,
            })
            .run_with_jobs_and_progress(Some(1), &|p| seen.lock().unwrap().push(p));
        assert_eq!(out.failures.len(), 1);
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 6, "one report per job");
        // Serial execution makes the sequence deterministic: done counts
        // up, total is constant, and the poisoned first job is the one
        // failure every later report carries.
        for (i, p) in seen.iter().enumerate() {
            assert_eq!(p.done, i + 1);
            assert_eq!(p.total, 6);
            assert_eq!(p.failed, 1);
        }
    }

    #[test]
    fn parallel_progress_reaches_total_exactly_once() {
        let count = std::sync::atomic::AtomicUsize::new(0);
        let out = tiny_plan().run_with_jobs_and_progress(Some(4), &|p| {
            assert!(p.done <= p.total);
            assert_eq!(p.failed, 0);
            if p.done == p.total {
                count.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(out.is_complete());
        assert_eq!(
            count.into_inner(),
            1,
            "exactly one report says done == total"
        );
    }

    #[test]
    fn job_error_display_names_cell_spec_and_seed() {
        let e = JobError {
            cell_index: 1,
            spec: PolicySpec::saio(0.10),
            seed: 7,
            kind: JobErrorKind::Sim(SimError {
                event_index: 0,
                cause: odbgc_store::StoreError::UnknownObject(odbgc_trace::ObjectId::new(9)),
            }),
        };
        let s = e.to_string();
        assert!(s.contains("cell 1"), "{s}");
        assert!(s.contains("saio:10%"), "{s}");
        assert!(s.contains("seed 7"), "{s}");
        assert!(s.contains("event 0"), "{s}");
    }

    #[test]
    fn jobs_env_values_parse_like_gc_workers_values() {
        // The shared helper accepts positive integers only, and its
        // warning line has the exact shape the GC-workers reader uses.
        let parse = |v| odbgc_core::parse_worker_env("ODBGC_JOBS", v, "using all available cores");
        assert_eq!(parse("4"), Ok(4));
        assert_eq!(parse(" 2 "), Ok(2));
        for bad in ["0", "-1", "abc", ""] {
            assert_eq!(
                parse(bad).unwrap_err(),
                format!(
                    "odbgc: ignoring invalid ODBGC_JOBS={bad:?} \
                     (want a positive integer); using all available cores"
                )
            );
        }
    }

    #[test]
    fn default_jobs_warns_and_falls_back_on_bad_env() {
        // This is the only test in this binary that mutates ODBGC_JOBS;
        // restore whatever was set (CI pins it) before returning.
        let saved = std::env::var("ODBGC_JOBS").ok();
        std::env::set_var("ODBGC_JOBS", "not-a-number");
        let fallback = default_jobs();
        assert!(fallback >= 1, "must fall back to available parallelism");
        std::env::set_var("ODBGC_JOBS", "3");
        assert_eq!(default_jobs(), 3);
        match saved {
            Some(v) => std::env::set_var("ODBGC_JOBS", v),
            None => std::env::remove_var("ODBGC_JOBS"),
        }
    }
}
