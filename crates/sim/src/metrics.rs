//! Event-sampled measurement with preamble exclusion.
//!
//! The accumulator lives in `odbgc-engine` (the engine samples it on
//! every applied operation, replayed or live); this module re-exports it
//! under its historical path.

pub use odbgc_engine::RunMetrics;
