//! The simulation loop.

use std::borrow::Cow;
use std::convert::Infallible;

use odbgc_core::{CollectionObservation, GarbageEstimator, RatePolicy, Trigger, TriggerElapsed};
use odbgc_gc::Collector;
use odbgc_store::{Store, StoreError};
use odbgc_trace::{Event, Trace};

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::series::CollectionRecord;
use crate::telemetry::{DecisionRecord, EventSnapshot, RunTelemetry};

/// A simulation failure: the trace could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Index of the offending event.
    pub event_index: usize,
    /// The store's complaint.
    pub cause: StoreError,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {}: {}", self.event_index, self.cause)
    }
}

impl std::error::Error for SimError {}

/// A streaming-replay failure: either the simulation itself failed
/// ([`SimError`]) or the event *source* did — e.g. a corrupt tracefile
/// block discovered mid-replay.
#[derive(Debug)]
pub enum ReplayError<E> {
    /// The store rejected an event.
    Sim(SimError),
    /// The event source yielded an error at the given position.
    Source {
        /// Index of the event that failed to materialize.
        event_index: usize,
        /// The source's error.
        cause: E,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for ReplayError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Sim(e) => write!(f, "{e}"),
            ReplayError::Source { event_index, cause } => {
                write!(f, "event source failed at event {event_index}: {cause}")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for ReplayError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Sim(e) => Some(e),
            ReplayError::Source { cause, .. } => Some(cause),
        }
    }
}

/// Everything one run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Per-collection series.
    pub collections: Vec<CollectionRecord>,
    /// Event-sampled mean garbage percentage over the measured window.
    pub garbage_pct_mean: Option<f64>,
    /// GC share of I/O over the measured window, percent.
    pub gc_io_pct: Option<f64>,
    /// Total application page I/O.
    pub app_io_total: u64,
    /// Total collector page I/O.
    pub gc_io_total: u64,
    /// `TotGarb` at end of run (bytes).
    pub total_garbage_generated: u64,
    /// `TotColl` at end of run (bytes).
    pub total_garbage_collected: u64,
    /// Allocated storage at end of run (bytes).
    pub final_db_size: u64,
    /// Live bytes at end of run.
    pub final_live_bytes: u64,
    /// Garbage bytes remaining at end of run.
    pub final_garbage_bytes: u64,
    /// Partitions allocated by end of run.
    pub partition_count: u64,
    /// Total pointer overwrites replayed.
    pub overwrite_clock: u64,
    /// Events replayed (the whole trace on success).
    pub events_replayed: u64,
    /// `(phase name, event index, collections done at phase start)`.
    pub phases: Vec<(String, u64, u64)>,
}

impl RunResult {
    /// Total I/O operations (application + collector).
    pub fn total_io(&self) -> u64 {
        self.app_io_total + self.gc_io_total
    }

    /// GC share of I/O over the whole run (not window-restricted).
    pub fn gc_io_pct_whole_run(&self) -> f64 {
        if self.total_io() == 0 {
            0.0
        } else {
            100.0 * self.gc_io_total as f64 / self.total_io() as f64
        }
    }

    /// Number of collections performed.
    pub fn collection_count(&self) -> u64 {
        self.collections.len() as u64
    }

    /// GC share of I/O computed post hoc from the collection series,
    /// excluding the first `preamble` collections. Unlike
    /// [`RunResult::gc_io_pct`], this works for any preamble ≤ the number
    /// of collections, so sweeps whose extreme settings produce few
    /// collections can shorten the preamble (the paper's preambles range
    /// from 10 to 30 "depending on the simulation parameters").
    pub fn windowed_gc_io_pct(&self, preamble: u64) -> Option<f64> {
        if (self.collections.len() as u64) <= preamble {
            return None;
        }
        let skip_app: u64 = self
            .collections
            .iter()
            .take(preamble as usize)
            .map(|r| r.app_io_since_prev)
            .sum();
        let skip_gc: u64 = self
            .collections
            .iter()
            .take(preamble as usize)
            .map(|r| r.gc_io)
            .sum();
        let app = self.app_io_total - skip_app;
        let gc = self.gc_io_total - skip_gc;
        let total = app + gc;
        (total > 0).then(|| 100.0 * gc as f64 / total as f64)
    }
}

/// The trace-driven simulator.
///
/// ```
/// use odbgc_sim::core_policies::SaioPolicy;
/// use odbgc_sim::oo7::{Oo7App, Oo7Params};
/// use odbgc_sim::{SimConfig, Simulator};
///
/// let (trace, _) = Oo7App::standard(Oo7Params::tiny(), 1).generate();
/// let mut policy = SaioPolicy::with_frac(0.10);
/// let result = Simulator::new(SimConfig::tiny())
///     .run(&trace, &mut policy)
///     .expect("trace replays cleanly");
/// assert!(result.collection_count() > 0);
/// assert_eq!(
///     result.total_garbage_generated,
///     result.total_garbage_collected + result.final_garbage_bytes
/// );
/// ```
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// A simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// Replays `trace` under `policy`, collecting per the configuration.
    pub fn run(&self, trace: &Trace, policy: &mut dyn RatePolicy) -> Result<RunResult, SimError> {
        let events = trace
            .iter()
            .map(|ev| Ok::<_, Infallible>(Cow::Borrowed(ev)));
        match self.replay(trace.phase_names(), events, policy, None) {
            Ok(result) => Ok(result),
            Err(ReplayError::Sim(e)) => Err(e),
            Err(ReplayError::Source { cause, .. }) => match cause {},
        }
    }

    /// Like [`Simulator::run`], additionally recording a
    /// [`RunTelemetry`]: the per-decision policy log and per-phase
    /// accounting. The returned [`RunResult`] is identical to what
    /// [`Simulator::run`] produces for the same inputs — telemetry only
    /// observes the replay, it never influences it.
    pub fn run_with_telemetry(
        &self,
        trace: &Trace,
        policy: &mut dyn RatePolicy,
    ) -> Result<(RunResult, RunTelemetry), SimError> {
        let mut telemetry = RunTelemetry::new(policy.name());
        let events = trace
            .iter()
            .map(|ev| Ok::<_, Infallible>(Cow::Borrowed(ev)));
        match self.replay(trace.phase_names(), events, policy, Some(&mut telemetry)) {
            Ok(result) => Ok((result, telemetry)),
            Err(ReplayError::Sim(e)) => Err(e),
            Err(ReplayError::Source { cause, .. }) => match cause {},
        }
    }

    /// Replays a fallible *stream* of events under `policy`.
    ///
    /// This is the streaming twin of [`Simulator::run`]: events are
    /// consumed one at a time from any source — most usefully an
    /// `odbgc_tracefile` reader decoding a binary tracefile block by
    /// block — so peak memory is O(live database), not O(trace). The
    /// phase-name table must be supplied up front (tracefiles carry it
    /// in their header) so [`Event::Phase`] markers can be named in the
    /// result.
    ///
    /// A source error aborts the replay with
    /// [`ReplayError::Source`] carrying the index of the event that
    /// failed to materialize.
    pub fn run_streaming<E>(
        &self,
        phase_names: &[String],
        events: impl IntoIterator<Item = Result<Event, E>>,
        policy: &mut dyn RatePolicy,
    ) -> Result<RunResult, ReplayError<E>> {
        self.replay(
            phase_names,
            events.into_iter().map(|r| r.map(Cow::Owned)),
            policy,
            None,
        )
    }

    /// The replay core shared by [`Simulator::run`] (borrowed events,
    /// infallible source) and [`Simulator::run_streaming`] (owned
    /// events, fallible source).
    fn replay<'a, E>(
        &self,
        phase_names: &[String],
        events: impl Iterator<Item = Result<Cow<'a, Event>, E>>,
        policy: &mut dyn RatePolicy,
        mut telemetry: Option<&mut RunTelemetry>,
    ) -> Result<RunResult, ReplayError<E>> {
        let mut store = Store::new(self.config.store.clone());
        let mut collector = Collector::new(self.config.selector.build(self.config.selector_seed));
        let mut metrics = RunMetrics::new(self.config.preamble_collections);
        let mut shadow: Option<Box<dyn GarbageEstimator>> =
            self.config.shadow_estimator.map(|k| k.build());

        let mut records: Vec<CollectionRecord> = Vec::new();
        let mut phases: Vec<(String, u64, u64)> = Vec::new();

        let mut trigger: Trigger = policy.initial_trigger();
        // Interval baselines (at the last collection).
        let mut app_io_base = 0u64;
        let mut clock_base = 0u64;
        let mut alloc_base = 0u64;

        let mut events_replayed = 0u64;
        for (i, ev) in events.enumerate() {
            let ev = ev.map_err(|cause| ReplayError::Source {
                event_index: i,
                cause,
            })?;
            let ev: &Event = &ev;
            if let Event::Phase { id } = ev {
                let name = phase_names
                    .get(id.index())
                    .map(String::as_str)
                    .unwrap_or("<unknown>")
                    .to_owned();
                if let Some(t) = telemetry.as_deref_mut() {
                    t.enter_phase(&name, snapshot(&store));
                }
                phases.push((name, i as u64, records.len() as u64));
            }
            store.apply(ev).map_err(|cause| {
                ReplayError::Sim(SimError {
                    event_index: i,
                    cause,
                })
            })?;
            events_replayed += 1;

            // `db_size_bytes` is a maintained O(1) counter, so the mean
            // samples the true size every event — including capacity
            // changes that leave the partition count unchanged.
            metrics.sample_event(store.garbage_bytes(), store.db_size_bytes());
            if self.config.deep_checks {
                store.assert_counters_match();
            }
            if let Some(t) = telemetry.as_deref_mut() {
                t.note_event(snapshot(&store));
            }

            let elapsed = TriggerElapsed::new(
                store.io().app_total() - app_io_base,
                store.overwrite_clock() - clock_base,
                store.alloc_clock() - alloc_base,
            );
            if trigger.is_due(elapsed) {
                let app_io_since_prev = store.io().app_total() - app_io_base;
                // The exact-oracle reconciliation is O(heap), so it runs
                // only when a collection can actually happen — never once
                // per event while a due trigger waits for the first
                // partition to exist.
                let outcome = if store.partition_count() == 0 {
                    None
                } else {
                    if self.config.exact_oracle_recompute {
                        store.recompute_garbage_exact();
                    }
                    collector.collect_once(&mut store)
                };
                let Some(outcome) = outcome else {
                    // Nothing to collect yet (e.g. the trace front-loads
                    // phase markers). Re-arm a fresh trigger and reset the
                    // interval baselines so the stale trigger does not
                    // stay due on every subsequent event.
                    trigger = policy.initial_trigger();
                    app_io_base = store.io().app_total();
                    clock_base = store.overwrite_clock();
                    alloc_base = store.alloc_clock();
                    continue;
                };
                let obs = CollectionObservation {
                    collection_index: records.len() as u64,
                    gc_io: outcome.gc_io(),
                    app_io_since_prev,
                    bytes_reclaimed: outcome.bytes_reclaimed,
                    overwrites_of_collected: outcome.overwrites_at_collection,
                    total_outstanding_overwrites: store.total_outstanding_overwrites(),
                    partition_count: store.partition_count() as u64,
                    db_size: store.db_size_bytes(),
                    total_collected: store.total_garbage_collected(),
                    overwrite_clock: store.overwrite_clock(),
                    alloc_clock: store.alloc_clock(),
                    exact_garbage: store.garbage_bytes(),
                };
                let estimated = shadow.as_mut().map(|e| e.estimate(&obs));

                records.push(CollectionRecord {
                    index: obs.collection_index,
                    clock: obs.overwrite_clock,
                    interval_overwrites: store.overwrite_clock() - clock_base,
                    app_io_since_prev,
                    gc_io: obs.gc_io,
                    bytes_reclaimed: obs.bytes_reclaimed,
                    partition: outcome.partition.raw(),
                    db_size: obs.db_size,
                    actual_garbage: obs.exact_garbage,
                    estimated_garbage: estimated,
                    gc_io_fraction_cum: store.io().gc_fraction(),
                });
                metrics.note_collection(store.io().app_total(), store.io().gc_total());

                if self.config.deep_checks {
                    store.assert_consistent();
                    store.assert_garbage_exact();
                }
                trigger = policy.after_collection(&obs);
                if let Some(t) = telemetry.as_deref_mut() {
                    t.note_decision(DecisionRecord {
                        index: obs.collection_index,
                        observation: obs,
                        trigger,
                        clamp: policy.last_clamp(),
                        estimated_garbage: estimated,
                    });
                }
                app_io_base = store.io().app_total();
                clock_base = store.overwrite_clock();
                alloc_base = store.alloc_clock();
            }
        }

        if let Some(t) = telemetry {
            t.finish(snapshot(&store));
        }

        Ok(RunResult {
            garbage_pct_mean: metrics.garbage_pct_mean(),
            gc_io_pct: metrics.gc_io_pct(store.io().app_total(), store.io().gc_total()),
            collections: records,
            app_io_total: store.io().app_total(),
            gc_io_total: store.io().gc_total(),
            total_garbage_generated: store.total_garbage_generated(),
            total_garbage_collected: store.total_garbage_collected(),
            final_db_size: store.db_size_bytes(),
            final_live_bytes: store.live_bytes(),
            final_garbage_bytes: store.garbage_bytes(),
            partition_count: store.partition_count() as u64,
            overwrite_clock: store.overwrite_clock(),
            events_replayed,
            phases,
        })
    }
}

/// The cumulative counters telemetry samples after each event.
fn snapshot(store: &Store) -> EventSnapshot {
    EventSnapshot {
        app_io_total: store.io().app_total(),
        gc_io_total: store.io().gc_total(),
        overwrite_clock: store.overwrite_clock(),
        garbage_bytes: store.garbage_bytes(),
        db_size: store.db_size_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_core::{EstimatorKind, Oracle};
    use odbgc_core::{FixedRatePolicy, SagaConfig, SagaPolicy, SaioPolicy};
    use odbgc_oo7::{Oo7App, Oo7Params};

    fn tiny_trace(seed: u64) -> Trace {
        Oo7App::standard(Oo7Params::tiny(), seed).generate().0
    }

    #[test]
    fn fixed_rate_collects_on_schedule() {
        let trace = tiny_trace(1);
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = FixedRatePolicy::new(20);
        let r = sim.run(&trace, &mut policy).expect("run");
        assert!(r.collection_count() > 0, "reorgs must trigger collections");
        // Every realized interval reaches the trigger threshold.
        for rec in &r.collections {
            assert!(rec.interval_overwrites >= 20);
        }
        assert!(r.total_garbage_collected > 0);
    }

    #[test]
    fn saio_policy_runs_and_spends_gc_io() {
        let trace = tiny_trace(2);
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = SaioPolicy::with_frac(0.10);
        let r = sim.run(&trace, &mut policy).expect("run");
        assert!(r.collection_count() > 2);
        assert!(r.gc_io_total > 0);
        assert!(r.gc_io_pct.is_some());
    }

    #[test]
    fn saga_oracle_policy_runs() {
        let trace = tiny_trace(3);
        let mut cfg = SimConfig::tiny();
        cfg.shadow_estimator = Some(EstimatorKind::Oracle);
        let sim = Simulator::new(cfg);
        let mut policy = SagaPolicy::new(SagaConfig::new(0.10), Box::new(Oracle));
        let r = sim.run(&trace, &mut policy).expect("run");
        assert!(r.collection_count() > 0);
        // Shadow oracle estimates equal the recorded actual garbage.
        for rec in &r.collections {
            assert_eq!(rec.estimated_garbage, Some(rec.actual_garbage as f64));
        }
    }

    #[test]
    fn phases_are_recorded_in_order() {
        let trace = tiny_trace(4);
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = FixedRatePolicy::new(50);
        let r = sim.run(&trace, &mut policy).expect("run");
        let names: Vec<&str> = r.phases.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["GenDB", "Reorg1", "Traverse", "Reorg2"]);
        // Phase event indices are increasing.
        assert!(r.phases.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn never_collecting_policy_accumulates_all_garbage() {
        let trace = tiny_trace(5);
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = FixedRatePolicy::new(u64::MAX / 4);
        let r = sim.run(&trace, &mut policy).expect("run");
        assert_eq!(r.collection_count(), 0);
        assert_eq!(r.gc_io_total, 0);
        assert_eq!(r.final_garbage_bytes, r.total_garbage_generated);
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = tiny_trace(6);
        let sim = Simulator::new(SimConfig::tiny());
        let run = || {
            let mut policy = SaioPolicy::with_frac(0.05);
            sim.run(&trace, &mut policy).expect("run")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.collections, b.collections);
        assert_eq!(a.gc_io_total, b.gc_io_total);
        assert_eq!(a.garbage_pct_mean, b.garbage_pct_mean);
    }

    #[test]
    fn malformed_trace_reports_event_index() {
        let mut b = odbgc_trace::TraceBuilder::new();
        b.access(odbgc_trace::ObjectId::new(99));
        let trace = b.finish();
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = FixedRatePolicy::new(10);
        let e = sim.run(&trace, &mut policy).unwrap_err();
        assert_eq!(e.event_index, 0);
        assert!(e.to_string().contains("event 0"));
    }

    /// A policy whose hand-built zero trigger is due before any activity
    /// at all — the only way a trigger can be due while the store still
    /// has no partitions. Counts its cold-start re-arms.
    struct EagerPolicy {
        initial_calls: u64,
    }

    impl RatePolicy for EagerPolicy {
        fn initial_trigger(&mut self) -> Trigger {
            self.initial_calls += 1;
            Trigger {
                overwrites: Some(0),
                app_io: None,
                alloc_bytes: None,
            }
        }

        fn after_collection(&mut self, _: &CollectionObservation) -> Trigger {
            Trigger::after_overwrites(1)
        }

        fn name(&self) -> String {
            "eager-test".into()
        }
    }

    #[test]
    fn due_trigger_with_no_partitions_re_arms_instead_of_spinning() {
        // Regression: a trace that front-loads phase markers leaves the
        // trigger due while no partition exists. The old code never
        // re-armed on that path, so the same due trigger re-fired — and
        // with `exact_oracle_recompute` (the default) ran the O(heap)
        // exact recompute — on every subsequent event. The fix re-arms
        // via `initial_trigger()` and resets the interval baselines, so
        // the policy sees exactly one cold-start call per no-op firing.
        let mut b = odbgc_trace::TraceBuilder::new();
        for i in 0..5 {
            b.phase(&format!("Marker{i}"));
        }
        let root = b.create_unlinked(40, 1);
        b.root_add(root);
        let victim = b.create_unlinked(40, 0);
        b.slot_write(root, odbgc_trace::SlotIdx::new(0), Some(victim));
        b.slot_clear(root, odbgc_trace::SlotIdx::new(0));
        let trace = b.finish();

        let mut policy = EagerPolicy { initial_calls: 0 };
        let r = Simulator::new(SimConfig::tiny())
            .run(&trace, &mut policy)
            .expect("replays");
        assert_eq!(
            policy.initial_calls,
            1 + 5,
            "one cold start + one re-arm per front-loaded phase marker"
        );
        assert_eq!(r.events_replayed, trace.len() as u64);
        assert!(r.collection_count() > 0, "real workload still collects");
    }

    #[test]
    fn windowed_gc_io_pct_matches_metrics_window() {
        let trace = tiny_trace(8);
        let cfg = SimConfig::tiny(); // preamble 2
        let sim = Simulator::new(cfg);
        let mut policy = SaioPolicy::with_frac(0.10);
        let r = sim.run(&trace, &mut policy).expect("run");
        assert!(r.collection_count() > 2);
        let post_hoc = r.windowed_gc_io_pct(2).expect("window exists");
        let live = r.gc_io_pct.expect("window exists");
        assert!(
            (post_hoc - live).abs() < 1e-9,
            "post-hoc {post_hoc} vs live {live}"
        );
        // Too-long preamble yields None.
        assert_eq!(r.windowed_gc_io_pct(r.collection_count()), None);
    }

    #[test]
    fn telemetry_run_matches_plain_run_and_counts_decisions() {
        let trace = tiny_trace(9);
        let sim = Simulator::new(SimConfig::tiny());
        let plain = {
            let mut p = SaioPolicy::with_frac(0.10);
            sim.run(&trace, &mut p).expect("run")
        };
        let (instrumented, telemetry) = {
            let mut p = SaioPolicy::with_frac(0.10);
            sim.run_with_telemetry(&trace, &mut p).expect("run")
        };
        // The telemetry sink must be a pure observer: identical results.
        assert_eq!(plain, instrumented);
        assert_eq!(telemetry.decisions.len() as u64, plain.collection_count());
        // Phase accounting mirrors the trace's phase markers.
        let names: Vec<&str> = telemetry.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["GenDB", "Reorg1", "Traverse", "Reorg2"]);
        // Phase deltas sum to the whole-run totals.
        let app: u64 = telemetry.phases.iter().map(|p| p.app_io).sum();
        let gc: u64 = telemetry.phases.iter().map(|p| p.gc_io).sum();
        let events: u64 = telemetry.phases.iter().map(|p| p.events).sum();
        assert_eq!(app, plain.app_io_total);
        assert_eq!(gc, plain.gc_io_total);
        assert_eq!(events, plain.events_replayed);
        let collections: u64 = telemetry.phases.iter().map(|p| p.collections).sum();
        assert_eq!(collections, plain.collection_count());
    }

    #[test]
    fn higher_fixed_rate_means_fewer_collections_and_less_gc_io() {
        let trace = tiny_trace(7);
        let sim = Simulator::new(SimConfig::tiny());
        let run = |rate| {
            let mut p = FixedRatePolicy::new(rate);
            sim.run(&trace, &mut p).expect("run")
        };
        let fast = run(10);
        let slow = run(200);
        assert!(fast.collection_count() > slow.collection_count());
        assert!(fast.gc_io_total > slow.gc_io_total);
        // Slower collection leaves more garbage behind on average.
        assert!(fast.total_garbage_collected >= slow.total_garbage_collected);
    }
}
