//! The simulation loop: a thin trace driver over [`StoreEngine`].
//!
//! Historically this module owned the whole replay loop. That loop's
//! core — store, collector, policy, trigger state, live counters — now
//! lives in [`odbgc_engine::StoreEngine`], and the simulator is one
//! client of it: it feeds trace events through the engine exactly as a
//! live mutator session would, adding only what is trace-specific
//! (event indexing for errors, phase-name resolution, and the telemetry
//! sink's phase accounting).

use std::borrow::Cow;
use std::convert::Infallible;

use odbgc_core::RatePolicy;
use odbgc_engine::{EngineObserver, StoreEngine};
use odbgc_store::StoreError;
use odbgc_trace::{Event, Trace};

use crate::config::SimConfig;
use crate::telemetry::RunTelemetry;

pub use odbgc_engine::RunResult;

/// A simulation failure: the trace could not be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Index of the offending event.
    pub event_index: usize,
    /// The store's complaint.
    pub cause: StoreError,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {}: {}", self.event_index, self.cause)
    }
}

impl std::error::Error for SimError {}

/// A replay failure: either the simulation itself failed ([`SimError`])
/// or the event *source* did — e.g. a corrupt tracefile block discovered
/// mid-replay.
#[derive(Debug)]
pub enum ReplayError<E> {
    /// The store rejected an event.
    Sim(SimError),
    /// The event source yielded an error at the given position.
    Source {
        /// Index of the event that failed to materialize.
        event_index: usize,
        /// The source's error.
        cause: E,
    },
}

impl ReplayError<Infallible> {
    /// An infallible source never fails, so the only possible failure is
    /// the simulation's own.
    pub fn into_sim(self) -> SimError {
        match self {
            ReplayError::Sim(e) => e,
            ReplayError::Source { cause, .. } => match cause {},
        }
    }
}

impl<E: std::fmt::Display> std::fmt::Display for ReplayError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Sim(e) => write!(f, "{e}"),
            ReplayError::Source { event_index, cause } => {
                write!(f, "event source failed at event {event_index}: {cause}")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for ReplayError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Sim(e) => Some(e),
            ReplayError::Source { cause, .. } => Some(cause),
        }
    }
}

/// Anything a replay can consume: a phase-name table plus a stream of
/// events.
///
/// Implemented for `&Trace` (in-memory, infallible, borrowed events) and
/// [`EventStream`] (streaming, fallible, owned events — most usefully an
/// `odbgc_tracefile` reader decoding block by block, so peak memory is
/// O(live database), not O(trace)).
pub trait ReplaySource<'a> {
    /// The source's error type ([`Infallible`] for in-memory traces).
    type Error;
    /// The event iterator.
    type Events: Iterator<Item = Result<Cow<'a, Event>, Self::Error>>;

    /// The phase-name table, indexed by [`odbgc_trace::PhaseId`].
    /// Sources must supply it up front (tracefiles carry it in their
    /// header) so [`Event::Phase`] markers can be named in the result.
    fn phase_names(&self) -> Vec<String>;

    /// Consumes the source into its event stream.
    fn into_events(self) -> Self::Events;
}

/// Borrowed, infallible events of an in-memory [`Trace`].
pub struct TraceEvents<'a>(std::slice::Iter<'a, Event>);

impl<'a> Iterator for TraceEvents<'a> {
    type Item = Result<Cow<'a, Event>, Infallible>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next().map(|ev| Ok(Cow::Borrowed(ev)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<'a> ReplaySource<'a> for &'a Trace {
    type Error = Infallible;
    type Events = TraceEvents<'a>;

    fn phase_names(&self) -> Vec<String> {
        Trace::phase_names(self).to_vec()
    }

    fn into_events(self) -> TraceEvents<'a> {
        TraceEvents(self.iter())
    }
}

/// A fallible stream of owned events with an up-front phase-name table.
pub struct EventStream<I> {
    phase_names: Vec<String>,
    events: I,
}

impl<I> EventStream<I> {
    /// A source over `events` whose [`Event::Phase`] markers resolve
    /// through `phase_names`.
    pub fn new<E>(phase_names: Vec<String>, events: impl IntoIterator<IntoIter = I>) -> Self
    where
        I: Iterator<Item = Result<Event, E>>,
    {
        EventStream {
            phase_names,
            events: events.into_iter(),
        }
    }
}

/// Owned events of an [`EventStream`].
pub struct OwnedEvents<I>(I);

impl<E, I: Iterator<Item = Result<Event, E>>> Iterator for OwnedEvents<I> {
    type Item = Result<Cow<'static, Event>, E>;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next().map(|r| r.map(Cow::Owned))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<E, I: Iterator<Item = Result<Event, E>>> ReplaySource<'static> for EventStream<I> {
    type Error = E;
    type Events = OwnedEvents<I>;

    fn phase_names(&self) -> Vec<String> {
        self.phase_names.clone()
    }

    fn into_events(self) -> OwnedEvents<I> {
        OwnedEvents(self.events)
    }
}

/// Anything a *batched* replay can consume: a phase-name table plus a
/// sequence of decoded event blocks, borrowed one block at a time.
///
/// This is the block-granular sibling of [`ReplaySource`]: instead of an
/// iterator of per-event `Result`s, the source lends whole decoded
/// batches (backed by a reusable arena in the tracefile reader), so the
/// replay loop pays its dispatch and error-handling costs once per block
/// rather than once per event. Implemented for
/// [`odbgc_tracefile::BatchReader`] (one batch per on-disk block) and
/// [`TraceBatches`] (an in-memory trace as a single batch).
pub trait BatchSource {
    /// The source's error type ([`Infallible`] for in-memory traces).
    type Error;

    /// The phase-name table, indexed by [`odbgc_trace::PhaseId`].
    fn phase_names(&self) -> Vec<String>;

    /// Lends the next decoded batch, or `Ok(None)` after the last. The
    /// borrow ends before the next call, letting implementations reuse
    /// one arena across batches.
    fn next_batch(&mut self) -> Result<Option<&[Event]>, Self::Error>;
}

impl<S: odbgc_tracefile::BlockSource> BatchSource for odbgc_tracefile::BatchReader<S> {
    type Error = odbgc_tracefile::DecodeError;

    fn phase_names(&self) -> Vec<String> {
        odbgc_tracefile::BatchReader::phase_names(self).to_vec()
    }

    fn next_batch(&mut self) -> Result<Option<&[Event]>, Self::Error> {
        odbgc_tracefile::BatchReader::next_batch(self)
    }
}

/// An in-memory [`Trace`] as a [`BatchSource`]: one batch covering the
/// whole trace, borrowed and infallible.
pub struct TraceBatches<'a> {
    trace: &'a Trace,
    done: bool,
}

impl<'a> TraceBatches<'a> {
    /// Wraps `trace` as a single-batch source.
    pub fn new(trace: &'a Trace) -> Self {
        TraceBatches { trace, done: false }
    }
}

impl BatchSource for TraceBatches<'_> {
    type Error = Infallible;

    fn phase_names(&self) -> Vec<String> {
        self.trace.phase_names().to_vec()
    }

    fn next_batch(&mut self) -> Result<Option<&[Event]>, Infallible> {
        if self.done {
            Ok(None)
        } else {
            self.done = true;
            Ok(Some(self.trace.events()))
        }
    }
}

/// Options of one replay. The plain default replays silently; attach a
/// [`RunTelemetry`] sink to additionally record the per-decision policy
/// log and per-phase accounting.
///
/// Telemetry is strictly an observer: the returned [`RunResult`] is
/// byte-identical with or without it.
#[derive(Default)]
pub struct ReplayOptions<'t> {
    telemetry: Option<&'t mut RunTelemetry>,
}

impl<'t> ReplayOptions<'t> {
    /// The default options: no telemetry.
    pub fn new() -> ReplayOptions<'static> {
        ReplayOptions { telemetry: None }
    }

    /// Records decision and phase telemetry into `sink`.
    pub fn telemetry(self, sink: &'t mut RunTelemetry) -> ReplayOptions<'t> {
        ReplayOptions {
            telemetry: Some(sink),
        }
    }
}

/// The trace-driven simulator.
///
/// ```
/// use odbgc_sim::core_policies::SaioPolicy;
/// use odbgc_sim::oo7::{Oo7App, Oo7Params};
/// use odbgc_sim::simulator::ReplayOptions;
/// use odbgc_sim::{SimConfig, Simulator};
///
/// let (trace, _) = Oo7App::standard(Oo7Params::tiny(), 1).generate();
/// let mut policy = SaioPolicy::with_frac(0.10);
/// let result = Simulator::new(SimConfig::tiny())
///     .replay(&trace, &mut policy, ReplayOptions::new())
///     .expect("trace replays cleanly");
/// assert!(result.collection_count() > 0);
/// assert_eq!(
///     result.total_garbage_generated,
///     result.total_garbage_collected + result.final_garbage_bytes
/// );
/// ```
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// A simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// Replays a [`ReplaySource`] under `policy`, collecting per the
    /// configuration.
    ///
    /// This is the single replay entry point; `&Trace` replays borrowed
    /// events infallibly (its error type is uninhabited — see
    /// [`ReplayError::into_sim`]), while an [`EventStream`] replays a
    /// fallible stream one event at a time. A source error aborts the
    /// replay with [`ReplayError::Source`] carrying the index of the
    /// event that failed to materialize.
    pub fn replay<'a, S: ReplaySource<'a>>(
        &self,
        source: S,
        policy: &mut dyn RatePolicy,
        options: ReplayOptions<'_>,
    ) -> Result<RunResult, ReplayError<S::Error>> {
        let phase_names = source.phase_names();
        let mut telemetry = options.telemetry;
        let mut engine = StoreEngine::new(self.config.clone(), policy);
        let mut phases: Vec<(String, u64, u64)> = Vec::new();

        for (i, ev) in source.into_events().enumerate() {
            let ev = ev.map_err(|cause| ReplayError::Source {
                event_index: i,
                cause,
            })?;
            let ev: &Event = &ev;
            if let Event::Phase { id } = ev {
                let name = phase_names
                    .get(id.index())
                    .map(String::as_str)
                    .unwrap_or("<unknown>")
                    .to_owned();
                if let Some(t) = telemetry.as_deref_mut() {
                    t.enter_phase(&name, engine.counters());
                }
                phases.push((name, i as u64, engine.collection_count()));
            }
            engine
                .apply_event(
                    ev,
                    telemetry
                        .as_deref_mut()
                        .map(|t| t as &mut dyn EngineObserver),
                )
                .map_err(|cause| {
                    ReplayError::Sim(SimError {
                        event_index: i,
                        cause,
                    })
                })?;
        }

        if let Some(t) = telemetry {
            t.finish(engine.counters());
        }
        Ok(engine.into_result(phases))
    }

    /// Replays a [`BatchSource`] under `policy`, applying events in
    /// decoded-block chunks.
    ///
    /// Behaviorally identical to [`Simulator::replay`] over the same
    /// events — per-event triggers, metrics sampling, and observer calls
    /// all still fire in order, so the [`RunResult`] is byte-identical —
    /// but the loop hands whole phase-free spans to
    /// [`StoreEngine::apply_batch`], amortizing per-event dispatch.
    /// [`Event::Phase`] markers are handled individually between spans,
    /// exactly as the streaming loop does.
    pub fn replay_batched<B: BatchSource>(
        &self,
        mut source: B,
        policy: &mut dyn RatePolicy,
        options: ReplayOptions<'_>,
    ) -> Result<RunResult, ReplayError<B::Error>> {
        let phase_names = source.phase_names();
        let mut telemetry = options.telemetry;
        let mut engine = StoreEngine::new(self.config.clone(), policy);
        let mut phases: Vec<(String, u64, u64)> = Vec::new();
        // Global index of the first event of the current batch, so
        // per-event error and phase indices match the streaming loop.
        let mut base: usize = 0;

        loop {
            let batch = match source.next_batch() {
                Ok(Some(batch)) => batch,
                Ok(None) => break,
                Err(cause) => {
                    return Err(ReplayError::Source {
                        event_index: base,
                        cause,
                    })
                }
            };
            let mut i = 0;
            while i < batch.len() {
                // The phase-free span starting at `i` goes through the
                // engine's batch path in one call.
                let span_end = batch[i..]
                    .iter()
                    .position(|ev| matches!(ev, Event::Phase { .. }))
                    .map_or(batch.len(), |p| i + p);
                if i < span_end {
                    engine
                        .apply_batch(
                            &batch[i..span_end],
                            telemetry
                                .as_deref_mut()
                                .map(|t| t as &mut dyn EngineObserver),
                        )
                        .map_err(|(off, cause)| {
                            ReplayError::Sim(SimError {
                                event_index: base + i + off,
                                cause,
                            })
                        })?;
                    i = span_end;
                }
                if let Some(ev @ Event::Phase { id }) = batch.get(i) {
                    let name = phase_names
                        .get(id.index())
                        .map(String::as_str)
                        .unwrap_or("<unknown>")
                        .to_owned();
                    if let Some(t) = telemetry.as_deref_mut() {
                        t.enter_phase(&name, engine.counters());
                    }
                    phases.push((name, (base + i) as u64, engine.collection_count()));
                    engine
                        .apply_event(
                            ev,
                            telemetry
                                .as_deref_mut()
                                .map(|t| t as &mut dyn EngineObserver),
                        )
                        .map_err(|cause| {
                            ReplayError::Sim(SimError {
                                event_index: base + i,
                                cause,
                            })
                        })?;
                    i += 1;
                }
            }
            base += batch.len();
        }

        if let Some(t) = telemetry {
            t.finish(engine.counters());
        }
        Ok(engine.into_result(phases))
    }

    /// Replays `trace` under `policy`, collecting per the configuration.
    #[deprecated(note = "use `Simulator::replay(&trace, policy, ReplayOptions::new())`")]
    pub fn run(&self, trace: &Trace, policy: &mut dyn RatePolicy) -> Result<RunResult, SimError> {
        self.replay(trace, policy, ReplayOptions::new())
            .map_err(ReplayError::into_sim)
    }

    /// Like `run`, additionally recording a [`RunTelemetry`]: the
    /// per-decision policy log and per-phase accounting.
    #[deprecated(note = "use `Simulator::replay` with `ReplayOptions::new().telemetry(&mut sink)`")]
    pub fn run_with_telemetry(
        &self,
        trace: &Trace,
        policy: &mut dyn RatePolicy,
    ) -> Result<(RunResult, RunTelemetry), SimError> {
        let mut telemetry = RunTelemetry::new(policy.name());
        self.replay(
            trace,
            policy,
            ReplayOptions::new().telemetry(&mut telemetry),
        )
        .map(|result| (result, telemetry))
        .map_err(ReplayError::into_sim)
    }

    /// Replays a fallible *stream* of events under `policy`.
    #[deprecated(note = "use `Simulator::replay` with an `EventStream` source")]
    pub fn run_streaming<E>(
        &self,
        phase_names: &[String],
        events: impl IntoIterator<Item = Result<Event, E>>,
        policy: &mut dyn RatePolicy,
    ) -> Result<RunResult, ReplayError<E>> {
        self.replay(
            EventStream::new(phase_names.to_vec(), events),
            policy,
            ReplayOptions::new(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_core::{CollectionObservation, Trigger};
    use odbgc_core::{EstimatorKind, Oracle};
    use odbgc_core::{FixedRatePolicy, SagaConfig, SagaPolicy, SaioPolicy};
    use odbgc_oo7::{Oo7App, Oo7Params};

    fn tiny_trace(seed: u64) -> Trace {
        Oo7App::standard(Oo7Params::tiny(), seed).generate().0
    }

    fn replay(sim: &Simulator, trace: &Trace, policy: &mut dyn RatePolicy) -> RunResult {
        sim.replay(trace, policy, ReplayOptions::new())
            .map_err(ReplayError::into_sim)
            .expect("run")
    }

    #[test]
    fn fixed_rate_collects_on_schedule() {
        let trace = tiny_trace(1);
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = FixedRatePolicy::new(20);
        let r = replay(&sim, &trace, &mut policy);
        assert!(r.collection_count() > 0, "reorgs must trigger collections");
        // Every realized interval reaches the trigger threshold.
        for rec in &r.collections {
            assert!(rec.interval_overwrites >= 20);
        }
        assert!(r.total_garbage_collected > 0);
    }

    #[test]
    fn saio_policy_runs_and_spends_gc_io() {
        let trace = tiny_trace(2);
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = SaioPolicy::with_frac(0.10);
        let r = replay(&sim, &trace, &mut policy);
        assert!(r.collection_count() > 2);
        assert!(r.gc_io_total > 0);
        assert!(r.gc_io_pct.is_some());
    }

    #[test]
    fn saga_oracle_policy_runs() {
        let trace = tiny_trace(3);
        let mut cfg = SimConfig::tiny();
        cfg.shadow_estimator = Some(EstimatorKind::Oracle);
        let sim = Simulator::new(cfg);
        let mut policy = SagaPolicy::new(SagaConfig::new(0.10), Box::new(Oracle));
        let r = replay(&sim, &trace, &mut policy);
        assert!(r.collection_count() > 0);
        // Shadow oracle estimates equal the recorded actual garbage.
        for rec in &r.collections {
            assert_eq!(rec.estimated_garbage, Some(rec.actual_garbage as f64));
        }
    }

    #[test]
    fn phases_are_recorded_in_order() {
        let trace = tiny_trace(4);
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = FixedRatePolicy::new(50);
        let r = replay(&sim, &trace, &mut policy);
        let names: Vec<&str> = r.phases.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["GenDB", "Reorg1", "Traverse", "Reorg2"]);
        // Phase event indices are increasing.
        assert!(r.phases.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn never_collecting_policy_accumulates_all_garbage() {
        let trace = tiny_trace(5);
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = FixedRatePolicy::new(u64::MAX / 4);
        let r = replay(&sim, &trace, &mut policy);
        assert_eq!(r.collection_count(), 0);
        assert_eq!(r.gc_io_total, 0);
        assert_eq!(r.final_garbage_bytes, r.total_garbage_generated);
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = tiny_trace(6);
        let sim = Simulator::new(SimConfig::tiny());
        let run = || {
            let mut policy = SaioPolicy::with_frac(0.05);
            replay(&sim, &trace, &mut policy)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.collections, b.collections);
        assert_eq!(a.gc_io_total, b.gc_io_total);
        assert_eq!(a.garbage_pct_mean, b.garbage_pct_mean);
    }

    #[test]
    fn malformed_trace_reports_event_index() {
        let mut b = odbgc_trace::TraceBuilder::new();
        b.access(odbgc_trace::ObjectId::new(99));
        let trace = b.finish();
        let sim = Simulator::new(SimConfig::tiny());
        let mut policy = FixedRatePolicy::new(10);
        let e = sim
            .replay(&trace, &mut policy, ReplayOptions::new())
            .map_err(ReplayError::into_sim)
            .unwrap_err();
        assert_eq!(e.event_index, 0);
        assert!(e.to_string().contains("event 0"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_replay() {
        let trace = tiny_trace(12);
        let sim = Simulator::new(SimConfig::tiny());
        let via_replay = {
            let mut p = SaioPolicy::with_frac(0.10);
            replay(&sim, &trace, &mut p)
        };
        let via_run = {
            let mut p = SaioPolicy::with_frac(0.10);
            sim.run(&trace, &mut p).expect("run")
        };
        assert_eq!(via_replay, via_run);
        let (via_telemetry, _) = {
            let mut p = SaioPolicy::with_frac(0.10);
            sim.run_with_telemetry(&trace, &mut p).expect("run")
        };
        assert_eq!(via_replay, via_telemetry);
        let via_streaming = {
            let mut p = SaioPolicy::with_frac(0.10);
            sim.run_streaming(
                trace.phase_names(),
                trace.iter().cloned().map(Ok::<_, Infallible>),
                &mut p,
            )
            .expect("run")
        };
        assert_eq!(via_replay, via_streaming);
    }

    #[test]
    fn event_stream_source_matches_borrowed_trace() {
        let trace = tiny_trace(11);
        let sim = Simulator::new(SimConfig::tiny());
        let borrowed = {
            let mut p = SaioPolicy::with_frac(0.10);
            replay(&sim, &trace, &mut p)
        };
        let streamed = {
            let mut p = SaioPolicy::with_frac(0.10);
            sim.replay(
                EventStream::new(
                    trace.phase_names().to_vec(),
                    trace.iter().cloned().map(Ok::<_, Infallible>),
                ),
                &mut p,
                ReplayOptions::new(),
            )
            .expect("run")
        };
        assert_eq!(borrowed, streamed);
    }

    #[test]
    fn batched_replay_matches_streaming_replay() {
        let trace = tiny_trace(13);
        let sim = Simulator::new(SimConfig::tiny());
        let streamed = {
            let mut p = SaioPolicy::with_frac(0.10);
            replay(&sim, &trace, &mut p)
        };
        let batched = {
            let mut p = SaioPolicy::with_frac(0.10);
            sim.replay_batched(TraceBatches::new(&trace), &mut p, ReplayOptions::new())
                .map_err(ReplayError::into_sim)
                .expect("run")
        };
        assert_eq!(streamed, batched);
        // And through the real block reader: encode, then replay the
        // decoded blocks (many batches, arena reused between them).
        let bytes = odbgc_tracefile::encode(&trace);
        let block_batched = {
            let mut p = SaioPolicy::with_frac(0.10);
            let reader = odbgc_tracefile::BatchReader::new(
                odbgc_tracefile::SliceBlocks::new(bytes.as_slice()).expect("header"),
            )
            .expect("phase table");
            sim.replay_batched(reader, &mut p, ReplayOptions::new())
                .expect("run")
        };
        assert_eq!(streamed, block_batched);
    }

    #[test]
    fn batched_replay_telemetry_matches_streaming() {
        let trace = tiny_trace(14);
        let sim = Simulator::new(SimConfig::tiny());
        let run = |batched: bool| {
            let mut p = SaioPolicy::with_frac(0.10);
            let mut sink = RunTelemetry::new(p.name());
            let r = if batched {
                sim.replay_batched(
                    TraceBatches::new(&trace),
                    &mut p,
                    ReplayOptions::new().telemetry(&mut sink),
                )
                .map_err(ReplayError::into_sim)
                .expect("run")
            } else {
                sim.replay(&trace, &mut p, ReplayOptions::new().telemetry(&mut sink))
                    .map_err(ReplayError::into_sim)
                    .expect("run")
            };
            (r, sink)
        };
        let (rs, ts) = run(false);
        let (rb, tb) = run(true);
        assert_eq!(rs, rb);
        assert_eq!(ts.decisions, tb.decisions);
        let phases = |t: &RunTelemetry| {
            t.phases
                .iter()
                .map(|p| (p.name.clone(), p.events, p.app_io, p.gc_io, p.collections))
                .collect::<Vec<_>>()
        };
        assert_eq!(phases(&ts), phases(&tb));
    }

    #[test]
    fn batched_replay_reports_sim_error_with_global_index() {
        let mut b = odbgc_trace::TraceBuilder::new();
        b.phase("P0");
        let root = b.create_unlinked(40, 1);
        b.access(odbgc_trace::ObjectId::new(4242)); // event 2: bogus
        b.root_add(root);
        let trace = b.finish();
        let sim = Simulator::new(SimConfig::tiny());
        let mut p = FixedRatePolicy::new(1_000_000);
        let err = sim
            .replay_batched(TraceBatches::new(&trace), &mut p, ReplayOptions::new())
            .map_err(ReplayError::into_sim)
            .unwrap_err();
        assert_eq!(err.event_index, 2);
    }

    /// A policy whose hand-built zero trigger is due before any activity
    /// at all — the only way a trigger can be due while the store still
    /// has no partitions. Counts its cold-start re-arms.
    struct EagerPolicy {
        initial_calls: u64,
    }

    impl RatePolicy for EagerPolicy {
        fn initial_trigger(&mut self) -> Trigger {
            self.initial_calls += 1;
            Trigger {
                overwrites: Some(0),
                app_io: None,
                alloc_bytes: None,
            }
        }

        fn after_collection(&mut self, _: &CollectionObservation) -> Trigger {
            Trigger::after_overwrites(1)
        }

        fn name(&self) -> String {
            "eager-test".into()
        }
    }

    #[test]
    fn due_trigger_with_no_partitions_re_arms_instead_of_spinning() {
        // Regression: a trace that front-loads phase markers leaves the
        // trigger due while no partition exists. The old code never
        // re-armed on that path, so the same due trigger re-fired — and
        // with `exact_oracle_recompute` (the default) ran the O(heap)
        // exact recompute — on every subsequent event. The fix re-arms
        // via `initial_trigger()` and resets the interval baselines, so
        // the policy sees exactly one cold-start call per no-op firing.
        let mut b = odbgc_trace::TraceBuilder::new();
        for i in 0..5 {
            b.phase(&format!("Marker{i}"));
        }
        let root = b.create_unlinked(40, 1);
        b.root_add(root);
        let victim = b.create_unlinked(40, 0);
        b.slot_write(root, odbgc_trace::SlotIdx::new(0), Some(victim));
        b.slot_clear(root, odbgc_trace::SlotIdx::new(0));
        let trace = b.finish();

        let mut policy = EagerPolicy { initial_calls: 0 };
        let r = replay(&Simulator::new(SimConfig::tiny()), &trace, &mut policy);
        assert_eq!(
            policy.initial_calls,
            1 + 5,
            "one cold start + one re-arm per front-loaded phase marker"
        );
        assert_eq!(r.events_replayed, trace.len() as u64);
        assert!(r.collection_count() > 0, "real workload still collects");
    }

    #[test]
    fn windowed_gc_io_pct_matches_metrics_window() {
        let trace = tiny_trace(8);
        let cfg = SimConfig::tiny(); // preamble 2
        let sim = Simulator::new(cfg);
        let mut policy = SaioPolicy::with_frac(0.10);
        let r = replay(&sim, &trace, &mut policy);
        assert!(r.collection_count() > 2);
        let post_hoc = r.windowed_gc_io_pct(2).expect("window exists");
        let live = r.gc_io_pct.expect("window exists");
        assert!(
            (post_hoc - live).abs() < 1e-9,
            "post-hoc {post_hoc} vs live {live}"
        );
        // Too-long preamble yields None.
        assert_eq!(r.windowed_gc_io_pct(r.collection_count()), None);
    }

    #[test]
    fn telemetry_run_matches_plain_run_and_counts_decisions() {
        let trace = tiny_trace(9);
        let sim = Simulator::new(SimConfig::tiny());
        let plain = {
            let mut p = SaioPolicy::with_frac(0.10);
            replay(&sim, &trace, &mut p)
        };
        let (instrumented, telemetry) = {
            let mut p = SaioPolicy::with_frac(0.10);
            let mut sink = RunTelemetry::new(p.name());
            let r = sim
                .replay(&trace, &mut p, ReplayOptions::new().telemetry(&mut sink))
                .map_err(ReplayError::into_sim)
                .expect("run");
            (r, sink)
        };
        // The telemetry sink must be a pure observer: identical results.
        assert_eq!(plain, instrumented);
        assert_eq!(telemetry.decisions.len() as u64, plain.collection_count());
        // Phase accounting mirrors the trace's phase markers.
        let names: Vec<&str> = telemetry.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["GenDB", "Reorg1", "Traverse", "Reorg2"]);
        // Phase deltas sum to the whole-run totals.
        let app: u64 = telemetry.phases.iter().map(|p| p.app_io).sum();
        let gc: u64 = telemetry.phases.iter().map(|p| p.gc_io).sum();
        let events: u64 = telemetry.phases.iter().map(|p| p.events).sum();
        assert_eq!(app, plain.app_io_total);
        assert_eq!(gc, plain.gc_io_total);
        assert_eq!(events, plain.events_replayed);
        let collections: u64 = telemetry.phases.iter().map(|p| p.collections).sum();
        assert_eq!(collections, plain.collection_count());
    }

    #[test]
    fn higher_fixed_rate_means_fewer_collections_and_less_gc_io() {
        let trace = tiny_trace(7);
        let sim = Simulator::new(SimConfig::tiny());
        let run = |rate| {
            let mut p = FixedRatePolicy::new(rate);
            replay(&sim, &trace, &mut p)
        };
        let fast = run(10);
        let slow = run(200);
        assert!(fast.collection_count() > slow.collection_count());
        assert!(fast.gc_io_total > slow.gc_io_total);
        // Slower collection leaves more garbage behind on average.
        assert!(fast.total_garbage_collected >= slow.total_garbage_collected);
    }
}
