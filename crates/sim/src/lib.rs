//! Trace-driven simulator for collection-rate experiments.
//!
//! Ties the substrates together exactly as the paper's simulation
//! environment does (§3.2): a trace of database events is replayed through
//! the partitioned store; after every event the simulator samples the
//! garbage percentage (the paper's approximation of a uniform sample under
//! an active workload); the rate policy's trigger is checked against the
//! elapsed application I/O and pointer overwrites; and when it fires, the
//! collector runs, the policy observes the outcome, and a fresh trigger is
//! armed.
//!
//! Results deliberately separate a *preamble* — the cold-start collections
//! (paper: 10–30, usually near 10) — from the measured remainder, and
//! experiments aggregate means over multiple seeds, reporting min/mean/max
//! (the paper's error bars).

#![warn(missing_docs)]

pub mod config;
pub mod experiment;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod series;
pub mod simulator;
pub mod telemetry;

pub use config::SimConfig;
pub use experiment::{run_single, sweep_point, ExperimentOutcome, SweepPoint};
pub use metrics::RunMetrics;
pub use runner::{
    default_jobs, CacheStats, CellOutcome, ExperimentPlan, FailurePolicy, FaultKind, FaultSpec,
    JobError, JobErrorKind, PlanCell, PlanOutcome, PlanProgress, TraceCache,
};
pub use series::CollectionRecord;
pub use simulator::{
    BatchSource, EventStream, OwnedEvents, ReplayError, ReplayOptions, ReplaySource, RunResult,
    SimError, Simulator, TraceBatches, TraceEvents,
};
pub use telemetry::{
    verify_header, DecisionRecord, Json, JsonError, PhaseTelemetry, PlanTelemetry, RunTelemetry,
};

pub use odbgc_tracefile::{CorpusKey, CorpusStats, TraceCorpus};

pub use odbgc_engine as engine;

pub use odbgc_core as core_policies;
pub use odbgc_gc as gc;
pub use odbgc_oo7 as oo7;
pub use odbgc_store as store;
pub use odbgc_trace as trace;
