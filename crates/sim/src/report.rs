//! Plain-text table and CSV rendering for experiment output.

use crate::experiment::SweepPoint;

/// Renders rows as an aligned plain-text table.
///
/// Column widths are measured in characters, not bytes — `format!`'s
/// width specifier pads by character count, so byte-measured widths
/// would misalign any column containing non-ASCII text (µ, ±, …).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let width_of = |s: &str| s.chars().count();
    let mut widths: Vec<usize> = headers.iter().map(|h| width_of(h)).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(width_of(cell));
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Quotes one CSV cell per RFC 4180 when it needs it: cells containing
/// commas, quotes, or newlines are wrapped in double quotes with inner
/// quotes doubled. Policy labels like `saio(5.0%, c_hist=0)` contain
/// commas, so unquoted emission would silently misalign rows.
fn csv_cell(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// Renders rows as RFC 4180 CSV, quoting cells that contain commas,
/// quotes, or newlines.
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let render_row = |cells: &mut dyn Iterator<Item = &str>| -> String {
        cells.map(csv_cell).collect::<Vec<_>>().join(",")
    };
    let mut out = render_row(&mut headers.iter().copied());
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(&mut row.iter().map(String::as_str)));
        out.push('\n');
    }
    out
}

/// Formats a float with fixed precision, rendering NaN and ±∞ as "-"
/// (an undefined or degenerate statistic, e.g. the min/max of an empty
/// run set).
pub fn fmt_f(v: f64, prec: usize) -> String {
    if v.is_finite() {
        format!("{v:.prec$}")
    } else {
        "-".to_owned()
    }
}

/// Standard table rows for a requested-vs-achieved sweep.
pub fn sweep_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                fmt_f(p.x, 1),
                fmt_f(p.mean, 2),
                fmt_f(p.min, 2),
                fmt_f(p.max, 2),
                p.runs.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["x", "value"],
            &[
                vec!["1".into(), "10.00".into()],
                vec!["100".into(), "3.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("x"));
        assert!(lines[0].contains("value"));
        assert!(lines[2].trim_start().starts_with('1'));
    }

    #[test]
    fn table_aligns_non_ascii_headers_by_chars_not_bytes() {
        // "µs" is 3 bytes but 2 chars; byte-measured widths would pad the
        // header column wider than its cells and break the alignment.
        let t = render_table(
            &["µs", "garbage ±"],
            &[
                vec!["1".into(), "10.00".into()],
                vec!["100".into(), "3.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        let header_width = lines[0].chars().count();
        for data in &lines[2..] {
            assert_eq!(
                data.chars().count(),
                header_width,
                "row {data:?} misaligned with header {:?}",
                lines[0]
            );
        }
        // The rule matches the rendered character width too.
        assert_eq!(lines[1].chars().count(), header_width);
    }

    #[test]
    fn csv_round_trip_shape() {
        let c = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn csv_quotes_cells_with_commas_and_quotes() {
        let c = render_csv(
            &["label", "x"],
            &[
                vec!["saio(5.0%, c_hist=0)".into(), "1".into()],
                vec!["say \"hi\"".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "label,x");
        assert_eq!(lines[1], "\"saio(5.0%, c_hist=0)\",1");
        assert_eq!(lines[2], "\"say \"\"hi\"\"\",2");
        // Every data row still has exactly two (quoted-aware) fields:
        // naive comma counting would see three in row 1.
        assert_eq!(lines[1].matches(',').count(), 2);
    }

    #[test]
    fn fmt_f_handles_nan_and_infinities() {
        assert_eq!(fmt_f(f64::NAN, 2), "-");
        assert_eq!(fmt_f(f64::INFINITY, 2), "-");
        assert_eq!(fmt_f(f64::NEG_INFINITY, 2), "-");
        assert_eq!(fmt_f(1.2345, 2), "1.23");
    }

    #[test]
    fn sweep_rows_shape() {
        let rows = sweep_rows(&[crate::experiment::sweep_point(5.0, &[4.0, 6.0])]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], vec!["5.0", "5.00", "4.00", "6.00", "2"]);
    }
}
