//! Plain-text table and CSV rendering for experiment output.

use crate::experiment::SweepPoint;

/// Renders rows as an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (no quoting — numeric experiment data only).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a float with fixed precision, rendering NaN as "-".
pub fn fmt_f(v: f64, prec: usize) -> String {
    if v.is_nan() {
        "-".to_owned()
    } else {
        format!("{v:.prec$}")
    }
}

/// Standard table rows for a requested-vs-achieved sweep.
pub fn sweep_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                fmt_f(p.x, 1),
                fmt_f(p.mean, 2),
                fmt_f(p.min, 2),
                fmt_f(p.max, 2),
                p.runs.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["x", "value"],
            &[
                vec!["1".into(), "10.00".into()],
                vec!["100".into(), "3.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("x"));
        assert!(lines[0].contains("value"));
        assert!(lines[2].trim_start().starts_with('1'));
    }

    #[test]
    fn csv_round_trip_shape() {
        let c = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn fmt_f_handles_nan() {
        assert_eq!(fmt_f(f64::NAN, 2), "-");
        assert_eq!(fmt_f(1.2345, 2), "1.23");
    }

    #[test]
    fn sweep_rows_shape() {
        let rows = sweep_rows(&[crate::experiment::sweep_point(5.0, &[4.0, 6.0])]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], vec!["5.0", "5.00", "4.00", "6.00", "2"]);
    }
}
