//! Run- and plan-level telemetry with a versioned JSON export.
//!
//! The simulator's [`crate::RunResult`] carries the *answers* (achieved
//! fractions, totals, series); telemetry carries the *explanations*:
//!
//! * a **policy decision log** — one [`DecisionRecord`] per trigger
//!   decision, capturing the [`CollectionObservation`] the policy saw,
//!   the [`Trigger`] it chose, whether a configured clamp was hit
//!   ([`ClampHit`]), and the shadow estimator's `ActGarb` error against
//!   the oracle's `exact_garbage`;
//! * **per-phase accounting** — application I/O, GC I/O, overwrites,
//!   collections, and the event-sampled garbage-percentage mean split by
//!   OO7 phase ([`PhaseTelemetry`]);
//! * **plan-level telemetry** — per-job wall times, cache/corpus tiers,
//!   the failure list, and worker-pool utilization ([`PlanTelemetry`]).
//!
//! Telemetry is strictly off the hot path: a plain
//! [`crate::Simulator::replay`] records nothing, and attaching a sink via
//! [`crate::ReplayOptions::telemetry`] produces a byte-identical
//! `RunResult` plus the telemetry on the side.
//!
//! # Export format
//!
//! Everything exports as JSON through the dependency-free [`Json`] value
//! type. Every document leads with a schema header, versioned like the
//! binary tracefile format:
//!
//! ```json
//! { "schema": "odbgc-telemetry", "version": 1, "kind": "run", ... }
//! ```
//!
//! Readers must reject documents whose `schema` is unknown or whose
//! `version` is newer than theirs ([`verify_header`]). Nondeterministic
//! values (wall times, worker counts, machine load, GC-scheduler
//! execution records) live exclusively under keys named `timing` or
//! prefixed `wall_` / `sched_`, so [`Json::strip_volatile`] yields a
//! byte-identical document for any worker count — the property
//! `odbgc sweep --telemetry` tests rely on.

use std::time::Duration;

use odbgc_core::ClampHit;
use odbgc_engine::{CounterSnapshot, EngineObserver};
use odbgc_gc::SchedStats;

use crate::runner::{ExperimentPlan, PlanOutcome};

pub use odbgc_engine::DecisionRecord;

/// Schema identifier every telemetry document leads with.
pub const SCHEMA_NAME: &str = "odbgc-telemetry";
/// Current schema version. Bump on any breaking layout change.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// JSON value type (no external dependencies)
// ---------------------------------------------------------------------

/// A JSON value that round-trips exactly: numbers are kept as their raw
/// source literal, so `parse` → `to_string` reproduces the input byte
/// for byte (modulo whitespace normalization).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its canonical literal text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An unsigned-integer number.
    pub fn u64(n: u64) -> Json {
        Json::Num(n.to_string())
    }

    /// A float number. Non-finite values export as `null` (JSON has no
    /// NaN/Infinity); finite values use Rust's shortest round-trip form.
    pub fn f64(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(format!("{x}"))
        } else {
            Json::Null
        }
    }

    /// An optional unsigned integer (`None` → `null`).
    pub fn opt_u64(n: Option<u64>) -> Json {
        n.map_or(Json::Null, Json::u64)
    }

    /// An optional float (`None` → `null`).
    pub fn opt_f64(x: Option<f64>) -> Json {
        x.map_or(Json::Null, Json::f64)
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is an integer literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A copy with every nondeterministic field removed: object entries
    /// whose key is `timing`, starts with `wall_`, starts with `sched_`
    /// (GC-scheduler execution records, which vary with the collector
    /// worker count), or starts with `net_` (network serve-mode
    /// per-client counters — byte and stall totals depend on connection
    /// timing) are dropped, recursively. Two documents describing the
    /// same deterministic outcome compare equal after stripping,
    /// regardless of worker count, machine speed, or transport.
    pub fn strip_volatile(&self) -> Json {
        match self {
            Json::Obj(fields) => Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| {
                        k != "timing"
                            && !k.starts_with("wall_")
                            && !k.starts_with("sched_")
                            && !k.starts_with("net_")
                    })
                    .map(|(k, v)| (k.clone(), v.strip_volatile()))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(Json::strip_volatile).collect()),
            other => other.clone(),
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Numbers keep their source literal, object
    /// order is preserved, so `to_string_pretty` of the result
    /// re-emits an equivalent document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing data after document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Validate the token is a real number even though the raw text is
        // what gets stored.
        if text.parse::<f64>().is_err() {
            return Err(self.error(format!("malformed number {text:?}")));
        }
        Ok(Json::Num(text.to_owned()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("malformed \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unmodified).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Checks a parsed document's schema header: `schema` must be
/// [`SCHEMA_NAME`], `version` must be ≤ [`SCHEMA_VERSION`], and `kind`
/// must be present. Returns the document's `kind`.
pub fn verify_header(doc: &Json) -> Result<String, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\" field")?;
    if schema != SCHEMA_NAME {
        return Err(format!("unknown schema {schema:?} (want {SCHEMA_NAME:?})"));
    }
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing \"version\" field")?;
    if version > SCHEMA_VERSION {
        return Err(format!(
            "document version {version} is newer than supported {SCHEMA_VERSION}"
        ));
    }
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing \"kind\" field")?;
    Ok(kind.to_owned())
}

// ---------------------------------------------------------------------
// Run telemetry
// ---------------------------------------------------------------------

/// The JSON form of one [`DecisionRecord`] (layout unchanged since the
/// record lived in this module; it now comes from `odbgc-engine`, which
/// stays JSON-free).
fn decision_to_json(rec: &DecisionRecord) -> Json {
    let o = &rec.observation;
    Json::Obj(vec![
        ("index".into(), Json::u64(rec.index)),
        ("clamp".into(), Json::str(rec.clamp.as_str())),
        (
            "trigger".into(),
            Json::Obj(vec![
                ("app_io".into(), Json::opt_u64(rec.trigger.app_io)),
                ("overwrites".into(), Json::opt_u64(rec.trigger.overwrites)),
                ("alloc_bytes".into(), Json::opt_u64(rec.trigger.alloc_bytes)),
            ]),
        ),
        (
            "estimated_garbage".into(),
            Json::opt_f64(rec.estimated_garbage),
        ),
        ("estimate_error".into(), Json::opt_f64(rec.estimate_error())),
        (
            "observation".into(),
            Json::Obj(vec![
                ("gc_io".into(), Json::u64(o.gc_io)),
                ("app_io_since_prev".into(), Json::u64(o.app_io_since_prev)),
                ("bytes_reclaimed".into(), Json::u64(o.bytes_reclaimed)),
                (
                    "overwrites_of_collected".into(),
                    Json::u64(o.overwrites_of_collected),
                ),
                (
                    "total_outstanding_overwrites".into(),
                    Json::u64(o.total_outstanding_overwrites),
                ),
                ("partition_count".into(), Json::u64(o.partition_count)),
                ("db_size".into(), Json::u64(o.db_size)),
                ("total_collected".into(), Json::u64(o.total_collected)),
                ("overwrite_clock".into(), Json::u64(o.overwrite_clock)),
                ("alloc_clock".into(), Json::u64(o.alloc_clock)),
                ("exact_garbage".into(), Json::u64(o.exact_garbage)),
            ]),
        ),
    ])
}

/// Accounting for one workload phase of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTelemetry {
    /// Phase name from the trace's phase table (`<start>` for events
    /// preceding the first phase marker).
    pub name: String,
    /// Events replayed during the phase (including its marker).
    pub events: u64,
    /// Collections performed during the phase.
    pub collections: u64,
    /// Application page I/O charged during the phase.
    pub app_io: u64,
    /// Collector page I/O charged during the phase.
    pub gc_io: u64,
    /// Pointer overwrites during the phase.
    pub overwrites: u64,
    /// Event-sampled mean garbage percentage over the phase (every event
    /// with a nonzero database size samples once; no preamble exclusion,
    /// unlike the whole-run measured-window mean).
    pub garbage_pct_mean: Option<f64>,
}

impl PhaseTelemetry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("events".into(), Json::u64(self.events)),
            ("collections".into(), Json::u64(self.collections)),
            ("app_io".into(), Json::u64(self.app_io)),
            ("gc_io".into(), Json::u64(self.gc_io)),
            ("overwrites".into(), Json::u64(self.overwrites)),
            (
                "garbage_pct_mean".into(),
                Json::opt_f64(self.garbage_pct_mean),
            ),
        ])
    }
}

/// In-progress accounting for the current phase.
#[derive(Debug, Clone)]
struct PhaseAccumulator {
    name: String,
    events: u64,
    collections: u64,
    app_io_start: u64,
    gc_io_start: u64,
    overwrites_start: u64,
    garbage_pct_sum: f64,
    garbage_pct_samples: u64,
}

impl PhaseAccumulator {
    fn open(name: String, app_io: u64, gc_io: u64, overwrites: u64) -> Self {
        PhaseAccumulator {
            name,
            events: 0,
            collections: 0,
            app_io_start: app_io,
            gc_io_start: gc_io,
            overwrites_start: overwrites,
            garbage_pct_sum: 0.0,
            garbage_pct_samples: 0,
        }
    }

    fn close(self, app_io: u64, gc_io: u64, overwrites: u64) -> PhaseTelemetry {
        PhaseTelemetry {
            name: self.name,
            events: self.events,
            collections: self.collections,
            app_io: app_io - self.app_io_start,
            gc_io: gc_io - self.gc_io_start,
            overwrites: overwrites - self.overwrites_start,
            garbage_pct_mean: (self.garbage_pct_samples > 0)
                .then(|| self.garbage_pct_sum / self.garbage_pct_samples as f64),
        }
    }
}

/// Everything one telemetry-enabled run recorded.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// The policy's self-description.
    pub policy: String,
    /// One record per trigger decision, in decision order. The length
    /// equals the run's collection count: no-op re-arms (a due trigger
    /// before any partition exists) are not decisions.
    pub decisions: Vec<DecisionRecord>,
    /// Closed phases, in trace order.
    pub phases: Vec<PhaseTelemetry>,
    /// One scheduler execution record per collection, in collection
    /// order. Volatile: busy times and steal counts vary run to run, so
    /// these export only under the `sched_stats` key, which
    /// [`Json::strip_volatile`] removes.
    pub sched: Vec<SchedStats>,
    current: Option<PhaseAccumulator>,
}

impl RunTelemetry {
    /// An empty telemetry sink for a run under the named policy. Events
    /// preceding the first phase marker accrue to an implicit `<start>`
    /// phase (dropped if it stays empty).
    pub fn new(policy: String) -> Self {
        RunTelemetry {
            policy,
            decisions: Vec::new(),
            phases: Vec::new(),
            sched: Vec::new(),
            current: Some(PhaseAccumulator::open("<start>".to_owned(), 0, 0, 0)),
        }
    }

    /// A telemetry document for a run whose decisions were logged
    /// elsewhere — e.g. a serve-mode shard's `DecisionLog`, whose records
    /// come from live I/O counters. Such runs have no trace phases.
    pub fn from_decisions(policy: String, decisions: Vec<DecisionRecord>) -> Self {
        RunTelemetry {
            policy,
            decisions,
            phases: Vec::new(),
            sched: Vec::new(),
            current: None,
        }
    }

    /// Closes the current phase and opens `name`.
    pub(crate) fn enter_phase(&mut self, name: &str, snap: CounterSnapshot) {
        if let Some(acc) = self.current.take() {
            // The implicit start phase vanishes if nothing happened in it.
            if !(acc.name == "<start>" && acc.events == 0) {
                self.phases.push(acc.close(
                    snap.app_io_total,
                    snap.gc_io_total,
                    snap.overwrite_clock,
                ));
            }
        }
        self.current = Some(PhaseAccumulator::open(
            name.to_owned(),
            snap.app_io_total,
            snap.gc_io_total,
            snap.overwrite_clock,
        ));
    }

    /// Accounts one replayed event to the current phase.
    fn account_event(&mut self, snap: CounterSnapshot) {
        let acc = self.current.as_mut().expect("telemetry not finished");
        acc.events += 1;
        if snap.db_size > 0 {
            acc.garbage_pct_sum += 100.0 * snap.garbage_bytes as f64 / snap.db_size as f64;
            acc.garbage_pct_samples += 1;
        }
    }

    /// Records one policy decision (one per collection).
    fn account_decision(&mut self, record: DecisionRecord) {
        if let Some(acc) = self.current.as_mut() {
            acc.collections += 1;
        }
        self.decisions.push(record);
    }

    /// Closes the final phase.
    pub(crate) fn finish(&mut self, snap: CounterSnapshot) {
        if let Some(acc) = self.current.take() {
            if !(acc.name == "<start>" && acc.events == 0) {
                self.phases.push(acc.close(
                    snap.app_io_total,
                    snap.gc_io_total,
                    snap.overwrite_clock,
                ));
            }
        }
    }

    /// How many decisions hit the given clamp.
    pub fn clamp_count(&self, clamp: ClampHit) -> usize {
        self.decisions.iter().filter(|d| d.clamp == clamp).count()
    }

    /// The versioned JSON document (`kind: "run"`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA_NAME)),
            ("version".into(), Json::u64(SCHEMA_VERSION)),
            ("kind".into(), Json::str("run")),
            ("policy".into(), Json::str(&self.policy)),
            (
                "decision_count".into(),
                Json::u64(self.decisions.len() as u64),
            ),
            (
                "clamp_hits".into(),
                Json::Obj(vec![
                    (
                        "min".into(),
                        Json::u64(self.clamp_count(ClampHit::Min) as u64),
                    ),
                    (
                        "max".into(),
                        Json::u64(self.clamp_count(ClampHit::Max) as u64),
                    ),
                ]),
            ),
            (
                "phases".into(),
                Json::Arr(self.phases.iter().map(PhaseTelemetry::to_json).collect()),
            ),
            (
                "decisions".into(),
                Json::Arr(self.decisions.iter().map(decision_to_json).collect()),
            ),
            // Volatile by key: `sched_` prefix, stripped by
            // `Json::strip_volatile`.
            (
                "sched_stats".into(),
                Json::Arr(self.sched.iter().map(sched_to_json).collect()),
            ),
        ])
    }
}

/// The JSON form of one collection's scheduler execution record. Lives
/// only under the volatile `sched_stats` key.
fn sched_to_json(stats: &SchedStats) -> Json {
    Json::Obj(vec![
        ("workers".into(), Json::u64(stats.workers as u64)),
        ("packets".into(), Json::u64(stats.packets())),
        ("steals".into(), Json::u64(stats.steals())),
        ("busy_ns".into(), Json::u64(stats.busy_ns())),
        (
            "buckets".into(),
            Json::Arr(
                stats
                    .buckets
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("label".into(), Json::str(b.label)),
                            ("packets".into(), Json::u64(b.packets)),
                            ("steals".into(), Json::u64(b.steals())),
                            ("busy_ns".into(), Json::u64(b.busy_ns())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The telemetry sink observes the engine directly: per-event counter
/// snapshots accrue to the current phase, decisions are recorded
/// verbatim. This is how [`crate::Simulator::replay`] attaches telemetry
/// — the engine never learns what a telemetry document is.
impl EngineObserver for RunTelemetry {
    fn note_event(&mut self, snap: CounterSnapshot) {
        self.account_event(snap);
    }

    fn note_decision(&mut self, record: &DecisionRecord) {
        self.account_decision(record.clone());
    }

    fn note_collection_sched(&mut self, stats: &SchedStats) {
        self.sched.push(stats.clone());
    }
}

// ---------------------------------------------------------------------
// Plan telemetry
// ---------------------------------------------------------------------

/// Plan-level execution telemetry: what [`crate::runner`] did, job by
/// job, plus the cache/corpus tiers and pool utilization.
#[derive(Debug, Clone)]
pub struct PlanTelemetry {
    document: Json,
}

impl PlanTelemetry {
    /// Builds the telemetry document for one executed plan.
    ///
    /// Everything except the `timing` object and `wall_*` keys is
    /// deterministic for a given plan, regardless of worker count.
    pub fn from_outcome(plan: &ExperimentPlan, outcome: &PlanOutcome) -> Self {
        let cells: Vec<Json> = outcome
            .cells
            .iter()
            .map(|cell| {
                let per_seed: Vec<Json> = cell
                    .outcome
                    .runs
                    .iter()
                    .zip(&plan.seeds)
                    .map(|(run, &seed)| match run {
                        Ok(r) => Json::Obj(vec![
                            ("seed".into(), Json::u64(seed)),
                            ("collections".into(), Json::u64(r.collection_count())),
                            ("gc_io_pct".into(), Json::opt_f64(r.gc_io_pct)),
                            ("garbage_pct_mean".into(), Json::opt_f64(r.garbage_pct_mean)),
                            ("app_io_total".into(), Json::u64(r.app_io_total)),
                            ("gc_io_total".into(), Json::u64(r.gc_io_total)),
                        ]),
                        Err(e) => Json::Obj(vec![
                            ("seed".into(), Json::u64(seed)),
                            ("error".into(), Json::str(e.kind.to_string())),
                        ]),
                    })
                    .collect();
                Json::Obj(vec![
                    ("x".into(), Json::f64(cell.x)),
                    ("spec".into(), Json::str(cell.spec.to_string())),
                    ("runs".into(), Json::Arr(per_seed)),
                    (
                        "wall_ms".into(),
                        Json::Arr(
                            cell.wall_times
                                .iter()
                                .map(|w| Json::u64(w.as_millis() as u64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();

        let failures: Vec<Json> = outcome
            .failures
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("cell_index".into(), Json::u64(f.cell_index as u64)),
                    ("spec".into(), Json::str(f.spec.to_string())),
                    ("seed".into(), Json::u64(f.seed)),
                    ("error".into(), Json::str(f.kind.to_string())),
                ])
            })
            .collect();

        let cache = Json::Obj(vec![
            ("hits".into(), Json::u64(outcome.cache.hits)),
            ("misses".into(), Json::u64(outcome.cache.misses)),
        ]);
        let corpus = match &outcome.corpus {
            Some(c) => Json::Obj(vec![
                ("hits".into(), Json::u64(c.hits)),
                ("misses".into(), Json::u64(c.misses)),
                ("generated".into(), Json::u64(c.generated)),
                (
                    "wall_load_ms".into(),
                    Json::u64(c.load_time.as_millis() as u64),
                ),
            ]),
            None => Json::Null,
        };

        let cpu = outcome.cpu_time();
        let utilization = if outcome.elapsed > Duration::ZERO && outcome.jobs > 0 {
            cpu.as_secs_f64() / (outcome.elapsed.as_secs_f64() * outcome.jobs as f64)
        } else {
            0.0
        };
        let timing = Json::Obj(vec![
            ("jobs".into(), Json::u64(outcome.jobs as u64)),
            (
                "elapsed_ms".into(),
                Json::u64(outcome.elapsed.as_millis() as u64),
            ),
            ("cpu_ms".into(), Json::u64(cpu.as_millis() as u64)),
            ("utilization".into(), Json::f64(utilization)),
        ]);

        let document = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA_NAME)),
            ("version".into(), Json::u64(SCHEMA_VERSION)),
            ("kind".into(), Json::str("plan")),
            ("seeds".into(), Json::u64(plan.seeds.len() as u64)),
            (
                "jobs_total".into(),
                Json::u64((plan.cells.len() * plan.seeds.len()) as u64),
            ),
            (
                "failure_count".into(),
                Json::u64(outcome.failures.len() as u64),
            ),
            ("cells".into(), Json::Arr(cells)),
            ("failures".into(), Json::Arr(failures)),
            ("cache".into(), cache),
            ("corpus".into(), corpus),
            ("timing".into(), timing),
        ]);
        PlanTelemetry { document }
    }

    /// The versioned JSON document (`kind: "plan"`).
    pub fn to_json(&self) -> &Json {
        &self.document
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA_NAME)),
            ("version".into(), Json::u64(SCHEMA_VERSION)),
            ("kind".into(), Json::str("run")),
            ("pi".into(), Json::f64(3.25)),
            ("big".into(), Json::u64(u64::MAX)),
            ("none".into(), Json::Null),
            ("ok".into(), Json::Bool(true)),
            (
                "arr".into(),
                Json::Arr(vec![Json::u64(1), Json::str("two\n\"quoted\"")]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ])
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let text = doc().to_string_pretty();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed, doc());
        assert_eq!(parsed.to_string_pretty(), text);
    }

    #[test]
    fn u64_max_survives_round_trip() {
        // f64 cannot represent u64::MAX; the raw-literal representation
        // must preserve it exactly.
        let text = Json::u64(u64::MAX).to_string_pretty();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY), Json::Null);
        assert_eq!(Json::f64(1.5), Json::Num("1.5".into()));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nul", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let parsed = Json::parse(r#""a\n\t\"\\Aü""#).expect("parses");
        assert_eq!(parsed.as_str(), Some("a\n\t\"\\Aü"));
    }

    #[test]
    fn strip_volatile_removes_timing_and_wall_keys_recursively() {
        let doc = Json::Obj(vec![
            ("keep".into(), Json::u64(1)),
            ("timing".into(), Json::Obj(vec![])),
            (
                "cells".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("x".into(), Json::u64(2)),
                    ("wall_ms".into(), Json::Arr(vec![Json::u64(9)])),
                    ("sched_stats".into(), Json::Arr(vec![Json::u64(7)])),
                    ("net_clients".into(), Json::Arr(vec![Json::u64(5)])),
                ])]),
            ),
            (
                "corpus".into(),
                Json::Obj(vec![("wall_load_ms".into(), Json::u64(3))]),
            ),
        ]);
        let stripped = doc.strip_volatile();
        assert_eq!(
            stripped,
            Json::Obj(vec![
                ("keep".into(), Json::u64(1)),
                (
                    "cells".into(),
                    Json::Arr(vec![Json::Obj(vec![("x".into(), Json::u64(2))])]),
                ),
                ("corpus".into(), Json::Obj(vec![])),
            ])
        );
    }

    #[test]
    fn verify_header_enforces_schema_and_version() {
        assert_eq!(verify_header(&doc()).as_deref(), Ok("run"));
        let wrong_schema = Json::Obj(vec![
            ("schema".into(), Json::str("something-else")),
            ("version".into(), Json::u64(1)),
            ("kind".into(), Json::str("run")),
        ]);
        assert!(verify_header(&wrong_schema).is_err());
        let future = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA_NAME)),
            ("version".into(), Json::u64(SCHEMA_VERSION + 1)),
            ("kind".into(), Json::str("run")),
        ]);
        assert!(verify_header(&future)
            .unwrap_err()
            .contains("newer than supported"));
        assert!(verify_header(&Json::Obj(vec![])).is_err());
    }

    #[test]
    fn phase_accumulator_reports_deltas_not_totals() {
        let mut t = RunTelemetry::new("test".into());
        let snap = |app, gc, ow, garbage, db| CounterSnapshot {
            app_io_total: app,
            gc_io_total: gc,
            overwrite_clock: ow,
            garbage_bytes: garbage,
            db_size: db,
        };
        t.note_event(snap(5, 0, 0, 0, 100)); // pre-marker event → <start>
        t.enter_phase("A", snap(5, 0, 0, 0, 100));
        t.note_event(snap(10, 2, 1, 50, 100));
        t.note_event(snap(20, 2, 3, 25, 100));
        t.enter_phase("B", snap(20, 2, 3, 25, 100));
        t.note_event(snap(30, 8, 4, 0, 0)); // zero db size: no sample
        t.finish(snap(30, 8, 4, 0, 0));

        assert_eq!(t.phases.len(), 3);
        assert_eq!(t.phases[0].name, "<start>");
        assert_eq!(t.phases[0].events, 1);
        let a = &t.phases[1];
        assert_eq!((a.name.as_str(), a.events, a.collections), ("A", 2, 0));
        assert_eq!((a.app_io, a.gc_io, a.overwrites), (15, 2, 3));
        assert_eq!(a.garbage_pct_mean, Some((50.0 + 25.0) / 2.0));
        let b = &t.phases[2];
        assert_eq!((b.app_io, b.gc_io, b.overwrites), (10, 6, 1));
        assert_eq!(b.garbage_pct_mean, None);
    }

    #[test]
    fn empty_start_phase_is_dropped() {
        let mut t = RunTelemetry::new("test".into());
        let snap = CounterSnapshot {
            app_io_total: 0,
            gc_io_total: 0,
            overwrite_clock: 0,
            garbage_bytes: 0,
            db_size: 0,
        };
        t.enter_phase("First", snap);
        t.note_event(snap);
        t.finish(snap);
        assert_eq!(t.phases.len(), 1);
        assert_eq!(t.phases[0].name, "First");
    }

    #[test]
    fn from_decisions_builds_a_run_document() {
        use odbgc_core::{CollectionObservation, Trigger};
        let rec = DecisionRecord {
            index: 0,
            observation: CollectionObservation::zero(),
            trigger: Trigger::after_overwrites(5),
            clamp: ClampHit::None,
            estimated_garbage: None,
        };
        let t = RunTelemetry::from_decisions("live".into(), vec![rec]);
        let doc = t.to_json();
        assert_eq!(verify_header(&doc).as_deref(), Ok("run"));
        assert_eq!(doc.get("policy").and_then(Json::as_str), Some("live"));
        assert_eq!(doc.get("decision_count").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("phases").and_then(Json::as_arr).map(<[_]>::len),
            Some(0)
        );
    }
}
