//! The four-phase test application (Figure 2).

use odbgc_trace::Trace;

use crate::builder::build;
use crate::params::Oo7Params;
use crate::reorg::{reorg_clustered, reorg_declustered};
use crate::stats::DbCharacteristics;
use crate::traverse::traverse;

/// The application phases, in the paper's order (§3.4): the traversal sits
/// *between* the two reorganizations to sharpen phase transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Build the initial database.
    GenDb,
    /// Delete half the parts per composite, reinsert clustered.
    Reorg1,
    /// Read-only depth-first traversal.
    Traverse,
    /// Delete half again, reinsert declustered across composites.
    Reorg2,
}

impl Phase {
    /// The paper's standard sequence.
    pub const STANDARD: [Phase; 4] = [Phase::GenDb, Phase::Reorg1, Phase::Traverse, Phase::Reorg2];

    /// Phase name as it appears in trace phase markers.
    pub fn name(self) -> &'static str {
        match self {
            Phase::GenDb => "GenDB",
            Phase::Reorg1 => "Reorg1",
            Phase::Traverse => "Traverse",
            Phase::Reorg2 => "Reorg2",
        }
    }
}

/// The OO7 test application: generates the full trace for a parameter set
/// and seed.
///
/// ```
/// use odbgc_oo7::{Oo7App, Oo7Params};
///
/// let app = Oo7App::standard(Oo7Params::tiny(), 1);
/// let (trace, characteristics) = app.generate();
/// assert_eq!(
///     trace.phase_names(),
///     &["GenDB", "Reorg1", "Traverse", "Reorg2"]
/// );
/// assert_eq!(characteristics.counts[&odbgc_oo7::Kind::CompositePart], 4);
/// // Deterministic: same seed, same trace.
/// assert_eq!(trace, Oo7App::standard(Oo7Params::tiny(), 1).generate().0);
/// ```
#[derive(Debug, Clone)]
pub struct Oo7App {
    params: Oo7Params,
    seed: u64,
    phases: Vec<Phase>,
}

impl Oo7App {
    /// The standard four-phase application.
    pub fn standard(params: Oo7Params, seed: u64) -> Self {
        Oo7App {
            params,
            seed,
            phases: Phase::STANDARD.to_vec(),
        }
    }

    /// A custom phase sequence. `GenDb` must come first (it is implicit:
    /// the database always gets built).
    pub fn with_phases(params: Oo7Params, seed: u64, phases: Vec<Phase>) -> Self {
        assert_eq!(phases.first(), Some(&Phase::GenDb), "GenDB must be first");
        Oo7App {
            params,
            seed,
            phases,
        }
    }

    /// The database parameters.
    pub fn params(&self) -> &Oo7Params {
        &self.params
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the trace, returning it with the post-GenDB database
    /// characteristics (for Table-1-style reports).
    pub fn generate(&self) -> (Trace, DbCharacteristics) {
        let mut state = build(self.params, self.seed);
        let initial = DbCharacteristics::measure(&state);
        for phase in self.phases.iter().skip(1) {
            match phase {
                Phase::GenDb => unreachable!("GenDB only occurs first"),
                Phase::Reorg1 => reorg_clustered(&mut state),
                Phase::Traverse => {
                    traverse(&mut state);
                }
                Phase::Reorg2 => reorg_declustered(&mut state),
            }
        }
        (state.trace.finish(), initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_store::{Store, StoreConfig};
    use odbgc_trace::EventKind;

    #[test]
    fn standard_app_produces_four_phases_in_order() {
        let app = Oo7App::standard(Oo7Params::tiny(), 1);
        let (trace, _chars) = app.generate();
        assert_eq!(
            trace.phase_names(),
            &["GenDB", "Reorg1", "Traverse", "Reorg2"]
        );
        assert_eq!(trace.stats().count(EventKind::Phase), 4);
    }

    #[test]
    fn full_trace_replays_with_exact_tracking() {
        let app = Oo7App::standard(Oo7Params::tiny(), 2);
        let (trace, _chars) = app.generate();
        let mut store = Store::new(StoreConfig::tiny());
        for ev in trace.iter() {
            store.apply(ev).expect("full app trace must replay cleanly");
        }
        store.assert_garbage_exact();
        assert!(store.total_garbage_generated() > 0);
        // Without a collector, all generated garbage is still resident.
        assert_eq!(store.garbage_bytes(), store.total_garbage_generated());
    }

    #[test]
    fn generation_is_deterministic() {
        let app = Oo7App::standard(Oo7Params::tiny(), 7);
        let (a, _) = app.generate();
        let (b, _) = app.generate();
        assert_eq!(a, b);
    }

    #[test]
    fn characteristics_come_from_the_initial_database() {
        let app = Oo7App::standard(Oo7Params::tiny(), 3);
        let (_, chars) = app.generate();
        // Initial census: full part population.
        assert_eq!(
            chars.counts[&crate::schema::Kind::AtomicPart],
            Oo7Params::tiny().num_atomic_parts()
        );
    }

    #[test]
    #[should_panic(expected = "GenDB must be first")]
    fn phases_must_start_with_gendb() {
        Oo7App::with_phases(Oo7Params::tiny(), 1, vec![Phase::Reorg1]);
    }
}
