//! The generator's in-memory mirror of the database.
//!
//! The trace generator must know the exact slot contents of every object
//! it manipulates: deletion clears precisely the slots that reference the
//! doomed structure, and reinsertion stores only into free (null) slots.
//! The mirror is that knowledge; it never touches the store.

use odbgc_trace::{ObjectId, SlotIdx, TraceBuilder};
use rand::rngs::StdRng;

use crate::params::Oo7Params;
use crate::schema::Kind;

/// A connection, as seen from either endpoint.
///
/// `from`/`to` are part indices within the composite (slot identities,
/// stable across delete/reinsert cycles); `from_slot`/`to_slot` are the
/// absolute slot indices in the respective part objects holding this
/// connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnMirror {
    /// The connection object's id.
    pub id: ObjectId,
    /// Source part index within the composite.
    pub from: u32,
    /// Out-slot index in the source part holding this connection.
    pub from_slot: u32,
    /// Target part index within the composite.
    pub to: u32,
    /// In-slot index in the target part (mirror-only under the forward
    /// connection style).
    pub to_slot: u32,
}

/// One atomic part.
#[derive(Debug, Clone)]
pub struct PartMirror {
    /// The atomic part's id.
    pub id: ObjectId,
    /// Out-connection slots (length = `num_conn_per_atomic`).
    pub out: Vec<Option<ConnMirror>>,
    /// In-connection slots (length = `in_conn_capacity()`).
    pub in_: Vec<Option<ConnMirror>>,
}

impl PartMirror {
    /// A fresh, unconnected part mirror.
    pub fn new(id: ObjectId, p: &Oo7Params) -> Self {
        PartMirror {
            id,
            out: vec![None; p.num_conn_per_atomic as usize],
            in_: vec![None; p.in_conn_capacity() as usize],
        }
    }

    /// Index of a free out slot, if any.
    pub fn free_out_slot(&self) -> Option<u32> {
        self.out.iter().position(Option::is_none).map(|i| i as u32)
    }

    /// Index of a free in slot, if any.
    pub fn free_in_slot(&self) -> Option<u32> {
        self.in_.iter().position(Option::is_none).map(|i| i as u32)
    }

    /// Number of live in-connections.
    pub fn in_degree(&self) -> usize {
        self.in_.iter().flatten().count()
    }

    /// Number of live out-connections.
    pub fn out_degree(&self) -> usize {
        self.out.iter().flatten().count()
    }
}

/// One composite part.
#[derive(Debug, Clone)]
pub struct CompositeMirror {
    /// The composite part's id.
    pub id: ObjectId,
    /// The current document's id.
    pub doc: ObjectId,
    /// Parts by slot identity; `None` while a slot is deleted-not-yet-
    /// reinserted.
    pub parts: Vec<Option<PartMirror>>,
}

impl CompositeMirror {
    /// Indices of slots currently holding a live part.
    pub fn live_part_indices(&self) -> Vec<u32> {
        self.parts
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| i as u32))
            .collect()
    }

    /// The live part at slot `idx` (panics if the slot is empty).
    pub fn part(&self, idx: u32) -> &PartMirror {
        self.parts[idx as usize]
            .as_ref()
            .expect("part slot is live")
    }

    /// Mutable access to the live part at slot `idx`.
    pub fn part_mut(&mut self, idx: u32) -> &mut PartMirror {
        self.parts[idx as usize]
            .as_mut()
            .expect("part slot is live")
    }
}

/// One assembly-tree node.
#[derive(Debug, Clone)]
pub struct AssemblyMirror {
    /// The assembly object's id.
    pub id: ObjectId,
    /// Child assembly indices (complex assemblies only).
    pub children: Vec<usize>,
    /// Referenced composite indices (base assemblies only).
    pub composites: Vec<u32>,
    /// Leaf (base) assembly?
    pub is_base: bool,
}

/// The whole-module mirror.
#[derive(Debug, Clone)]
pub struct ModuleMirror {
    /// The module object's id.
    pub id: ObjectId,
    /// The manual object's id.
    pub manual: ObjectId,
    /// Assembly arena; index 0 is the root.
    pub assemblies: Vec<AssemblyMirror>,
    /// All composite parts, by index.
    pub composites: Vec<CompositeMirror>,
}

/// Generator state threaded through the phases: parameters, the trace
/// under construction, the RNG, and the mirror.
#[derive(Debug)]
pub struct GenState {
    /// The database parameters in force.
    pub params: Oo7Params,
    /// The trace being recorded.
    pub trace: TraceBuilder,
    /// The seeded generator RNG.
    pub rng: StdRng,
    /// The whole-database mirror.
    pub module: ModuleMirror,
    /// Connections that could not be placed because no candidate target
    /// had free in-capacity (diagnostic; expected to stay 0 or tiny).
    pub skipped_connections: u64,
}

impl GenState {
    /// Creates an object of `kind` with the given slot contents, emitting
    /// the trace event and returning the fresh id.
    pub fn create(&mut self, kind: Kind, slots: Vec<Option<ObjectId>>) -> ObjectId {
        debug_assert_eq!(slots.len(), kind.slot_count(&self.params));
        self.trace.create(kind.size(&self.params), slots)
    }

    /// Creates an object of `kind` with all-null slots.
    pub fn create_unlinked(&mut self, kind: Kind) -> ObjectId {
        let n = kind.slot_count(&self.params);
        self.trace.create_unlinked(kind.size(&self.params), n)
    }

    /// Emits a pointer store.
    pub fn write(&mut self, src: ObjectId, slot: u32, target: ObjectId) {
        self.trace.slot_write(src, SlotIdx::new(slot), Some(target));
    }

    /// Emits a pointer kill.
    pub fn clear(&mut self, src: ObjectId, slot: u32) {
        self.trace.slot_clear(src, SlotIdx::new(slot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(p: &Oo7Params) -> PartMirror {
        PartMirror::new(ObjectId::new(7), p)
    }

    #[test]
    fn fresh_part_has_all_slots_free() {
        let p = Oo7Params::tiny(); // conn 2, capacity 4
        let m = part(&p);
        assert_eq!(m.out.len(), 2);
        assert_eq!(m.in_.len(), 4);
        assert_eq!(m.free_out_slot(), Some(0));
        assert_eq!(m.free_in_slot(), Some(0));
        assert_eq!(m.in_degree(), 0);
        assert_eq!(m.out_degree(), 0);
    }

    #[test]
    fn slot_occupancy_tracked() {
        let p = Oo7Params::tiny();
        let mut m = part(&p);
        let c = ConnMirror {
            id: ObjectId::new(9),
            from: 0,
            from_slot: 0,
            to: 1,
            to_slot: 2,
        };
        m.out[0] = Some(c);
        assert_eq!(m.free_out_slot(), Some(1));
        m.out[1] = Some(c);
        assert_eq!(m.free_out_slot(), None);
        assert_eq!(m.out_degree(), 2);
    }

    #[test]
    fn composite_live_indices_skip_deleted() {
        let p = Oo7Params::tiny();
        let mut comp = CompositeMirror {
            id: ObjectId::new(1),
            doc: ObjectId::new(2),
            parts: (0..4)
                .map(|i| Some(PartMirror::new(ObjectId::new(10 + i), &p)))
                .collect(),
        };
        comp.parts[2] = None;
        assert_eq!(comp.live_part_indices(), vec![0, 1, 3]);
        assert_eq!(comp.part(0).id, ObjectId::new(10));
    }
}
