//! OO7 benchmark database and the Yong–Naughton–Yu test application.
//!
//! This crate generates the event traces that drive the paper's
//! evaluation (§3.3–3.4): an OO7 database (Carey/DeWitt/Naughton, SIGMOD
//! '93) at the paper's *Small′* scale, exercised by a four-phase
//! application:
//!
//! 1. **GenDB** — build the database at a given connectivity;
//! 2. **Reorg1** — delete half the atomic parts of every composite part,
//!    then reinsert them *clustered* (per composite);
//! 3. **Traverse** — a read-only depth-first traversal over all parts
//!    (no pointer overwrites, so SAGA time stands still);
//! 4. **Reorg2** — delete half the atomic parts again, then reinsert them
//!    *declustered*: allocation is interleaved across composites, breaking
//!    the physical clustering of each composite's parts.
//!
//! The phases are the paper's variation of Yong–Naughton–Yu's workload:
//! the traversal is placed *between* the reorganizations to sharpen the
//! phase transitions, and both reorganizations delete half (not all) of
//! the parts so they perform similar amounts of work (§3.4).
//!
//! The generator maintains an in-memory mirror of the database so that
//! deletions clear exactly the right slots and reinsertion only stores
//! into free (null) slots — a correct application never overwrites
//! pointers it does not mean to kill.

#![warn(missing_docs)]

pub mod app;
pub mod builder;
pub mod model;
pub mod params;
pub mod reorg;
pub mod schema;
pub mod stats;
pub mod traverse;

pub use app::{Oo7App, Phase};
pub use params::{ConnStyle, Oo7Params};
pub use schema::Kind;
pub use stats::DbCharacteristics;
