//! Object kinds and slot-layout conventions.
//!
//! Slot layouts (fixed at creation):
//!
//! | Kind            | Slots                                                    |
//! |-----------------|----------------------------------------------------------|
//! | Module          | `[manual, root assembly, design library: all composites]` |
//! | Manual          | none                                                     |
//! | ComplexAssembly | `[child assemblies]`                                     |
//! | BaseAssembly    | `[referenced composite parts]`                           |
//! | CompositePart   | `[document, parts set]`                                  |
//! | Document        | none                                                     |
//! | AtomicPart      | `[out connections…, in connections…]`                    |
//! | Connection      | `[from part, to part]`                                   |
//!
//! The design library on the module is the OO7 schema's guarantee that
//! every composite part is reachable even if no base assembly happens to
//! reference it.

use crate::params::{ConnStyle, Oo7Params};

/// The OO7 object kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kind {
    /// The single top-level module.
    Module,
    /// The module's large manual object.
    Manual,
    /// Interior assembly-tree node.
    ComplexAssembly,
    /// Leaf assembly referencing composite parts.
    BaseAssembly,
    /// A composite part: document + atomic-parts set.
    CompositePart,
    /// A composite's document.
    Document,
    /// An atomic part.
    AtomicPart,
    /// A connection between two atomic parts.
    Connection,
}

impl Kind {
    /// Every kind, in a stable order.
    pub const ALL: [Kind; 8] = [
        Kind::Module,
        Kind::Manual,
        Kind::ComplexAssembly,
        Kind::BaseAssembly,
        Kind::CompositePart,
        Kind::Document,
        Kind::AtomicPart,
        Kind::Connection,
    ];

    /// Object size in bytes under the given parameters.
    pub fn size(self, p: &Oo7Params) -> u32 {
        match self {
            Kind::Module => p.module_size,
            Kind::Manual => p.manual_size,
            Kind::ComplexAssembly | Kind::BaseAssembly => p.assembly_size,
            Kind::CompositePart => p.composite_size,
            Kind::Document => p.document_size,
            Kind::AtomicPart => p.atomic_part_size,
            Kind::Connection => p.connection_size,
        }
    }

    /// Number of pointer slots under the given parameters.
    pub fn slot_count(self, p: &Oo7Params) -> usize {
        match self {
            Kind::Module => 2 + p.num_comp_per_module as usize,
            Kind::Manual | Kind::Document => 0,
            Kind::ComplexAssembly => p.num_assm_per_assm as usize,
            Kind::BaseAssembly => p.num_comp_per_assm as usize,
            Kind::CompositePart => 1 + p.num_atomic_per_comp as usize,
            Kind::AtomicPart => match p.conn_style {
                ConnStyle::Bidirectional => (p.num_conn_per_atomic + p.in_conn_capacity()) as usize,
                ConnStyle::Forward => p.num_conn_per_atomic as usize,
            },
            Kind::Connection => match p.conn_style {
                ConnStyle::Bidirectional => 2,
                ConnStyle::Forward => 1,
            },
        }
    }
}

/// Composite-part slot 0 holds the document.
pub const COMPOSITE_DOC_SLOT: u32 = 0;

/// Composite-part slots `1..=num_atomic_per_comp` hold the parts set.
pub fn composite_part_slot(index: u32) -> u32 {
    1 + index
}

/// Module slot 0 holds the manual.
pub const MODULE_MANUAL_SLOT: u32 = 0;
/// Module slot 1 holds the root assembly.
pub const MODULE_ROOT_ASSM_SLOT: u32 = 1;

/// Module slots `2..` form the design library (one per composite).
pub fn module_library_slot(comp_index: u32) -> u32 {
    2 + comp_index
}

/// Atomic-part slots `0..num_conn_per_atomic` hold out-connections.
pub fn part_out_slot(index: u32) -> u32 {
    index
}

/// Atomic-part slots `num_conn_per_atomic..` hold in-connections.
pub fn part_in_slot(p: &Oo7Params, index: u32) -> u32 {
    p.num_conn_per_atomic + index
}

/// Connection slot 0 = from part, slot 1 = to part (bidirectional style).
/// Under [`ConnStyle::Forward`] the single slot 0 is the `to` pointer.
pub const CONN_FROM_SLOT: u32 = 0;
/// Connection slot 1 = to part (bidirectional style).
pub const CONN_TO_SLOT: u32 = 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_follow_params() {
        let p = Oo7Params::small_prime(3);
        assert_eq!(Kind::Document.size(&p), 2000);
        assert_eq!(Kind::Manual.size(&p), 102_400);
        assert_eq!(Kind::AtomicPart.size(&p), 200);
    }

    #[test]
    fn slot_counts_follow_params() {
        let p = Oo7Params::small_prime(3);
        assert_eq!(Kind::Module.slot_count(&p), 152);
        assert_eq!(Kind::CompositePart.slot_count(&p), 21);
        assert_eq!(Kind::AtomicPart.slot_count(&p), 3 + 6);
        assert_eq!(Kind::Connection.slot_count(&p), 2);
        assert_eq!(Kind::Manual.slot_count(&p), 0);
    }

    #[test]
    fn slot_helpers_are_consistent() {
        let p = Oo7Params::small_prime(3);
        assert_eq!(composite_part_slot(0), 1);
        assert_eq!(
            composite_part_slot(p.num_atomic_per_comp - 1) as usize,
            Kind::CompositePart.slot_count(&p) - 1
        );
        assert_eq!(part_out_slot(2), 2);
        assert_eq!(part_in_slot(&p, 0), 3);
        assert_eq!(
            part_in_slot(&p, p.in_conn_capacity() - 1) as usize,
            Kind::AtomicPart.slot_count(&p) - 1
        );
        assert_eq!(module_library_slot(0), 2);
    }
}
