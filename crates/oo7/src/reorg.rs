//! The reorganization phases: delete half the atomic parts, reinsert them.
//!
//! Reorg1 reinserts *clustered* — each composite's replacements are
//! allocated together, preserving physical locality. Reorg2 reinserts
//! *declustered* — allocation is interleaved across composites, so
//! replacement parts of different composites end up physically mixed,
//! breaking the per-composite clustering (§3.4).
//!
//! Deleting a part kills, in order: both sides of each of its out- and
//! in-connections (the second kill of each pair makes the connection
//! object garbage), then the composite's parts-set pointer to the part
//! itself. Every kill of a non-null pointer is a pointer overwrite — the
//! events the SAGA clock counts and the UPDATEDPOINTER policy tallies.

use rand::seq::SliceRandom;

use crate::builder::add_connection;
use crate::model::GenState;
use crate::schema::{composite_part_slot, part_in_slot, part_out_slot, Kind, COMPOSITE_DOC_SLOT};

/// Runs Reorg1: per composite — optionally replace the document, delete
/// half the parts, reinsert them immediately (clustered allocation).
pub fn reorg_clustered(state: &mut GenState) {
    state.trace.phase("Reorg1");
    let n_comps = state.module.composites.len() as u32;
    for ci in 0..n_comps {
        if state.params.replace_documents {
            replace_document(state, ci);
        }
        let victims = choose_victims(state, ci);
        for &pi in &victims {
            delete_part(state, ci, pi);
        }
        for &pi in &victims {
            reinsert_part(state, ci, pi);
        }
    }
}

/// Runs Reorg2: all deletions first (plus document replacement), then
/// reinsertion interleaved across composites so the new parts of different
/// composites are allocated adjacently (declustered).
pub fn reorg_declustered(state: &mut GenState) {
    state.trace.phase("Reorg2");
    let n_comps = state.module.composites.len() as u32;
    let mut victim_sets: Vec<Vec<u32>> = Vec::with_capacity(n_comps as usize);
    for ci in 0..n_comps {
        if state.params.replace_documents {
            replace_document(state, ci);
        }
        let victims = choose_victims(state, ci);
        for &pi in &victims {
            delete_part(state, ci, pi);
        }
        victim_sets.push(victims);
    }
    let rounds = victim_sets.iter().map(Vec::len).max().unwrap_or(0);
    for round in 0..rounds {
        for ci in 0..n_comps {
            if let Some(&pi) = victim_sets[ci as usize].get(round) {
                reinsert_part(state, ci, pi);
            }
        }
    }
}

/// Picks the part slots to delete in composite `ci`: half the live parts,
/// uniformly at random.
fn choose_victims(state: &mut GenState, ci: u32) -> Vec<u32> {
    let mut live = state.module.composites[ci as usize].live_part_indices();
    let k = state.params.parts_deleted_per_comp() as usize;
    live.shuffle(&mut state.rng);
    live.truncate(k.min(live.len()));
    live
}

/// Replaces composite `ci`'s document: one pointer overwrite that turns
/// the old (large) document into garbage.
pub fn replace_document(state: &mut GenState, ci: u32) {
    let new_doc = state.create_unlinked(Kind::Document);
    let comp_id = state.module.composites[ci as usize].id;
    state.write(comp_id, COMPOSITE_DOC_SLOT, new_doc);
    state.module.composites[ci as usize].doc = new_doc;
}

/// Deletes part `pi` of composite `ci`: destroys all its connections
/// (both endpoints), then unlinks it from the parts set.
pub fn delete_part(state: &mut GenState, ci: u32, pi: u32) {
    let params = state.params;
    let forward = params.conn_style == crate::params::ConnStyle::Forward;
    // Out-connections. Bidirectional: clear the target's in slot, then our
    // out slot (the second kill frees the connection). Forward: nothing to
    // clear — the connections die with the part via the cascade — but the
    // target mirrors must forget them.
    let out_conns: Vec<_> = state.module.composites[ci as usize]
        .part(pi)
        .out
        .iter()
        .flatten()
        .copied()
        .collect();
    for c in out_conns {
        if forward {
            let comp = &mut state.module.composites[ci as usize];
            comp.part_mut(c.to).in_[c.to_slot as usize] = None;
            // The out-slot entry stays in the doomed part's mirror; it is
            // dropped with the whole PartMirror below.
        } else {
            let to_id = state.module.composites[ci as usize].part(c.to).id;
            let from_id = state.module.composites[ci as usize].part(pi).id;
            state.clear(to_id, part_in_slot(&params, c.to_slot));
            state.clear(from_id, part_out_slot(c.from_slot));
            let comp = &mut state.module.composites[ci as usize];
            comp.part_mut(c.to).in_[c.to_slot as usize] = None;
            comp.part_mut(pi).out[c.from_slot as usize] = None;
        }
    }
    // In-connections: clear the source's out slot (this alone frees a
    // forward connection and its reference to us); bidirectional also
    // clears our in slot.
    let in_conns: Vec<_> = state.module.composites[ci as usize]
        .part(pi)
        .in_
        .iter()
        .flatten()
        .copied()
        .collect();
    for c in in_conns {
        let from_id = state.module.composites[ci as usize].part(c.from).id;
        state.clear(from_id, part_out_slot(c.from_slot));
        if !forward {
            let to_id = state.module.composites[ci as usize].part(pi).id;
            state.clear(to_id, part_in_slot(&params, c.to_slot));
        }
        let comp = &mut state.module.composites[ci as usize];
        comp.part_mut(c.from).out[c.from_slot as usize] = None;
        comp.part_mut(pi).in_[c.to_slot as usize] = None;
    }
    // Finally unlink the part itself. Under the forward style this single
    // overwrite detaches the part *and* all its surviving out-connections
    // (the §2.1 cluster-detachment effect).
    let comp_id = state.module.composites[ci as usize].id;
    state.clear(comp_id, composite_part_slot(pi));
    state.module.composites[ci as usize].parts[pi as usize] = None;
}

/// Reinserts a fresh part into slot `pi` of composite `ci` and gives it a
/// full set of out-connections to random live parts.
pub fn reinsert_part(state: &mut GenState, ci: u32, pi: u32) {
    let part_id = state.create_unlinked(Kind::AtomicPart);
    let comp_id = state.module.composites[ci as usize].id;
    state.write(comp_id, composite_part_slot(pi), part_id);
    let mirror = crate::model::PartMirror::new(part_id, &state.params);
    state.module.composites[ci as usize].parts[pi as usize] = Some(mirror);
    for _ in 0..state.params.num_conn_per_atomic {
        add_connection(state, ci, pi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::params::Oo7Params;
    use odbgc_store::{Store, StoreConfig};
    use odbgc_trace::Trace;

    fn run(phases: impl Fn(&mut GenState), seed: u64) -> (GenState, Trace) {
        let mut state = build(Oo7Params::tiny(), seed);
        phases(&mut state);
        let trace = std::mem::take(&mut state.trace).finish();
        (state, trace)
    }

    fn replay_exact(trace: &Trace) -> Store {
        let mut store = Store::new(StoreConfig::tiny());
        for ev in trace.iter() {
            store.apply(ev).expect("reorg trace must replay cleanly");
        }
        store.assert_garbage_exact();
        store
    }

    #[test]
    fn reorg1_creates_garbage_and_restores_population() {
        let p = Oo7Params::tiny();
        let (state, trace) = run(reorg_clustered, 11);
        let store = replay_exact(&trace);
        assert!(store.garbage_bytes() > 0, "deletions must create garbage");
        // Every composite is back to full part population.
        for comp in &state.module.composites {
            assert_eq!(
                comp.live_part_indices().len(),
                p.num_atomic_per_comp as usize
            );
        }
        // Documents were replaced: old docs are garbage.
        let doc_garbage = u64::from(p.document_size) * u64::from(p.num_comp_per_module);
        assert!(store.garbage_bytes() >= doc_garbage);
    }

    #[test]
    fn reorg_overwrites_advance_the_clock() {
        let (_, trace) = run(reorg_clustered, 12);
        let store = replay_exact(&trace);
        let p = Oo7Params::tiny();
        // Per deleted part: ≥ 2 clears per connection + 1 parts-set clear;
        // plus 1 document overwrite per composite.
        let min_expected = u64::from(p.num_comp_per_module)
            * (u64::from(p.parts_deleted_per_comp()) * (2 * u64::from(p.num_conn_per_atomic) + 1)
                + 1);
        assert!(
            store.overwrite_clock() >= min_expected,
            "clock {} < {min_expected}",
            store.overwrite_clock()
        );
    }

    #[test]
    fn reorg2_declusters_allocation_order() {
        // In Reorg1 the creations are grouped per composite; in Reorg2
        // consecutive part creations alternate composites. Compare the
        // composite of consecutive AtomicPart creations in each trace.
        let p = Oo7Params::tiny();
        let part_size = p.atomic_part_size;

        let creation_runs = |trace: &Trace| {
            // Count maximal runs of consecutive part-creations; longer
            // runs = more clustered.
            let sizes: Vec<u32> = trace
                .iter()
                .filter_map(|e| match e {
                    odbgc_trace::Event::Create { size, .. } => Some(*size),
                    _ => None,
                })
                .collect();
            let mut runs = 0;
            let mut prev_was_part = false;
            for s in sizes {
                let is_part = s == part_size;
                if is_part && !prev_was_part {
                    runs += 1;
                }
                prev_was_part = is_part;
            }
            runs
        };
        let (_, t1) = run(reorg_clustered, 5);
        let (_, t2) = run(reorg_declustered, 5);
        // Both phases create the same number of parts; the clustered one
        // groups them into fewer, longer runs is not guaranteed at tiny
        // scale, but both must replay cleanly and restore population.
        replay_exact(&t1);
        replay_exact(&t2);
        assert!(creation_runs(&t1) > 0 && creation_runs(&t2) > 0);
    }

    #[test]
    fn reorg2_restores_population_via_interleaving() {
        let p = Oo7Params::tiny();
        let (state, trace) = run(reorg_declustered, 13);
        replay_exact(&trace);
        for comp in &state.module.composites {
            assert_eq!(
                comp.live_part_indices().len(),
                p.num_atomic_per_comp as usize
            );
        }
    }

    #[test]
    fn double_reorg_keeps_tracker_exact() {
        let (_, trace) = run(
            |s| {
                reorg_clustered(s);
                reorg_declustered(s);
            },
            14,
        );
        let store = replay_exact(&trace);
        assert!(store.total_garbage_generated() > 0);
    }

    #[test]
    fn delete_then_reinsert_reuses_slot_without_overwrite_on_reinsert() {
        // The reinsertion stores into slots cleared by deletion: if it
        // ever overwrote a non-null pointer, the store would count extra
        // overwrites and kill live objects. Exactness of the tracker after
        // replay (checked in replay_exact) plus full population proves the
        // slot discipline.
        let (state, trace) = run(reorg_clustered, 15);
        let store = replay_exact(&trace);
        for comp in &state.module.composites {
            for pm in comp.parts.iter().flatten() {
                assert!(store.is_live(pm.id), "reinserted part must be live");
            }
        }
    }

    #[test]
    fn forward_style_replays_exactly_and_needs_fewer_overwrites() {
        let mut fwd_params = Oo7Params::tiny();
        fwd_params.conn_style = crate::params::ConnStyle::Forward;

        let run_style = |params: Oo7Params| {
            let mut state = build(params, 33);
            reorg_clustered(&mut state);
            let trace = std::mem::take(&mut state.trace).finish();
            let mut store = Store::new(StoreConfig::tiny());
            for ev in trace.iter() {
                store.apply(ev).expect("replays cleanly");
            }
            store.assert_garbage_exact();
            store
        };
        let bidir = run_style(Oo7Params::tiny());
        let fwd = run_style(fwd_params);
        // Forward deletions clear one pointer per in-connection plus the
        // parts-set slot; bidirectional clears both endpoints of every
        // connection. Fewer overwrites for comparable garbage.
        assert!(
            fwd.overwrite_clock() < bidir.overwrite_clock(),
            "forward {} !< bidirectional {}",
            fwd.overwrite_clock(),
            bidir.overwrite_clock()
        );
        assert!(fwd.total_garbage_generated() > 0);
        // Garbage per overwrite rises — the §2.1 cluster-detachment story.
        let gpo = |s: &Store| s.total_garbage_generated() as f64 / s.overwrite_clock() as f64;
        assert!(
            gpo(&fwd) > gpo(&bidir),
            "forward gpo {} !> bidirectional gpo {}",
            gpo(&fwd),
            gpo(&bidir)
        );
    }

    #[test]
    fn forward_style_double_reorg_stays_exact() {
        let mut params = Oo7Params::tiny();
        params.conn_style = crate::params::ConnStyle::Forward;
        let mut state = build(params, 34);
        reorg_clustered(&mut state);
        reorg_declustered(&mut state);
        let trace = std::mem::take(&mut state.trace).finish();
        let mut store = Store::new(StoreConfig::tiny());
        for ev in trace.iter() {
            store.apply(ev).expect("replays cleanly");
        }
        store.assert_garbage_exact();
        // Population restored under the forward schema too.
        for comp in &state.module.composites {
            assert_eq!(
                comp.live_part_indices().len(),
                params.num_atomic_per_comp as usize
            );
        }
    }

    #[test]
    fn reorgs_are_deterministic_per_seed() {
        let (_, a) = run(reorg_clustered, 21);
        let (_, b) = run(reorg_clustered, 21);
        let (_, c) = run(reorg_clustered, 22);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
