//! OO7 database parameters (Table 1 of the paper).

/// How connection objects reference their endpoints.
///
/// The style determines how much structure one pointer overwrite can
/// detach, and therefore the database's garbage-per-overwrite constant —
/// the quantity whose underestimation sinks the §2.1 heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnStyle {
    /// Full OO7-style bidirectional association: the connection holds
    /// `[from, to]` pointers and both endpoint parts hold a slot for it.
    /// Deletion must clear both sides of every connection (default).
    #[default]
    Bidirectional,
    /// Forward-only: the connection holds just `[to]` and only the source
    /// part references it. Killing one source slot detaches the
    /// connection, and killing the parts-set pointer detaches the part
    /// *with all its outgoing connections* — single overwrites free whole
    /// structures, raising garbage-per-overwrite substantially (the §2.1
    /// cluster-detachment effect).
    Forward,
}

/// OO7 benchmark parameters plus the object-size model.
///
/// The structural parameters mirror Table 1; the byte sizes are chosen so
/// the measured database matches the paper's reported characteristics
/// (average object size ≈ 133 bytes, Small′ database of a few megabytes
/// growing with connectivity — see `DbCharacteristics` tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oo7Params {
    /// Atomic parts per composite part (Table 1: 20).
    pub num_atomic_per_comp: u32,
    /// Outgoing connections per atomic part (Table 1: 3 / 6 / 9).
    pub num_conn_per_atomic: u32,
    /// Document size in bytes (Table 1: 2000).
    pub document_size: u32,
    /// Manual size in bytes (Table 1: 100 kbytes).
    pub manual_size: u32,
    /// Composite parts per module (Table 1, Small′: 150).
    pub num_comp_per_module: u32,
    /// Child assemblies per complex assembly (Table 1: 3).
    pub num_assm_per_assm: u32,
    /// Assembly levels including the base level (Table 1, Small′: 6).
    pub num_assm_levels: u32,
    /// Composite parts referenced per base assembly (Table 1: 3).
    pub num_comp_per_assm: u32,
    /// Modules (Table 1: 1).
    pub num_modules: u32,

    // -- object-size model -------------------------------------------------
    /// Atomic part bytes.
    pub atomic_part_size: u32,
    /// Connection object bytes.
    pub connection_size: u32,
    /// Composite part bytes (header + parts set).
    pub composite_size: u32,
    /// Assembly bytes (complex or base).
    pub assembly_size: u32,
    /// Module bytes (header + design library).
    pub module_size: u32,

    // -- workload options ---------------------------------------------------
    /// Replace each composite's document during reorganizations: one
    /// pointer overwrite that disconnects a large object, the behavior
    /// §2.1 cites when explaining why size-based heuristics fail.
    pub replace_documents: bool,
    /// In-connection slot capacity per atomic part, as a multiple of the
    /// out-connection count. 2 is always sufficient in aggregate.
    pub in_conn_capacity_factor: u32,
    /// Connection reference style (see [`ConnStyle`]).
    pub conn_style: ConnStyle,
}

impl Oo7Params {
    /// The paper's Small′ database at the given atomic-part connectivity
    /// (3, 6 or 9 in the paper's experiments).
    pub fn small_prime(connectivity: u32) -> Self {
        Oo7Params {
            num_atomic_per_comp: 20,
            num_conn_per_atomic: connectivity,
            document_size: 2_000,
            manual_size: 100 * 1_024,
            num_comp_per_module: 150,
            num_assm_per_assm: 3,
            num_assm_levels: 6,
            num_comp_per_assm: 3,
            num_modules: 1,
            atomic_part_size: 200,
            connection_size: 100,
            composite_size: 250,
            assembly_size: 150,
            module_size: 500,
            replace_documents: true,
            in_conn_capacity_factor: 2,
            conn_style: ConnStyle::Bidirectional,
        }
    }

    /// The original OO7 Small database (500 composites, 7 assembly
    /// levels), as used by Yong–Naughton–Yu.
    pub fn small(connectivity: u32) -> Self {
        Oo7Params {
            num_comp_per_module: 500,
            num_assm_levels: 7,
            ..Oo7Params::small_prime(connectivity)
        }
    }

    /// A miniature database for unit tests: 4 composites of 6 parts.
    pub fn tiny() -> Self {
        Oo7Params {
            num_atomic_per_comp: 6,
            num_conn_per_atomic: 2,
            document_size: 120,
            manual_size: 500,
            num_comp_per_module: 4,
            num_assm_per_assm: 2,
            num_assm_levels: 2,
            num_comp_per_assm: 2,
            num_modules: 1,
            atomic_part_size: 40,
            connection_size: 16,
            composite_size: 48,
            assembly_size: 24,
            module_size: 64,
            replace_documents: true,
            in_conn_capacity_factor: 2,
            conn_style: ConnStyle::Bidirectional,
        }
    }

    /// A canonical workload string covering every generation-relevant
    /// parameter, used to address traces in an on-disk corpus.
    ///
    /// The leading `oo7-std-v1` token names the generator (the standard
    /// OO7 application) and its trace-shape version: bump it whenever
    /// generation changes so stale corpus entries stop matching. Every
    /// field is listed explicitly — a new field must be appended here or
    /// two different workloads would share a corpus slot.
    pub fn cache_key(&self) -> String {
        let style = match self.conn_style {
            ConnStyle::Bidirectional => "bidir",
            ConnStyle::Forward => "forward",
        };
        format!(
            "oo7-std-v1;ap{};conn{};doc{};man{};comp{};fanout{};lvl{};cpa{};mod{};\
             sz{}/{}/{}/{}/{};repl{};incf{};style-{}",
            self.num_atomic_per_comp,
            self.num_conn_per_atomic,
            self.document_size,
            self.manual_size,
            self.num_comp_per_module,
            self.num_assm_per_assm,
            self.num_assm_levels,
            self.num_comp_per_assm,
            self.num_modules,
            self.atomic_part_size,
            self.connection_size,
            self.composite_size,
            self.assembly_size,
            self.module_size,
            self.replace_documents,
            self.in_conn_capacity_factor,
            style,
        )
    }

    /// Panics if the parameters are structurally unusable.
    pub fn validate(&self) {
        assert!(self.num_modules == 1, "multi-module databases unsupported");
        assert!(
            self.num_atomic_per_comp >= 2,
            "need ≥ 2 parts per composite"
        );
        assert!(
            self.num_conn_per_atomic >= 1 && self.num_conn_per_atomic < self.num_atomic_per_comp,
            "connectivity must be in [1, parts-1]"
        );
        assert!(self.num_assm_levels >= 1);
        assert!(self.num_assm_per_assm >= 1);
        assert!(self.num_comp_per_module >= 1);
        assert!(
            self.in_conn_capacity_factor >= 2,
            "in-slot capacity too small"
        );
        for size in [
            self.document_size,
            self.manual_size,
            self.atomic_part_size,
            self.connection_size,
            self.composite_size,
            self.assembly_size,
            self.module_size,
        ] {
            assert!(size >= 1, "object sizes must be positive");
        }
    }

    /// Complex (non-base) assemblies: a full `num_assm_per_assm`-ary tree
    /// of `num_assm_levels − 1` levels.
    pub fn num_complex_assemblies(&self) -> u64 {
        let f = u64::from(self.num_assm_per_assm);
        let mut total = 0;
        let mut level_count = 1;
        for _ in 0..self.num_assm_levels.saturating_sub(1) {
            total += level_count;
            level_count *= f;
        }
        total
    }

    /// Base assemblies: the leaves of the assembly tree.
    pub fn num_base_assemblies(&self) -> u64 {
        u64::from(self.num_assm_per_assm).pow(self.num_assm_levels.saturating_sub(1))
    }

    /// Total atomic parts in the initial database.
    pub fn num_atomic_parts(&self) -> u64 {
        u64::from(self.num_comp_per_module) * u64::from(self.num_atomic_per_comp)
    }

    /// Total connection objects in the initial database.
    pub fn num_connections(&self) -> u64 {
        self.num_atomic_parts() * u64::from(self.num_conn_per_atomic)
    }

    /// In-connection slot capacity per atomic part.
    pub fn in_conn_capacity(&self) -> u32 {
        self.num_conn_per_atomic * self.in_conn_capacity_factor
    }

    /// Parts deleted (and reinserted) per composite during a
    /// reorganization: half, per §3.4.
    pub fn parts_deleted_per_comp(&self) -> u32 {
        self.num_atomic_per_comp / 2
    }

    /// Estimated initial live bytes (excludes free space in partitions).
    pub fn estimated_live_bytes(&self) -> u64 {
        u64::from(self.module_size)
            + u64::from(self.manual_size)
            + (self.num_complex_assemblies() + self.num_base_assemblies())
                * u64::from(self.assembly_size)
            + u64::from(self.num_comp_per_module)
                * (u64::from(self.composite_size) + u64::from(self.document_size))
            + self.num_atomic_parts() * u64::from(self.atomic_part_size)
            + self.num_connections() * u64::from(self.connection_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_prime_matches_table_1() {
        let p = Oo7Params::small_prime(3);
        p.validate();
        assert_eq!(p.num_atomic_per_comp, 20);
        assert_eq!(p.num_conn_per_atomic, 3);
        assert_eq!(p.document_size, 2000);
        assert_eq!(p.manual_size, 102_400);
        assert_eq!(p.num_comp_per_module, 150);
        assert_eq!(p.num_assm_per_assm, 3);
        assert_eq!(p.num_assm_levels, 6);
        assert_eq!(p.num_comp_per_assm, 3);
        assert_eq!(p.num_modules, 1);
    }

    #[test]
    fn small_matches_yny_column() {
        let p = Oo7Params::small(3);
        p.validate();
        assert_eq!(p.num_comp_per_module, 500);
        assert_eq!(p.num_assm_levels, 7);
    }

    #[test]
    fn assembly_tree_counts() {
        let p = Oo7Params::small_prime(3);
        // Levels 1..5 complex: 1 + 3 + 9 + 27 + 81 = 121; level 6 base: 243.
        assert_eq!(p.num_complex_assemblies(), 121);
        assert_eq!(p.num_base_assemblies(), 243);
    }

    #[test]
    fn part_and_connection_counts_scale_with_connectivity() {
        let p3 = Oo7Params::small_prime(3);
        let p9 = Oo7Params::small_prime(9);
        assert_eq!(p3.num_atomic_parts(), 3_000);
        assert_eq!(p3.num_connections(), 9_000);
        assert_eq!(p9.num_connections(), 27_000);
    }

    #[test]
    fn estimated_size_is_megabytes_and_grows_with_connectivity() {
        let s3 = Oo7Params::small_prime(3).estimated_live_bytes();
        let s9 = Oo7Params::small_prime(9).estimated_live_bytes();
        // Paper: 3.7–7.9 MB across connectivities (DBSize counts allocated
        // partitions, which exceeds live bytes; live bytes land below).
        assert!(s3 > 1_500_000, "s3 = {s3}");
        assert!(s9 > s3 + 1_000_000, "s9 = {s9}");
        assert!(s9 < 8_000_000, "s9 = {s9}");
    }

    #[test]
    fn half_the_parts_are_deleted() {
        assert_eq!(Oo7Params::small_prime(3).parts_deleted_per_comp(), 10);
        assert_eq!(Oo7Params::tiny().parts_deleted_per_comp(), 3);
    }

    #[test]
    fn tiny_is_valid() {
        Oo7Params::tiny().validate();
    }

    #[test]
    fn cache_keys_separate_every_knob() {
        let base = Oo7Params::small_prime(3);
        assert_eq!(base.cache_key(), Oo7Params::small_prime(3).cache_key());
        assert_ne!(base.cache_key(), Oo7Params::small_prime(6).cache_key());
        assert_ne!(base.cache_key(), Oo7Params::small(3).cache_key());
        assert_ne!(base.cache_key(), Oo7Params::tiny().cache_key());
        let mut fwd = base;
        fwd.conn_style = ConnStyle::Forward;
        assert_ne!(base.cache_key(), fwd.cache_key());
        let mut no_repl = base;
        no_repl.replace_documents = false;
        assert_ne!(base.cache_key(), no_repl.cache_key());
        assert!(base.cache_key().starts_with("oo7-std-v1;"));
    }

    #[test]
    #[should_panic(expected = "connectivity")]
    fn connectivity_must_leave_targets() {
        let mut p = Oo7Params::tiny();
        p.num_conn_per_atomic = p.num_atomic_per_comp;
        p.validate();
    }
}
