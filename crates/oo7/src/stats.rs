//! Measured characteristics of the generated database (Table 1 checks).

use std::collections::BTreeMap;

use crate::model::GenState;
use crate::schema::Kind;

/// A census of the live database as mirrored by the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DbCharacteristics {
    /// Live objects per kind.
    pub counts: BTreeMap<Kind, u64>,
    /// Live bytes per kind.
    pub bytes: BTreeMap<Kind, u64>,
    /// Non-null pointers in the live database.
    pub pointers: u64,
}

impl DbCharacteristics {
    /// Measures the current mirror state.
    pub fn measure(state: &GenState) -> DbCharacteristics {
        let p = &state.params;
        let m = &state.module;
        let mut counts: BTreeMap<Kind, u64> = BTreeMap::new();
        let mut pointers = 0u64;

        counts.insert(Kind::Module, 1);
        counts.insert(Kind::Manual, 1);
        pointers += 2 + u64::from(p.num_comp_per_module); // manual + root + library

        let complex = m.assemblies.iter().filter(|a| !a.is_base).count() as u64;
        let base = m.assemblies.iter().filter(|a| a.is_base).count() as u64;
        counts.insert(Kind::ComplexAssembly, complex);
        counts.insert(Kind::BaseAssembly, base);
        for a in &m.assemblies {
            pointers += a.children.len() as u64 + a.composites.len() as u64;
        }

        let mut parts = 0u64;
        let mut conns = 0u64;
        let mut docs = 0u64;
        for comp in &m.composites {
            docs += 1;
            pointers += 1; // document pointer
            for pm in comp.parts.iter().flatten() {
                parts += 1;
                pointers += 1; // parts-set pointer
                let out = pm.out_degree() as u64;
                conns += out;
                // Pointers per connection: bidirectional = from.out slot,
                // to.in slot, plus the connection's own two endpoint
                // pointers; forward = from.out slot plus the connection's
                // single `to` pointer.
                pointers += out
                    * match p.conn_style {
                        crate::params::ConnStyle::Bidirectional => 4,
                        crate::params::ConnStyle::Forward => 2,
                    };
            }
        }
        counts.insert(Kind::CompositePart, m.composites.len() as u64);
        counts.insert(Kind::Document, docs);
        counts.insert(Kind::AtomicPart, parts);
        counts.insert(Kind::Connection, conns);

        let bytes = counts
            .iter()
            .map(|(&k, &n)| (k, n * u64::from(k.size(p))))
            .collect();
        DbCharacteristics {
            counts,
            bytes,
            pointers,
        }
    }

    /// Total live objects.
    pub fn total_objects(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total live bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Average object size in bytes.
    pub fn avg_object_size(&self) -> f64 {
        if self.total_objects() == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.total_objects() as f64
        }
    }

    /// Average pointers-per-object — the paper's "average connectivity"
    /// (each pointer is one incoming reference to some object).
    pub fn avg_connectivity(&self) -> f64 {
        if self.total_objects() == 0 {
            0.0
        } else {
            self.pointers as f64 / self.total_objects() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::params::Oo7Params;

    #[test]
    fn tiny_census() {
        let p = Oo7Params::tiny();
        let state = build(p, 1);
        let c = DbCharacteristics::measure(&state);
        assert_eq!(c.counts[&Kind::Module], 1);
        assert_eq!(c.counts[&Kind::CompositePart], 4);
        assert_eq!(c.counts[&Kind::AtomicPart], 24);
        assert_eq!(c.counts[&Kind::Connection], 48);
        assert_eq!(c.counts[&Kind::Document], 4);
        assert!(c.total_bytes() > 0);
    }

    #[test]
    fn small_prime_matches_paper_scale() {
        let p = Oo7Params::small_prime(3);
        let state = build(p, 1);
        let c = DbCharacteristics::measure(&state);
        assert_eq!(c.total_objects(), 12_666);
        // Paper: average object size ≈ 133 bytes; our size model lands in
        // the same regime.
        let avg = c.avg_object_size();
        assert!((100.0..220.0).contains(&avg), "avg object size {avg}");
        // Paper: average connectivity ≈ 4 (pointers per object); ours is
        // in the same regime.
        let conn = c.avg_connectivity();
        assert!((2.5..5.0).contains(&conn), "avg connectivity {conn}");
        // Live bytes match the parameter-level estimate exactly.
        assert_eq!(c.total_bytes(), p.estimated_live_bytes());
    }

    #[test]
    fn database_grows_with_connectivity() {
        let b3 = {
            let s = build(Oo7Params::small_prime(3), 1);
            DbCharacteristics::measure(&s).total_bytes()
        };
        let b9 = {
            let s = build(Oo7Params::small_prime(9), 1);
            DbCharacteristics::measure(&s).total_bytes()
        };
        assert!(b9 > b3);
    }
}
