//! The GenDB phase: building the initial OO7 database.

use odbgc_trace::TraceBuilder;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::model::{
    AssemblyMirror, CompositeMirror, ConnMirror, GenState, ModuleMirror, PartMirror,
};
use crate::params::Oo7Params;
use crate::schema::{
    composite_part_slot, module_library_slot, part_in_slot, part_out_slot, Kind,
    COMPOSITE_DOC_SLOT, MODULE_MANUAL_SLOT, MODULE_ROOT_ASSM_SLOT,
};

/// Builds the initial database, emitting its GenDB trace, and returns the
/// generator state for the subsequent phases.
pub fn build(params: Oo7Params, seed: u64) -> GenState {
    params.validate();
    let mut trace = TraceBuilder::with_capacity(1 << 16);
    trace.phase("GenDB");
    let rng = StdRng::seed_from_u64(seed);

    // Module (rooted) and manual.
    let module_id = {
        let n = Kind::Module.slot_count(&params);
        trace.create_unlinked(Kind::Module.size(&params), n)
    };
    trace.root_add(module_id);
    let manual_id = {
        let n = Kind::Manual.slot_count(&params);
        trace.create_unlinked(Kind::Manual.size(&params), n)
    };
    trace.slot_write(
        module_id,
        odbgc_trace::SlotIdx::new(MODULE_MANUAL_SLOT),
        Some(manual_id),
    );

    let mut state = GenState {
        params,
        trace,
        rng,
        module: ModuleMirror {
            id: module_id,
            manual: manual_id,
            assemblies: Vec::new(),
            composites: Vec::new(),
        },
        skipped_connections: 0,
    };

    build_assembly_tree(&mut state);
    for ci in 0..params.num_comp_per_module {
        build_composite(&mut state, ci);
    }
    link_base_assemblies(&mut state);
    state
}

/// Builds the assembly hierarchy top-down: `num_assm_levels − 1` levels of
/// complex assemblies, then one level of base assemblies.
fn build_assembly_tree(state: &mut GenState) {
    let levels = state.params.num_assm_levels;
    let fanout = state.params.num_assm_per_assm;

    let root_id = state.create_unlinked(if levels == 1 {
        Kind::BaseAssembly
    } else {
        Kind::ComplexAssembly
    });
    state.write(state.module.id, MODULE_ROOT_ASSM_SLOT, root_id);
    state.module.assemblies.push(AssemblyMirror {
        id: root_id,
        children: Vec::new(),
        composites: Vec::new(),
        is_base: levels == 1,
    });

    let mut frontier = vec![0usize];
    for level in 2..=levels {
        let is_base = level == levels;
        let kind = if is_base {
            Kind::BaseAssembly
        } else {
            Kind::ComplexAssembly
        };
        let mut next = Vec::with_capacity(frontier.len() * fanout as usize);
        for &parent in &frontier {
            for slot in 0..fanout {
                let id = state.create_unlinked(kind);
                let parent_id = state.module.assemblies[parent].id;
                state.write(parent_id, slot, id);
                state.module.assemblies.push(AssemblyMirror {
                    id,
                    children: Vec::new(),
                    composites: Vec::new(),
                    is_base,
                });
                let idx = state.module.assemblies.len() - 1;
                state.module.assemblies[parent].children.push(idx);
                next.push(idx);
            }
        }
        frontier = next;
    }
}

/// Builds one composite part: the composite object, its document, its
/// atomic parts, and the connection graph among them.
fn build_composite(state: &mut GenState, ci: u32) {
    let comp_id = state.create_unlinked(Kind::CompositePart);
    state.write(state.module.id, module_library_slot(ci), comp_id);

    let doc_id = state.create_unlinked(Kind::Document);
    state.write(comp_id, COMPOSITE_DOC_SLOT, doc_id);

    let n_parts = state.params.num_atomic_per_comp;
    let mut parts = Vec::with_capacity(n_parts as usize);
    for pi in 0..n_parts {
        let part_id = state.create_unlinked(Kind::AtomicPart);
        state.write(comp_id, composite_part_slot(pi), part_id);
        parts.push(Some(PartMirror::new(part_id, &state.params)));
    }
    state.module.composites.push(CompositeMirror {
        id: comp_id,
        doc: doc_id,
        parts,
    });

    for pi in 0..n_parts {
        for _ in 0..state.params.num_conn_per_atomic {
            add_connection(state, ci, pi);
        }
    }
}

/// Adds one connection from part `pi` of composite `ci` to a random other
/// live part of the same composite with free in-capacity. Increments
/// `skipped_connections` when no placement is possible.
pub fn add_connection(state: &mut GenState, ci: u32, pi: u32) {
    let comp = &state.module.composites[ci as usize];
    let Some(from_slot) = comp.part(pi).free_out_slot() else {
        state.skipped_connections += 1;
        return;
    };
    let candidates: Vec<u32> = comp
        .parts
        .iter()
        .enumerate()
        .filter_map(|(qi, p)| match p {
            Some(pm) if qi as u32 != pi && pm.free_in_slot().is_some() => Some(qi as u32),
            _ => None,
        })
        .collect();
    let Some(&qi) = candidates.choose(&mut state.rng) else {
        state.skipped_connections += 1;
        return;
    };
    let to_slot = comp.part(qi).free_in_slot().expect("candidate has space");
    let from_id = comp.part(pi).id;
    let to_id = comp.part(qi).id;

    let conn_id = match state.params.conn_style {
        crate::params::ConnStyle::Bidirectional => {
            let id = state.create(Kind::Connection, vec![Some(from_id), Some(to_id)]);
            state.write(from_id, part_out_slot(from_slot), id);
            state.write(to_id, part_in_slot(&state.params, to_slot), id);
            id
        }
        crate::params::ConnStyle::Forward => {
            // The connection only points forward; the target part holds no
            // reference to it (to_slot indexes the mirror only).
            let id = state.create(Kind::Connection, vec![Some(to_id)]);
            state.write(from_id, part_out_slot(from_slot), id);
            id
        }
    };

    let mirror = ConnMirror {
        id: conn_id,
        from: pi,
        from_slot,
        to: qi,
        to_slot,
    };
    let comp = &mut state.module.composites[ci as usize];
    comp.part_mut(pi).out[from_slot as usize] = Some(mirror);
    comp.part_mut(qi).in_[to_slot as usize] = Some(mirror);
}

/// Points each base assembly at `num_comp_per_assm` random composites.
fn link_base_assemblies(state: &mut GenState) {
    let n_comps = state.params.num_comp_per_module;
    let base_indices: Vec<usize> = state
        .module
        .assemblies
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.is_base.then_some(i))
        .collect();
    for ai in base_indices {
        for slot in 0..state.params.num_comp_per_assm {
            let ci = state.rng.random_range(0..n_comps);
            let assm_id = state.module.assemblies[ai].id;
            let comp_id = state.module.composites[ci as usize].id;
            state.write(assm_id, slot, comp_id);
            state.module.assemblies[ai].composites.push(ci);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_store::{Store, StoreConfig};

    fn replayed(params: Oo7Params, seed: u64) -> (GenState, Store) {
        let state = build(params, seed);
        // Clone the events out without finishing the builder.
        let mut store = Store::new(StoreConfig::tiny());
        // Rebuild a trace view: TraceBuilder has no peek, so go through a
        // fresh build for replay determinism.
        let trace = build(params, seed).trace.finish();
        for ev in trace.iter() {
            store.apply(ev).expect("GenDB trace must replay cleanly");
        }
        (state, store)
    }

    #[test]
    fn tiny_database_replays_cleanly_with_exact_tracking() {
        let (_state, store) = replayed(Oo7Params::tiny(), 1);
        store.assert_garbage_exact();
        assert_eq!(store.garbage_bytes(), 0, "GenDB creates no garbage");
        assert_eq!(store.overwrite_clock(), 0, "GenDB overwrites nothing");
    }

    #[test]
    fn object_census_matches_params() {
        let p = Oo7Params::tiny();
        let (state, store) = replayed(p, 2);
        let m = &state.module;
        assert_eq!(m.composites.len(), p.num_comp_per_module as usize);
        // Assembly count: levels 2, fanout 2 → 1 root + 2 base = 3.
        assert_eq!(m.assemblies.len(), 3);
        assert_eq!(
            m.assemblies.iter().filter(|a| a.is_base).count() as u64,
            p.num_base_assemblies()
        );
        let expected_objects = 1 // module
            + 1 // manual
            + 3 // assemblies
            + p.num_comp_per_module as u64 * 2 // composite + doc
            + p.num_atomic_parts()
            + p.num_connections()
            - state.skipped_connections;
        assert_eq!(store.present_objects(), expected_objects);
        assert_eq!(store.live_bytes(), store.occupied_bytes());
    }

    #[test]
    fn every_part_has_full_out_degree() {
        let p = Oo7Params::tiny();
        let state = build(p, 3);
        assert_eq!(state.skipped_connections, 0);
        for comp in &state.module.composites {
            for pm in comp.parts.iter().flatten() {
                assert_eq!(pm.out_degree(), p.num_conn_per_atomic as usize);
            }
        }
    }

    #[test]
    fn connections_stay_within_composite_and_avoid_self() {
        let state = build(Oo7Params::tiny(), 4);
        for comp in &state.module.composites {
            for (pi, pm) in comp.parts.iter().enumerate() {
                for c in pm.as_ref().unwrap().out.iter().flatten() {
                    assert_eq!(c.from as usize, pi);
                    assert_ne!(c.to, c.from, "self-connection");
                    // Both endpoint mirrors agree.
                    let to = comp.part(c.to);
                    assert_eq!(to.in_[c.to_slot as usize], Some(*c));
                }
            }
        }
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let p = Oo7Params::tiny();
        let a = build(p, 42).trace.finish();
        let b = build(p, 42).trace.finish();
        let c = build(p, 43).trace.finish();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn small_prime_builds_at_scale() {
        let p = Oo7Params::small_prime(3);
        let state = build(p, 7);
        assert_eq!(state.skipped_connections, 0);
        assert_eq!(state.module.composites.len(), 150);
        assert_eq!(state.module.assemblies.len(), 121 + 243);
        let trace = state.trace.finish();
        let stats = trace.stats();
        // 1 module + 1 manual + 364 assemblies + 150 comps + 150 docs
        // + 3000 parts + 9000 connections.
        assert_eq!(stats.objects_created, 12_666);
    }
}
