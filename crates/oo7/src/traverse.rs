//! The Traverse phase: a read-only depth-first traversal.
//!
//! Visits the module, manual, the assembly hierarchy, and — for each
//! composite — the document and the atomic-part graph, following
//! out-connections depth-first from each yet-unvisited part. Emits one
//! `Access` event per object visited. No pointers change, so no garbage
//! can be created and SAGA's overwrite clock stands still (§4.1.2:
//! "'time' does not progress between the end of Reorg1 and the beginning
//! of Reorg2").

use std::collections::HashSet;

use crate::model::GenState;

/// Runs the Traverse phase, returning the number of objects visited.
pub fn traverse(state: &mut GenState) -> u64 {
    state.trace.phase("Traverse");
    let mut visited_comps: HashSet<u32> = HashSet::new();
    let mut count = 0u64;

    let module_id = state.module.id;
    let manual_id = state.module.manual;
    state.trace.access(module_id);
    state.trace.access(manual_id);
    count += 2;

    // Depth-first over the assembly tree (arena index 0 is the root).
    let mut stack = vec![0usize];
    let mut comp_order: Vec<u32> = Vec::new();
    while let Some(ai) = stack.pop() {
        let id = state.module.assemblies[ai].id;
        state.trace.access(id);
        count += 1;
        // Children pushed in reverse so traversal visits them in order.
        let children: Vec<usize> = state.module.assemblies[ai].children.clone();
        for &c in children.iter().rev() {
            stack.push(c);
        }
        for &ci in &state.module.assemblies[ai].composites {
            if visited_comps.insert(ci) {
                comp_order.push(ci);
            }
        }
    }
    // Composites in the order the assembly walk discovered them, then any
    // the base assemblies missed (reachable via the design library).
    for ci in 0..state.module.composites.len() as u32 {
        if visited_comps.insert(ci) {
            comp_order.push(ci);
        }
    }
    for ci in comp_order {
        count += traverse_composite(state, ci);
    }
    count
}

/// Visits one composite: its object, document, and part graph (DFS via
/// out-connections; parts not reachable through connections are started
/// from the parts set).
fn traverse_composite(state: &mut GenState, ci: u32) -> u64 {
    let comp = &state.module.composites[ci as usize];
    let comp_id = comp.id;
    let doc_id = comp.doc;
    state.trace.access(comp_id);
    state.trace.access(doc_id);
    let mut count = 2u64;

    let n_parts = state.module.composites[ci as usize].parts.len() as u32;
    let mut visited: HashSet<u32> = HashSet::new();
    for start in 0..n_parts {
        if state.module.composites[ci as usize].parts[start as usize].is_none()
            || visited.contains(&start)
        {
            continue;
        }
        let mut stack = vec![start];
        while let Some(pi) = stack.pop() {
            if !visited.insert(pi) {
                continue;
            }
            let comp = &state.module.composites[ci as usize];
            let pm = comp.part(pi);
            let part_id = pm.id;
            let conns: Vec<(odbgc_trace::ObjectId, u32)> =
                pm.out.iter().flatten().map(|c| (c.id, c.to)).collect();
            state.trace.access(part_id);
            count += 1;
            for (conn_id, to) in conns.into_iter().rev() {
                state.trace.access(conn_id);
                count += 1;
                if !visited.contains(&to) {
                    stack.push(to);
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build;
    use crate::params::Oo7Params;
    use odbgc_store::{Store, StoreConfig};
    use odbgc_trace::{Event, EventKind};

    #[test]
    fn traverse_is_read_only() {
        let mut state = build(Oo7Params::tiny(), 1);
        traverse(&mut state);
        let trace = state.trace.finish();
        let mut store = Store::new(StoreConfig::tiny());
        for ev in trace.iter() {
            store.apply(ev).expect("traverse must replay cleanly");
        }
        assert_eq!(store.overwrite_clock(), 0);
        assert_eq!(store.garbage_bytes(), 0);
        store.assert_garbage_exact();
    }

    #[test]
    fn traverse_visits_every_live_object_exactly_once() {
        let p = Oo7Params::tiny();
        let mut state = build(p, 2);
        let visited = traverse(&mut state);
        let trace = state.trace.finish();
        let stats = trace.stats();
        // Connections may be fewer if any were skipped (none at tiny
        // scale), so the access count equals total objects created.
        assert_eq!(visited, stats.objects_created);
        // No duplicate accesses.
        let mut seen = std::collections::HashSet::new();
        for ev in trace.iter() {
            if let Event::Access { id } = ev {
                assert!(seen.insert(*id), "object {id} accessed twice");
            }
        }
        assert_eq!(stats.count(EventKind::Access), stats.objects_created);
    }

    #[test]
    fn traverse_after_reorg_skips_dead_objects() {
        let mut state = build(Oo7Params::tiny(), 3);
        crate::reorg::reorg_clustered(&mut state);
        let visited = traverse(&mut state);
        let trace = state.trace.finish();
        let mut store = Store::new(StoreConfig::tiny());
        for ev in trace.iter() {
            store.apply(ev).expect("trace must replay cleanly");
        }
        // Visiting a garbage object would have errored during replay.
        store.assert_garbage_exact();
        assert!(visited > 0);
    }

    #[test]
    fn traverse_is_deterministic() {
        let count = |seed| {
            let mut s = build(Oo7Params::tiny(), seed);
            traverse(&mut s);
            s.trace.finish()
        };
        assert_eq!(count(9), count(9));
    }
}
