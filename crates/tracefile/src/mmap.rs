//! Whole-file tracefile backings: a read-only memory map with a plain
//! read-to-`Vec` fallback behind the same type.
//!
//! The workspace builds without crates.io, so the map is a minimal
//! hand-rolled `mmap(2)` binding (64-bit Unix only) rather than a
//! dependency. [`TraceData`] hides which backing was used: either way it
//! dereferences to the file's bytes and plugs into
//! [`SliceBlocks`](crate::SliceBlocks) for zero-copy block reading.
//!
//! ## Safety argument
//!
//! * The mapping is `PROT_READ` + `MAP_PRIVATE`: nothing is ever written
//!   through it, and writes by other processes to the same file are not
//!   required to be coherent with our view.
//! * Every byte is CRC32-verified at block granularity *before* any
//!   event decoding touches it, so a torn or doctored file surfaces as a
//!   typed [`DecodeError`](crate::DecodeError), never as UB — the decode
//!   layer performs the same bounds checks it performs on heap buffers.
//! * The length is captured once from the file's metadata at map time
//!   and never re-read, so accesses stay inside the mapped range. The
//!   one residual hazard of any file mapping — another process
//!   *shrinking* the file while mapped, which faults on access to the
//!   vanished tail — cannot arise from this crate's own discipline:
//!   [`TraceCorpus`](crate::TraceCorpus) fills replace files by atomic
//!   rename and never truncate in place. Callers sharing tracefiles
//!   with in-place writers should use the buffered fallback.
//!
//! ## When the fallback engages
//!
//! [`TraceData::open`] falls back to `std::fs::read` when the target is
//! not 64-bit Unix, when the file is empty (zero-length maps are
//! rejected by the kernel), or when `mmap` itself fails. The fallback
//! costs one up-front copy but decodes identically.

use std::fs::File;
use std::io;
use std::path::Path;

/// A whole tracefile image: memory-mapped when possible, owned bytes
/// otherwise. Dereferences to the file's contents either way.
#[derive(Debug)]
pub struct TraceData {
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(sys::MmapRegion),
    Owned(Vec<u8>),
}

impl TraceData {
    /// Opens `path`, preferring a read-only memory map and silently
    /// falling back to reading the whole file into memory (see the
    /// module docs for exactly when).
    pub fn open(path: &Path) -> io::Result<TraceData> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            if let Ok(file) = File::open(path) {
                if let Ok(region) = sys::MmapRegion::map(&file) {
                    return Ok(TraceData {
                        backing: Backing::Mapped(region),
                    });
                }
            }
        }
        Self::open_buffered(path)
    }

    /// Opens `path` by reading it fully into an owned buffer, never
    /// mapping. Useful when the file may be modified in place.
    pub fn open_buffered(path: &Path) -> io::Result<TraceData> {
        Ok(TraceData {
            backing: Backing::Owned(std::fs::read(path)?),
        })
    }

    /// True when the backing is an actual memory map (false means the
    /// read-to-`Vec` fallback engaged).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(_) => true,
            Backing::Owned(_) => false,
        }
    }
}

impl AsRef<[u8]> for TraceData {
    fn as_ref(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped(region) => region.as_slice(),
            Backing::Owned(bytes) => bytes,
        }
    }
}

impl std::ops::Deref for TraceData {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    //! The minimal `mmap(2)` surface this crate needs. `std` always
    //! links libc on Unix, so declaring the two symbols ourselves keeps
    //! the workspace dependency-free.

    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// A read-only, private mapping of one whole file.
    pub(super) struct MmapRegion {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the region is immutable for its whole life (PROT_READ and
    // no API hands out &mut), so sharing it across threads is as safe
    // as sharing a &[u8].
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl std::fmt::Debug for MmapRegion {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("MmapRegion")
                .field("len", &self.len)
                .finish()
        }
    }

    impl MmapRegion {
        /// Maps the whole of `file` read-only. Zero-length files are an
        /// error (the kernel rejects empty maps); callers fall back.
        pub(super) fn map(file: &File) -> io::Result<MmapRegion> {
            let len = file.metadata()?.len();
            let len = usize::try_from(len).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidInput, "file too large to map")
            })?;
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            // SAFETY: we request a fresh PROT_READ/MAP_PRIVATE mapping of
            // a file we hold open; the kernel picks the address. The only
            // outputs are MAP_FAILED or a valid mapping of exactly `len`
            // bytes, which Drop unmaps.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapRegion { ptr, len })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live mapping of exactly `len` readable
            // bytes until Drop runs; the returned borrow cannot outlive
            // `self`.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are the exact values mmap returned;
            // unmapping a private read-only region cannot fail in a way
            // we could act on.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_trace::TraceBuilder;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("odbgc-mmap-test-{name}-{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn mapped_and_buffered_see_the_same_bytes() {
        let mut b = TraceBuilder::new();
        let a = b.create_unlinked(16, 0);
        for _ in 0..100 {
            b.access(a);
        }
        let bytes = crate::encode(&b.finish());
        let path = temp_file("same-bytes", &bytes);
        let mapped = TraceData::open(&path).unwrap();
        let buffered = TraceData::open_buffered(&path).unwrap();
        assert_eq!(&*mapped, bytes.as_slice());
        assert_eq!(&*buffered, bytes.as_slice());
        assert!(!buffered.is_mapped());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(mapped.is_mapped(), "64-bit unix should actually map");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = temp_file("empty", b"");
        let data = TraceData::open(&path).unwrap();
        assert!(!data.is_mapped());
        assert!(data.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = std::env::temp_dir().join("odbgc-mmap-test-definitely-missing.otb");
        assert!(TraceData::open(&path).is_err());
    }
}
