//! Streaming tracefile encoder.
//!
//! Per-event layout inside an event block (after the block's leading
//! varint event count). `zdelta(id)` means: zigzag varint of the
//! wrapping difference between `id` and the previously encoded id in
//! this block (the state starts at 0 at each block boundary, so blocks
//! decode independently).
//!
//! | tag | event | fields |
//! |---|---|---|
//! | 1 | `Create` | zdelta(id), varint(size), varint(n_slots), presence bitmap (⌈n/8⌉ bytes, LSB-first), zdelta per non-null slot |
//! | 2 | `Access` | zdelta(id) |
//! | 3 | `SlotWrite` (non-null) | zdelta(src), varint(slot), zdelta(new) |
//! | 4 | `SlotWrite` (null) | zdelta(src), varint(slot) |
//! | 5 | `RootAdd` | zdelta(id) |
//! | 6 | `RootRemove` | zdelta(id) |
//! | 7 | `Phase` | varint(phase id) |

use std::io::{self, Write};

use odbgc_trace::{Event, ObjectId, Trace};

use crate::crc32::crc32;
use crate::varint::{put_u64, zigzag};
use crate::{BLOCK_END, BLOCK_EVENTS, BLOCK_PHASES, BLOCK_TARGET_BYTES, FORMAT_VERSION, MAGIC};

/// Event tag bytes (see module docs).
pub(crate) const TAG_CREATE: u8 = 1;
pub(crate) const TAG_ACCESS: u8 = 2;
pub(crate) const TAG_SLOT_WRITE_SOME: u8 = 3;
pub(crate) const TAG_SLOT_WRITE_NULL: u8 = 4;
pub(crate) const TAG_ROOT_ADD: u8 = 5;
pub(crate) const TAG_ROOT_REMOVE: u8 = 6;
pub(crate) const TAG_PHASE: u8 = 7;

/// Incremental tracefile writer.
///
/// Events are encoded as they arrive into a bounded block buffer that is
/// sealed (length-prefixed, checksummed, flushed) every ~32 KiB, so
/// writing a trace never requires holding it in memory.
///
/// ```
/// use odbgc_trace::TraceBuilder;
/// use odbgc_tracefile::{TraceReader, TraceWriter};
///
/// let mut b = TraceBuilder::new();
/// b.phase("setup");
/// let a = b.create_unlinked(16, 0);
/// b.root_add(a);
/// let trace = b.finish();
///
/// let mut out = Vec::new();
/// let mut w = TraceWriter::new(&mut out, trace.phase_names()).unwrap();
/// for ev in trace.iter() {
///     w.write_event(ev).unwrap();
/// }
/// w.finish().unwrap();
///
/// let r = TraceReader::new(out.as_slice()).unwrap();
/// assert_eq!(r.phase_names(), trace.phase_names());
/// ```
pub struct TraceWriter<W: Write> {
    out: W,
    /// Encoded events of the open block (without the leading count).
    block: Vec<u8>,
    /// Events in the open block.
    block_events: u64,
    /// Delta baseline for the open block.
    prev_id: u64,
    /// Events written over the writer's whole life.
    total_events: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a tracefile on `out`: writes the header and the phase
    /// table. Phase names must be known up front; they are part of the
    /// header so a streaming reader can resolve [`Event::Phase`] ids
    /// during replay.
    pub fn new(mut out: W, phase_names: &[String]) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?; // flags, reserved
        let mut table = Vec::new();
        put_u64(&mut table, phase_names.len() as u64);
        for name in phase_names {
            put_u64(&mut table, name.len() as u64);
            table.extend_from_slice(name.as_bytes());
        }
        write_block(&mut out, BLOCK_PHASES, &table)?;
        Ok(TraceWriter {
            out,
            block: Vec::with_capacity(BLOCK_TARGET_BYTES + 256),
            block_events: 0,
            prev_id: 0,
            total_events: 0,
        })
    }

    /// Encodes the next id as a zigzag delta against the running
    /// baseline, then advances the baseline.
    fn put_id(&mut self, id: ObjectId) {
        let delta = id.raw().wrapping_sub(self.prev_id) as i64;
        put_u64(&mut self.block, zigzag(delta));
        self.prev_id = id.raw();
    }

    /// Appends one event, sealing the current block if it is full.
    pub fn write_event(&mut self, ev: &Event) -> io::Result<()> {
        match ev {
            Event::Create { id, size, slots } => {
                self.block.push(TAG_CREATE);
                self.put_id(*id);
                put_u64(&mut self.block, u64::from(*size));
                put_u64(&mut self.block, slots.len() as u64);
                let mut bitmap = vec![0u8; slots.len().div_ceil(8)];
                for (i, slot) in slots.iter().enumerate() {
                    if slot.is_some() {
                        bitmap[i / 8] |= 1 << (i % 8);
                    }
                }
                self.block.extend_from_slice(&bitmap);
                for slot in slots.iter().flatten() {
                    self.put_id(*slot);
                }
            }
            Event::Access { id } => {
                self.block.push(TAG_ACCESS);
                self.put_id(*id);
            }
            Event::SlotWrite { src, slot, new } => {
                match new {
                    Some(_) => self.block.push(TAG_SLOT_WRITE_SOME),
                    None => self.block.push(TAG_SLOT_WRITE_NULL),
                }
                self.put_id(*src);
                put_u64(&mut self.block, u64::from(slot.raw()));
                if let Some(new) = new {
                    self.put_id(*new);
                }
            }
            Event::RootAdd { id } => {
                self.block.push(TAG_ROOT_ADD);
                self.put_id(*id);
            }
            Event::RootRemove { id } => {
                self.block.push(TAG_ROOT_REMOVE);
                self.put_id(*id);
            }
            Event::Phase { id } => {
                self.block.push(TAG_PHASE);
                put_u64(&mut self.block, u64::from(id.raw()));
            }
        }
        self.block_events += 1;
        self.total_events += 1;
        if self.block.len() >= BLOCK_TARGET_BYTES {
            self.seal_block()?;
        }
        Ok(())
    }

    /// Seals the open event block: prepends its count, checksums it, and
    /// writes it out.
    fn seal_block(&mut self) -> io::Result<()> {
        if self.block_events == 0 {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(self.block.len() + 4);
        put_u64(&mut payload, self.block_events);
        payload.extend_from_slice(&self.block);
        write_block(&mut self.out, BLOCK_EVENTS, &payload)?;
        self.block.clear();
        self.block_events = 0;
        self.prev_id = 0;
        Ok(())
    }

    /// Seals any open block, writes the end block, flushes, and returns
    /// the underlying writer. A tracefile without its end block is
    /// detectably truncated.
    pub fn finish(mut self) -> io::Result<W> {
        self.seal_block()?;
        let mut payload = Vec::new();
        put_u64(&mut payload, self.total_events);
        write_block(&mut self.out, BLOCK_END, &payload)?;
        self.out.flush()?;
        Ok(self.out)
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.total_events
    }
}

/// Writes one length-prefixed, checksummed block.
fn write_block<W: Write>(out: &mut W, kind: u8, payload: &[u8]) -> io::Result<()> {
    out.write_all(&[kind])?;
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(payload)?;
    out.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Writes a fully materialized trace as a tracefile.
pub fn write_trace<W: Write>(out: W, trace: &Trace) -> io::Result<W> {
    let mut w = TraceWriter::new(out, trace.phase_names())?;
    for ev in trace.iter() {
        w.write_event(ev)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_trace::TraceBuilder;

    #[test]
    fn header_layout_is_stable() {
        let out = write_trace(Vec::new(), &Trace::default()).unwrap();
        assert_eq!(&out[..4], b"OTBF");
        assert_eq!(u16::from_le_bytes([out[4], out[5]]), FORMAT_VERSION);
        assert_eq!(u16::from_le_bytes([out[6], out[7]]), 0);
        // Empty phase table block, then empty-count end block.
        assert_eq!(out[8], BLOCK_PHASES);
    }

    #[test]
    fn large_traces_span_multiple_blocks() {
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(16, 1);
        for _ in 0..40_000 {
            b.access(root);
        }
        let t = b.finish();
        let bytes = crate::encode(&t);
        // 40k two-byte events cannot fit one 32 KiB block. Walk the block
        // structure to count them.
        let mut pos = 8;
        let mut event_blocks = 0;
        while pos < bytes.len() {
            let kind = bytes[pos];
            let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().unwrap()) as usize;
            if kind == BLOCK_EVENTS {
                event_blocks += 1;
            }
            pos += 1 + 4 + len + 4;
        }
        assert_eq!(pos, bytes.len(), "blocks tile the file exactly");
        assert!(event_blocks >= 2, "expected multiple event blocks");
        assert_eq!(crate::decode(&bytes).unwrap(), t);
    }

    #[test]
    fn events_written_counts() {
        let mut w = TraceWriter::new(Vec::new(), &[]).unwrap();
        assert_eq!(w.events_written(), 0);
        w.write_event(&Event::Access {
            id: ObjectId::new(5),
        })
        .unwrap();
        assert_eq!(w.events_written(), 1);
        w.finish().unwrap();
    }
}
