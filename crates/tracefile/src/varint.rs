//! LEB128 varints and zigzag signed mapping.
//!
//! Unsigned values are encoded 7 bits per byte, low bits first, with the
//! high bit as a continuation flag (at most 10 bytes for a `u64`).
//! Signed deltas map through zigzag (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`)
//! so small magnitudes of either sign stay short.

/// Appends `value` to `out` as an LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncation, overlong encodings, or overflow — the
/// caller maps that to its typed corruption error.
#[inline]
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    // One-byte values dominate real traces (delta encoding keeps ids
    // small), so the single-byte case decodes without entering the loop.
    let first = *buf.get(*pos)?;
    if first & 0x80 == 0 {
        *pos += 1;
        return Some(u64::from(first));
    }
    get_u64_multibyte(buf, pos)
}

fn get_u64_multibyte(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let payload = u64::from(byte & 0x7F);
        // The 10th byte may only carry the single remaining bit.
        if shift == 63 && payload > 1 {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
    }
    None
}

/// Zigzag-maps a signed delta into an unsigned varint payload.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) {
        let mut buf = Vec::new();
        put_u64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn u64_round_trips() {
        for v in [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            round_trip(v);
        }
    }

    #[test]
    fn encoding_lengths() {
        let len = |v: u64| {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            buf.len()
        };
        assert_eq!(len(0), 1);
        assert_eq!(len(127), 1);
        assert_eq!(len(128), 2);
        assert_eq!(len(u64::MAX), 10);
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 1 << 40);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), None);
    }

    #[test]
    fn overflowing_input_is_detected() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), None);
        // A 10-byte encoding whose last byte carries more than one bit
        // would overflow 64 bits.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
