//! Typed decode failures.
//!
//! Corruption is a fact of life for an on-disk corpus shared between
//! processes; every way a tracefile can be unusable has its own variant
//! so callers (and tests) can tell a foreign file from a truncated one
//! from a bit flip — and none of them panics.

use std::fmt;

/// Why a tracefile could not be decoded.
#[derive(Debug)]
pub enum DecodeError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The file does not start with the tracefile magic — it is not a
    /// tracefile at all.
    BadMagic {
        /// The bytes found where the magic was expected.
        found: [u8; 4],
    },
    /// The file declares a format version this crate does not speak
    /// (written by a future release).
    UnsupportedVersion {
        /// The version the file declares.
        found: u16,
        /// The newest version this crate supports.
        supported: u16,
    },
    /// The byte stream ended before the structure did (mid-header,
    /// mid-block, or before the end block).
    Truncated {
        /// Byte offset at which the stream ended.
        offset: u64,
        /// What the decoder was expecting to read.
        expected: &'static str,
    },
    /// A block's payload does not match its stored CRC32 — the bytes
    /// were altered after writing.
    ChecksumMismatch {
        /// Zero-based index of the damaged block.
        block: u64,
        /// The checksum stored in the file.
        stored: u32,
        /// The checksum computed over the payload actually read.
        computed: u32,
    },
    /// The structure is malformed in some other way (unknown block kind,
    /// bad varint, event count mismatch, non-UTF-8 phase name, …).
    Corrupt {
        /// Zero-based index of the offending block (the header counts as
        /// block 0's predecessor and reports 0).
        block: u64,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "tracefile I/O error: {e}"),
            DecodeError::BadMagic { found } => write!(
                f,
                "not a tracefile: bad magic {found:02x?} (expected {:02x?})",
                crate::MAGIC
            ),
            DecodeError::UnsupportedVersion { found, supported } => write!(
                f,
                "tracefile version {found} is newer than supported version {supported}"
            ),
            DecodeError::Truncated { offset, expected } => write!(
                f,
                "tracefile truncated at byte {offset} (expected {expected})"
            ),
            DecodeError::ChecksumMismatch {
                block,
                stored,
                computed,
            } => write!(
                f,
                "tracefile block {block} checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            DecodeError::Corrupt { block, message } => {
                write!(f, "tracefile block {block} corrupt: {message}")
            }
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DecodeError {
    fn from(e: std::io::Error) -> Self {
        DecodeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure() {
        let e = DecodeError::BadMagic { found: *b"GIF8" };
        assert!(e.to_string().contains("bad magic"));
        let e = DecodeError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = DecodeError::Truncated {
            offset: 42,
            expected: "block payload",
        };
        assert!(e.to_string().contains("byte 42"));
        let e = DecodeError::ChecksumMismatch {
            block: 3,
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("block 3"));
        let e = DecodeError::Corrupt {
            block: 0,
            message: "bad varint".into(),
        };
        assert!(e.to_string().contains("bad varint"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: DecodeError = std::io::Error::other("boom").into();
        assert!(matches!(e, DecodeError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
