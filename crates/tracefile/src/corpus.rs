//! A persistent, cross-process trace corpus.
//!
//! The corpus is a directory of tracefiles addressed by a
//! [`CorpusKey`] — a canonical workload description plus a seed. The
//! file name embeds an FNV-1a hash of the workload string (so any change
//! to the workload parameters addresses a different file) and the seed
//! in the clear (so humans can browse the directory):
//!
//! ```text
//! $ODBGC_CORPUS/
//!   1d0e5c43a9b1f702-s1.otb        # tracefile for (workload 1d0e…, seed 1)
//!   1d0e5c43a9b1f702-s2.otb
//!   1d0e5c43a9b1f702.workload      # the workload string, for inspection
//! ```
//!
//! Fills are atomic: a new trace is written to a process-unique temp
//! file in the same directory and `rename(2)`d into place, so concurrent
//! sweep processes never observe a torn file — the worst case is two
//! processes generating the same (deterministic) trace and the second
//! rename being a no-op overwrite. A corpus file that fails to decode
//! (truncated by a crash, damaged on disk) is treated as a miss and
//! regenerated over.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use odbgc_trace::Trace;

/// Addresses one trace in a corpus: a canonical workload string (every
/// generation-relevant parameter, serialized deterministically by the
/// caller) plus the generation seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CorpusKey {
    workload: String,
    seed: u64,
}

impl CorpusKey {
    /// A key for (workload, seed).
    pub fn new(workload: impl Into<String>, seed: u64) -> Self {
        CorpusKey {
            workload: workload.into(),
            seed,
        }
    }

    /// The canonical workload string.
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// FNV-1a hash of the workload string.
    fn workload_hash(&self) -> u64 {
        fnv1a(self.workload.as_bytes())
    }

    /// The corpus-relative tracefile name for this key.
    pub fn file_name(&self) -> String {
        format!("{:016x}-s{}.otb", self.workload_hash(), self.seed)
    }

    /// The corpus-relative name of the workload-description sidecar.
    fn sidecar_name(&self) -> String {
        format!("{:016x}.workload", self.workload_hash())
    }
}

/// 64-bit FNV-1a — stable, dependency-free, and good enough to keep
/// distinct workload strings from colliding in a directory listing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Hit/miss/fill counters for one corpus handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorpusStats {
    /// Lookups served by corpus data — either loaded from an on-disk
    /// tracefile directly or re-served by a faster tier sitting on top
    /// (see [`TraceCorpus::note_hit`]).
    pub hits: u64,
    /// Lookups that found no usable tracefile.
    pub misses: u64,
    /// Traces generated (and offered back to the corpus) after a miss.
    pub generated: u64,
    /// Time spent loading tracefiles from disk.
    pub load_time: Duration,
}

impl std::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corpus: {} hit / {} miss / {} generated, load {} ms",
            self.hits,
            self.misses,
            self.generated,
            self.load_time.as_millis()
        )
    }
}

/// A handle on a corpus directory, with counters.
///
/// The handle is cheap and safe to share between threads; counters are
/// atomics and all filesystem operations are whole-file reads or atomic
/// renames.
#[derive(Debug)]
pub struct TraceCorpus {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    generated: AtomicU64,
    load_nanos: AtomicU64,
    tmp_counter: AtomicU64,
}

impl TraceCorpus {
    /// Opens (creating if needed) the corpus directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceCorpus {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            generated: AtomicU64::new(0),
            load_nanos: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// Opens the corpus named by the `ODBGC_CORPUS` environment
    /// variable, if set. An unusable directory is reported on stderr and
    /// treated as "no corpus" — a broken cache must never break a sweep.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var_os("ODBGC_CORPUS")?;
        if dir.is_empty() {
            return None;
        }
        match TraceCorpus::open(PathBuf::from(&dir)) {
            Ok(corpus) => Some(corpus),
            Err(e) => {
                eprintln!("odbgc: ignoring unusable ODBGC_CORPUS={dir:?}: {e}");
                None
            }
        }
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path a key maps to.
    pub fn path_of(&self, key: &CorpusKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Loads the trace for `key`, if a usable tracefile exists.
    ///
    /// Counts a hit on success. A missing file returns `None` silently;
    /// an unreadable or corrupt file warns on stderr and returns `None`
    /// (the caller will regenerate and overwrite it).
    pub fn load(&self, key: &CorpusKey) -> Option<Trace> {
        self.load_at(&self.path_of(key))
    }

    /// Like [`TraceCorpus::load`], but takes the already-resolved path —
    /// callers that look the same slot up repeatedly (the sweep hot
    /// loop) resolve the key to a path once and skip re-hashing it on
    /// every hit.
    ///
    /// Loads go through the zero-copy batched reader over a read-only
    /// memory map (atomic-rename fills mean corpus files are never
    /// truncated in place, so mapping is safe; see [`crate::mmap`]).
    pub fn load_at(&self, path: &Path) -> Option<Trace> {
        let started = Instant::now();
        match crate::open_batches(path).and_then(crate::BatchReader::read_to_trace) {
            Ok(trace) => {
                self.load_nanos
                    .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(trace)
            }
            Err(crate::DecodeError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(crate::DecodeError::Io(e)) => {
                eprintln!("odbgc: cannot open corpus file {path:?}: {e}");
                None
            }
            Err(e) => {
                eprintln!("odbgc: corpus file {path:?} is unusable ({e}); regenerating");
                None
            }
        }
    }

    /// Atomically installs `trace` as the tracefile for `key`, plus a
    /// small workload-description sidecar for human inspection.
    pub fn store(&self, key: &CorpusKey, trace: &Trace) -> std::io::Result<PathBuf> {
        let path = self.path_of(key);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
            key.file_name()
        ));
        let result = (|| {
            let file = std::fs::File::create(&tmp)?;
            let writer = crate::writer::write_trace(std::io::BufWriter::new(file), trace)?;
            writer
                .into_inner()
                .map_err(|e| e.into_error())?
                .sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result?;
        // Best-effort sidecar: losing it loses nothing but browsability.
        let sidecar = self.dir.join(key.sidecar_name());
        if !sidecar.exists() {
            std::fs::write(&sidecar, format!("{}\n", key.workload())).ok();
        }
        Ok(path)
    }

    /// The corpus as a cache tier: load `key`, or generate with `build`,
    /// installing the result for future processes.
    ///
    /// Generation counts one miss and one generated; a store failure is
    /// reported on stderr but does not fail the lookup — the cache is
    /// best-effort, the trace itself is always returned.
    pub fn get_or_insert_with(&self, key: &CorpusKey, build: impl FnOnce() -> Trace) -> Trace {
        self.load_or_generate(key, build).0
    }

    /// Like [`TraceCorpus::get_or_insert_with`], additionally reporting
    /// where the trace came from: `true` means loaded from disk, `false`
    /// means generated (tiered caches use this to attribute later
    /// re-serves correctly).
    pub fn load_or_generate(
        &self,
        key: &CorpusKey,
        build: impl FnOnce() -> Trace,
    ) -> (Trace, bool) {
        self.load_or_generate_at(&self.path_of(key), key, build)
    }

    /// Like [`TraceCorpus::load_or_generate`], with the key's path
    /// already resolved (it must equal [`TraceCorpus::path_of`]`(key)`).
    /// The hit path does no key hashing at all; the key is only needed
    /// again on the cold fill path, for the sidecar and temp naming.
    pub fn load_or_generate_at(
        &self,
        path: &Path,
        key: &CorpusKey,
        build: impl FnOnce() -> Trace,
    ) -> (Trace, bool) {
        if let Some(trace) = self.load_at(path) {
            return (trace, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let trace = build();
        self.generated.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.store(key, &trace) {
            eprintln!(
                "odbgc: cannot store trace {:?} in corpus: {e}",
                self.path_of(key)
            );
        }
        (trace, false)
    }

    /// Counts a hit that did not touch the disk: a cache tier above the
    /// corpus re-served data it originally loaded from here. Keeping the
    /// tally in one place makes `hits` the number of lookups the corpus
    /// ultimately satisfied, whatever tier answered.
    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counters so far.
    pub fn stats(&self) -> CorpusStats {
        CorpusStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            generated: self.generated.load(Ordering::Relaxed),
            load_time: Duration::from_nanos(self.load_nanos.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_trace::TraceBuilder;

    fn sample(tag: u32) -> Trace {
        let mut b = TraceBuilder::new();
        let a = b.create_unlinked(tag, 0);
        b.access(a);
        b.finish()
    }

    fn temp_corpus(name: &str) -> TraceCorpus {
        let dir =
            std::env::temp_dir().join(format!("odbgc-corpus-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TraceCorpus::open(dir).unwrap()
    }

    #[test]
    fn keys_separate_workloads_and_seeds() {
        let a1 = CorpusKey::new("w-a", 1);
        let a2 = CorpusKey::new("w-a", 2);
        let b1 = CorpusKey::new("w-b", 1);
        assert_ne!(a1.file_name(), a2.file_name());
        assert_ne!(a1.file_name(), b1.file_name());
        assert!(a1.file_name().ends_with("-s1.otb"));
    }

    #[test]
    fn miss_generates_then_hit_loads() {
        let corpus = temp_corpus("miss-hit");
        let key = CorpusKey::new("workload", 7);
        let first = corpus.get_or_insert_with(&key, || sample(64));
        let stats = corpus.stats();
        assert_eq!((stats.hits, stats.misses, stats.generated), (0, 1, 1));
        assert!(corpus.path_of(&key).exists());

        let second = corpus.get_or_insert_with(&key, || panic!("must not regenerate"));
        assert_eq!(first, second);
        let stats = corpus.stats();
        assert_eq!((stats.hits, stats.misses, stats.generated), (1, 1, 1));
        assert!(stats.to_string().contains("1 hit / 1 miss / 1 generated"));
        std::fs::remove_dir_all(corpus.dir()).ok();
    }

    #[test]
    fn a_second_handle_sees_the_fill() {
        // Two handles on the same directory model two processes.
        let corpus = temp_corpus("cross");
        let key = CorpusKey::new("workload", 3);
        corpus.get_or_insert_with(&key, || sample(32));

        let other = TraceCorpus::open(corpus.dir()).unwrap();
        let loaded = other.get_or_insert_with(&key, || panic!("fill must be visible"));
        assert_eq!(loaded, sample(32));
        assert_eq!(other.stats().hits, 1);
        assert_eq!(other.stats().generated, 0);
        std::fs::remove_dir_all(corpus.dir()).ok();
    }

    #[test]
    fn corrupt_file_is_regenerated() {
        let corpus = temp_corpus("corrupt");
        let key = CorpusKey::new("workload", 5);
        corpus.get_or_insert_with(&key, || sample(16));
        // Sabotage the stored file.
        let path = corpus.path_of(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes.truncate(n - 2);
        std::fs::write(&path, &bytes).unwrap();

        let fresh = TraceCorpus::open(corpus.dir()).unwrap();
        let loaded = fresh.get_or_insert_with(&key, || sample(16));
        assert_eq!(loaded, sample(16));
        assert_eq!(fresh.stats().hits, 0, "corrupt file is not a hit");
        assert_eq!(fresh.stats().generated, 1);
        // The regenerated file is whole again.
        let again = TraceCorpus::open(corpus.dir()).unwrap();
        again.get_or_insert_with(&key, || panic!("must load after repair"));
        assert_eq!(again.stats().hits, 1);
        std::fs::remove_dir_all(corpus.dir()).ok();
    }

    #[test]
    fn sidecar_documents_the_workload() {
        let corpus = temp_corpus("sidecar");
        let key = CorpusKey::new("oo7-std-v1;conn3", 1);
        corpus.get_or_insert_with(&key, || sample(8));
        let sidecar = corpus.dir().join(key.sidecar_name());
        let text = std::fs::read_to_string(sidecar).unwrap();
        assert_eq!(text.trim(), "oo7-std-v1;conn3");
        std::fs::remove_dir_all(corpus.dir()).ok();
    }
}
