//! Zero-copy block reading and borrowed event batches.
//!
//! This module is the decode hot path. It splits tracefile reading into
//! two layers:
//!
//! * A [`BlockSource`] yields CRC-verified `(kind, payload)` block frames.
//!   [`SliceBlocks`] walks an in-memory byte slice (an mmap'd file or a
//!   whole file read into a `Vec`) without copying a single payload byte;
//!   [`ReadBlocks`] streams from any [`Read`] into one reusable scratch
//!   buffer, so a long streaming decode performs O(1) block allocations,
//!   not O(blocks).
//! * A [`BatchReader`] sits on top of any source and yields **borrowed
//!   event batches**: each event block is validated once (CRC, count,
//!   exact payload consumption) and decoded in a single pass into a
//!   reusable arena, handed back as `&[Event]`. The happy path has no
//!   per-event allocation (other than `Create`'s inherent slot box) and
//!   no per-event `Result` branch.
//!
//! Both sources produce byte-for-byte identical [`DecodeError`]s for the
//! same input — the corruption suite in `tests/tracefile_corruption.rs`
//! runs every byte-flip and truncation against both paths and asserts
//! agreement.

use std::io::Read;

use odbgc_trace::{Event, ObjectId, PhaseId, SlotIdx, Trace};

use crate::crc32::crc32;
use crate::error::DecodeError;
use crate::varint::{get_u64, unzigzag};
use crate::writer::{
    TAG_ACCESS, TAG_CREATE, TAG_PHASE, TAG_ROOT_ADD, TAG_ROOT_REMOVE, TAG_SLOT_WRITE_NULL,
    TAG_SLOT_WRITE_SOME,
};
use crate::{BLOCK_END, BLOCK_EVENTS, BLOCK_PHASES, FORMAT_VERSION, MAGIC, MAX_BLOCK_LEN};

/// A source of CRC-verified tracefile blocks.
///
/// Implementors validate the 8-byte file header on construction, then
/// hand out `(kind, payload)` frames whose checksums have already been
/// checked. The payload borrows from the source, so the next call
/// invalidates it — callers decode each block before asking for the
/// next.
pub trait BlockSource {
    /// Reads the next block frame, verifying its CRC32.
    ///
    /// Errors are [`DecodeError::Truncated`] when the input ends inside
    /// a frame (the wire format requires an explicit end block, so a
    /// clean EOF here is still truncation), [`DecodeError::Corrupt`] on
    /// an oversized declared length, and
    /// [`DecodeError::ChecksumMismatch`] on payload damage.
    fn next_block(&mut self) -> Result<(u8, &[u8]), DecodeError>;

    /// Asserts the input is exhausted; called after the end block.
    /// Trailing bytes are [`DecodeError::Corrupt`].
    fn expect_eof(&mut self) -> Result<(), DecodeError>;

    /// Block frames fully read so far (the phase table counts as the
    /// first frame; the 8-byte file header does not count).
    fn blocks_read(&self) -> u64;

    /// A cheap hint of the events remaining, when the source can learn
    /// it without decoding payloads — an in-memory image can skip along
    /// block headers to the end block's declared count. Purely a
    /// pre-allocation hint: `None` (the default, and the answer for
    /// streaming or structurally damaged inputs) never changes decode
    /// results, and damage is still diagnosed by decode proper.
    fn remaining_events_hint(&self) -> Option<u64> {
        None
    }
}

/// Validates the magic and version at the front of `bytes`, mirroring
/// the streaming header errors (including truncation offsets) exactly.
fn check_header(bytes: &[u8]) -> Result<(), DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated {
            offset: bytes.len() as u64,
            expected: "magic",
        });
    }
    if bytes[..4] != MAGIC {
        return Err(DecodeError::BadMagic {
            found: [bytes[0], bytes[1], bytes[2], bytes[3]],
        });
    }
    if bytes.len() < 8 {
        return Err(DecodeError::Truncated {
            offset: bytes.len() as u64,
            expected: "version header",
        });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(())
}

/// Zero-copy block source over an in-memory tracefile image.
///
/// `B` is any byte backing — a borrowed `&[u8]`, an owned `Vec<u8>`, or
/// a [`crate::TraceData`] (mmap with read-to-`Vec` fallback). Payload
/// slices point straight into the backing; nothing is copied.
pub struct SliceBlocks<B> {
    data: B,
    pos: usize,
    blocks_read: u64,
}

impl<B: AsRef<[u8]>> SliceBlocks<B> {
    /// Validates the file header and positions the cursor at block 0.
    pub fn new(data: B) -> Result<Self, DecodeError> {
        check_header(data.as_ref())?;
        Ok(SliceBlocks {
            data,
            pos: 8,
            blocks_read: 0,
        })
    }
}

impl<B: AsRef<[u8]>> BlockSource for SliceBlocks<B> {
    fn next_block(&mut self) -> Result<(u8, &[u8]), DecodeError> {
        let bytes = self.data.as_ref();
        // A frame cut short by the end of the image reports the same
        // offset a streaming reader would: the total bytes available.
        let truncated = |expected| DecodeError::Truncated {
            offset: bytes.len() as u64,
            expected,
        };
        if bytes.len() - self.pos < 5 {
            return Err(truncated("block header"));
        }
        let kind = bytes[self.pos];
        let len = u32::from_le_bytes([
            bytes[self.pos + 1],
            bytes[self.pos + 2],
            bytes[self.pos + 3],
            bytes[self.pos + 4],
        ]);
        if len > MAX_BLOCK_LEN {
            return Err(DecodeError::Corrupt {
                block: self.blocks_read,
                message: format!("block length {len} exceeds the {MAX_BLOCK_LEN}-byte cap"),
            });
        }
        let start = self.pos + 5;
        let len = len as usize;
        if bytes.len() - start < len {
            return Err(truncated("block payload"));
        }
        let end = start + len;
        if bytes.len() - end < 4 {
            return Err(truncated("block checksum"));
        }
        let payload = &bytes[start..end];
        let stored =
            u32::from_le_bytes([bytes[end], bytes[end + 1], bytes[end + 2], bytes[end + 3]]);
        let computed = crc32(payload);
        if stored != computed {
            return Err(DecodeError::ChecksumMismatch {
                block: self.blocks_read,
                stored,
                computed,
            });
        }
        self.pos = end + 4;
        self.blocks_read += 1;
        Ok((kind, payload))
    }

    fn expect_eof(&mut self) -> Result<(), DecodeError> {
        if self.pos != self.data.as_ref().len() {
            return Err(DecodeError::Corrupt {
                block: self.blocks_read,
                message: "trailing bytes after end block".into(),
            });
        }
        Ok(())
    }

    fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    fn remaining_events_hint(&self) -> Option<u64> {
        // Hop along block headers (a handful of jumps for ~32 KiB
        // blocks) to the end block and read its declared total. Any
        // structural inconsistency — or a count implausible for the
        // bytes present (every event is at least 2 bytes) — yields
        // `None` rather than a huge reservation.
        let bytes = self.data.as_ref();
        let mut pos = self.pos;
        loop {
            let head = bytes.get(pos..pos + 5)?;
            let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]) as usize;
            let payload = bytes.get(pos + 5..pos + 5 + len)?;
            if head[0] == BLOCK_END {
                let mut p = 0;
                return get_u64(payload, &mut p).filter(|&n| n <= (bytes.len() as u64) / 2 + 1);
            }
            pos += 5 + len + 4;
        }
    }
}

/// Streaming block source over any [`Read`], holding at most one block
/// (~32 KiB) in a single scratch buffer that is reused across blocks.
pub struct ReadBlocks<R: Read> {
    input: R,
    /// Reusable payload buffer: grown once to the largest block seen,
    /// never reallocated after that.
    scratch: Vec<u8>,
    offset: u64,
    blocks_read: u64,
}

impl<R: Read> ReadBlocks<R> {
    /// Reads and validates the 8-byte file header.
    pub fn new(mut input: R) -> Result<Self, DecodeError> {
        let mut offset = 0u64;
        // Magic first, version second: a 4-byte foreign file is "not a
        // tracefile", not "a truncated tracefile".
        let mut magic = [0u8; 4];
        read_exact_at(&mut input, &mut magic, &mut offset, "magic")?;
        if magic != MAGIC {
            return Err(DecodeError::BadMagic { found: magic });
        }
        let mut rest = [0u8; 4];
        read_exact_at(&mut input, &mut rest, &mut offset, "version header")?;
        let version = u16::from_le_bytes([rest[0], rest[1]]);
        if version > FORMAT_VERSION {
            return Err(DecodeError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        Ok(ReadBlocks {
            input,
            scratch: Vec::new(),
            offset,
            blocks_read: 0,
        })
    }
}

impl<R: Read> BlockSource for ReadBlocks<R> {
    fn next_block(&mut self) -> Result<(u8, &[u8]), DecodeError> {
        let mut head = [0u8; 5];
        read_exact_at(&mut self.input, &mut head, &mut self.offset, "block header")?;
        let kind = head[0];
        let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]);
        if len > MAX_BLOCK_LEN {
            return Err(DecodeError::Corrupt {
                block: self.blocks_read,
                message: format!("block length {len} exceeds the {MAX_BLOCK_LEN}-byte cap"),
            });
        }
        self.scratch.clear();
        self.scratch.resize(len as usize, 0);
        read_exact_at(
            &mut self.input,
            &mut self.scratch,
            &mut self.offset,
            "block payload",
        )?;
        let mut stored = [0u8; 4];
        read_exact_at(
            &mut self.input,
            &mut stored,
            &mut self.offset,
            "block checksum",
        )?;
        let stored = u32::from_le_bytes(stored);
        let computed = crc32(&self.scratch);
        if stored != computed {
            return Err(DecodeError::ChecksumMismatch {
                block: self.blocks_read,
                stored,
                computed,
            });
        }
        self.blocks_read += 1;
        Ok((kind, &self.scratch))
    }

    fn expect_eof(&mut self) -> Result<(), DecodeError> {
        let mut probe = [0u8; 1];
        loop {
            match self.input.read(&mut probe) {
                Ok(0) => return Ok(()),
                Ok(_) => {
                    return Err(DecodeError::Corrupt {
                        block: self.blocks_read,
                        message: "trailing bytes after end block".into(),
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(DecodeError::Io(e)),
            }
        }
    }

    fn blocks_read(&self) -> u64 {
        self.blocks_read
    }
}

/// Reads exactly `buf.len()` bytes, reporting a typed truncation error
/// (with the stream offset) when the input ends early.
pub(crate) fn read_exact_at<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    offset: &mut u64,
    expected: &'static str,
) -> Result<(), DecodeError> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(DecodeError::Truncated {
                    offset: *offset + filled as u64,
                    expected,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(DecodeError::Io(e)),
        }
    }
    *offset += buf.len() as u64;
    Ok(())
}

/// Decodes the phase-table payload.
pub(crate) fn decode_phase_table(payload: &[u8]) -> Result<Vec<String>, DecodeError> {
    let corrupt = |message: String| DecodeError::Corrupt { block: 0, message };
    let mut pos = 0;
    let count =
        get_u64(payload, &mut pos).ok_or_else(|| corrupt("bad varint (phase count)".into()))?;
    let count = usize::try_from(count)
        .ok()
        .filter(|&c| c <= usize::from(u16::MAX))
        .ok_or_else(|| corrupt(format!("implausible phase count {count}")))?;
    let mut names = Vec::with_capacity(count);
    for i in 0..count {
        let len = get_u64(payload, &mut pos)
            .ok_or_else(|| corrupt(format!("bad varint (phase {i} name length)")))?;
        let end = usize::try_from(len)
            .ok()
            .and_then(|l| pos.checked_add(l))
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| corrupt(format!("phase {i} name runs past the table")))?;
        let name = std::str::from_utf8(&payload[pos..end])
            .map_err(|_| corrupt(format!("phase {i} name is not UTF-8")))?;
        names.push(name.to_owned());
        pos = end;
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes after phase table".into()));
    }
    Ok(names)
}

/// Decode cursor over one event-block payload. All the per-event format
/// knowledge lives here, shared by every read path, so a given byte
/// stream produces the same typed error whichever reader saw it.
struct BlockCursor<'a> {
    payload: &'a [u8],
    pos: usize,
    /// Delta baseline; resets to 0 at each block boundary.
    prev_id: u64,
    /// Block index used in `Corrupt` errors.
    block: u64,
}

impl BlockCursor<'_> {
    fn corrupt(&self, message: impl Into<String>) -> DecodeError {
        DecodeError::Corrupt {
            block: self.block,
            message: message.into(),
        }
    }

    #[inline]
    fn u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        get_u64(self.payload, &mut self.pos)
            .ok_or_else(|| self.corrupt(format!("bad varint ({what})")))
    }

    #[inline]
    fn id(&mut self, what: &str) -> Result<ObjectId, DecodeError> {
        let z = self.u64(what)?;
        let id = self.prev_id.wrapping_add(unzigzag(z) as u64);
        self.prev_id = id;
        Ok(ObjectId::new(id))
    }

    #[inline]
    fn event(&mut self) -> Result<Event, DecodeError> {
        let tag = *self
            .payload
            .get(self.pos)
            .ok_or_else(|| self.corrupt("event runs past block payload"))?;
        self.pos += 1;
        let ev = match tag {
            TAG_CREATE => {
                let id = self.id("create id")?;
                let size = self.u64("create size")?;
                let size = u32::try_from(size)
                    .map_err(|_| self.corrupt(format!("create size {size} exceeds u32")))?;
                let n = self.u64("create slot count")?;
                let n = usize::try_from(n)
                    .ok()
                    .filter(|&n| n <= self.payload.len() * 8)
                    .ok_or_else(|| self.corrupt(format!("implausible slot count {n}")))?;
                let bitmap_len = n.div_ceil(8);
                let bitmap_end = self
                    .pos
                    .checked_add(bitmap_len)
                    .filter(|&e| e <= self.payload.len())
                    .ok_or_else(|| self.corrupt("slot bitmap runs past block payload"))?;
                let bitmap = &self.payload[self.pos..bitmap_end];
                self.pos = bitmap_end;
                let mut slots = Vec::with_capacity(n);
                for i in 0..n {
                    if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                        let z = get_u64(self.payload, &mut self.pos)
                            .ok_or_else(|| self.corrupt("bad varint (create slot target)"))?;
                        let id = self.prev_id.wrapping_add(unzigzag(z) as u64);
                        self.prev_id = id;
                        slots.push(Some(ObjectId::new(id)));
                    } else {
                        slots.push(None);
                    }
                }
                Event::Create {
                    id,
                    size,
                    slots: slots.into_boxed_slice(),
                }
            }
            TAG_ACCESS => Event::Access {
                id: self.id("access id")?,
            },
            TAG_SLOT_WRITE_SOME | TAG_SLOT_WRITE_NULL => {
                let src = self.id("slot-write src")?;
                let slot = self.u64("slot index")?;
                let slot = u32::try_from(slot)
                    .map_err(|_| self.corrupt(format!("slot index {slot} exceeds u32")))?;
                let new = if tag == TAG_SLOT_WRITE_SOME {
                    Some(self.id("slot-write target")?)
                } else {
                    None
                };
                Event::SlotWrite {
                    src,
                    slot: SlotIdx::new(slot),
                    new,
                }
            }
            TAG_ROOT_ADD => Event::RootAdd {
                id: self.id("root-add id")?,
            },
            TAG_ROOT_REMOVE => Event::RootRemove {
                id: self.id("root-remove id")?,
            },
            TAG_PHASE => {
                let id = self.u64("phase id")?;
                let id = u16::try_from(id)
                    .map_err(|_| self.corrupt(format!("phase id {id} exceeds u16")))?;
                Event::Phase {
                    id: PhaseId::new(id),
                }
            }
            other => return Err(self.corrupt(format!("unknown event tag {other}"))),
        };
        Ok(ev)
    }
}

/// Decodes one whole event-block payload, appending the events to `out`.
///
/// The block-level invariants — non-zero count, every byte consumed —
/// are validated here, once per block, so the per-event loop carries no
/// redundant checks. `block` is the index used in corruption errors.
/// Returns the number of events decoded.
pub(crate) fn decode_event_block(
    payload: &[u8],
    block: u64,
    out: &mut Vec<Event>,
) -> Result<u64, DecodeError> {
    let mut cursor = BlockCursor {
        payload,
        pos: 0,
        prev_id: 0,
        block,
    };
    let count = cursor.u64("block event count")?;
    if count == 0 {
        return Err(cursor.corrupt("event block with zero events"));
    }
    out.reserve(count as usize);
    for _ in 0..count {
        let ev = cursor.event()?;
        out.push(ev);
    }
    if cursor.pos != payload.len() {
        return Err(cursor.corrupt(format!(
            "{} unconsumed bytes after last event of block",
            payload.len() - cursor.pos
        )));
    }
    Ok(count)
}

/// Batched tracefile reader: yields each event block as one borrowed,
/// fully validated `&[Event]` slice backed by a reusable arena.
///
/// Compared to [`crate::TraceReader`]'s one-event-at-a-time iterator,
/// a batch costs one `Result` branch per ~32 KiB block instead of one
/// per event, and the arena's capacity is reused across blocks.
///
/// ```
/// use odbgc_trace::TraceBuilder;
/// use odbgc_tracefile::{BatchReader, SliceBlocks};
///
/// let mut b = TraceBuilder::new();
/// let a = b.create_unlinked(16, 0);
/// b.access(a);
/// let trace = b.finish();
/// let bytes = odbgc_tracefile::encode(&trace);
///
/// let mut r = BatchReader::new(SliceBlocks::new(bytes.as_slice()).unwrap()).unwrap();
/// let mut events = Vec::new();
/// while let Some(batch) = r.next_batch().unwrap() {
///     events.extend_from_slice(batch);
/// }
/// assert_eq!(events, trace.events());
/// ```
pub struct BatchReader<S: BlockSource> {
    source: S,
    phase_names: Vec<String>,
    arena: Vec<Event>,
    events_read: u64,
    done: bool,
}

impl<S: BlockSource> BatchReader<S> {
    /// Opens a tracefile over `source`: reads and validates the phase
    /// table (the header was validated by the source's constructor).
    pub fn new(mut source: S) -> Result<Self, DecodeError> {
        let (kind, payload) = source.next_block()?;
        if kind != BLOCK_PHASES {
            return Err(DecodeError::Corrupt {
                block: 0,
                message: format!("expected phase-table block first, found kind {kind}"),
            });
        }
        let phase_names = decode_phase_table(payload)?;
        Ok(BatchReader {
            source,
            phase_names,
            arena: Vec::new(),
            events_read: 0,
            done: false,
        })
    }

    /// The phase-name table from the header, in id order.
    pub fn phase_names(&self) -> &[String] {
        &self.phase_names
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Blocks read so far (including the phase table and, once reading
    /// completes, the end block).
    pub fn blocks_read(&self) -> u64 {
        self.source.blocks_read()
    }

    /// Decodes the next event block, appending its events to `out`.
    /// `Ok(true)` means a block was decoded; `Ok(false)` means the end
    /// block was reached and verified. Fused: after `Ok(false)` or an
    /// error, every later call returns `Ok(false)`.
    pub(crate) fn next_into(&mut self, out: &mut Vec<Event>) -> Result<bool, DecodeError> {
        if self.done {
            return Ok(false);
        }
        let step = self.step(out);
        if !matches!(step, Ok(true)) {
            self.done = true;
        }
        step
    }

    fn step(&mut self, out: &mut Vec<Event>) -> Result<bool, DecodeError> {
        // Content errors are attributed to the *next* frame index, the
        // same convention the streaming reader has always used.
        let block = self.source.blocks_read() + 1;
        let (kind, payload) = self.source.next_block()?;
        let corrupt = |message: String| DecodeError::Corrupt { block, message };
        match kind {
            BLOCK_EVENTS => {
                let n = decode_event_block(payload, block, out)?;
                self.events_read += n;
                Ok(true)
            }
            BLOCK_END => {
                let mut pos = 0;
                let total = get_u64(payload, &mut pos)
                    .ok_or_else(|| corrupt("bad varint (total event count)".into()))?;
                if total != self.events_read {
                    return Err(corrupt(format!(
                        "end block declares {total} events but {} were present",
                        self.events_read
                    )));
                }
                self.source.expect_eof()?;
                Ok(false)
            }
            BLOCK_PHASES => Err(corrupt("duplicate phase-table block".into())),
            other => Err(corrupt(format!("unknown block kind {other}"))),
        }
    }

    /// The next decoded block as a borrowed batch, or `None` once the
    /// end block has been verified. The slice borrows the reader's
    /// arena and is invalidated by the next call.
    pub fn next_batch(&mut self) -> Result<Option<&[Event]>, DecodeError> {
        let mut arena = std::mem::take(&mut self.arena);
        arena.clear();
        let more = self.next_into(&mut arena);
        self.arena = arena;
        match more? {
            true => Ok(Some(&self.arena)),
            false => Ok(None),
        }
    }

    /// Decodes the remaining blocks straight into one contiguous event
    /// vector and finishes as a materialized [`Trace`] — the fastest
    /// whole-file decode (no intermediate copies at all).
    pub fn read_to_trace(mut self) -> Result<Trace, DecodeError> {
        let mut events = std::mem::take(&mut self.arena);
        if let Some(n) = self.source.remaining_events_hint() {
            events.reserve_exact(n as usize);
        }
        while self.next_into(&mut events)? {}
        Ok(Trace::from_parts(events, self.phase_names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_trace::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.phase("GenDB");
        let a = b.create_unlinked(128, 3);
        let c = b.create(64, vec![Some(a), None]);
        b.root_add(a);
        b.access(c);
        b.slot_write(c, SlotIdx::new(1), Some(a));
        b.phase("Reorg1");
        b.root_remove(a);
        b.finish()
    }

    fn multi_block() -> Trace {
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(16, 1);
        for _ in 0..40_000 {
            b.access(root);
        }
        b.finish()
    }

    #[test]
    fn batches_cover_the_trace_in_order() {
        let t = multi_block();
        let bytes = crate::encode(&t);
        let mut r = BatchReader::new(SliceBlocks::new(bytes.as_slice()).unwrap()).unwrap();
        let mut events = Vec::new();
        let mut batches = 0;
        while let Some(batch) = r.next_batch().unwrap() {
            assert!(!batch.is_empty(), "event blocks are never empty");
            events.extend_from_slice(batch);
            batches += 1;
        }
        assert!(batches >= 2, "40k events must span multiple blocks");
        assert_eq!(events.as_slice(), t.events());
        assert_eq!(r.events_read(), t.len() as u64);
        // Exhausted readers stay exhausted.
        assert!(r.next_batch().unwrap().is_none());
    }

    #[test]
    fn slice_and_stream_sources_agree() {
        let t = sample();
        let bytes = crate::encode(&t);
        let via_slice = BatchReader::new(SliceBlocks::new(bytes.as_slice()).unwrap())
            .unwrap()
            .read_to_trace()
            .unwrap();
        let via_stream = BatchReader::new(ReadBlocks::new(bytes.as_slice()).unwrap())
            .unwrap()
            .read_to_trace()
            .unwrap();
        assert_eq!(via_slice, t);
        assert_eq!(via_stream, t);
    }

    #[test]
    fn truncation_fuses_and_reports_the_same_error_on_both_sources() {
        let t = sample();
        let mut bytes = crate::encode(&t);
        let n = bytes.len();
        bytes.truncate(n - 3);
        let drain = |r: &mut dyn FnMut() -> Result<bool, DecodeError>| loop {
            match r() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => return Some(e),
            }
        };
        let mut sink = Vec::new();
        let mut slice = BatchReader::new(SliceBlocks::new(bytes.as_slice()).unwrap()).unwrap();
        let e1 = drain(&mut || slice.next_into(&mut sink)).expect("truncation must surface");
        let mut stream = BatchReader::new(ReadBlocks::new(bytes.as_slice()).unwrap()).unwrap();
        let e2 = drain(&mut || stream.next_into(&mut sink)).expect("truncation must surface");
        assert_eq!(format!("{e1:?}"), format!("{e2:?}"));
        // Fused after the error.
        assert!(matches!(slice.next_into(&mut sink), Ok(false)));
    }

    #[test]
    fn arena_capacity_is_reused_across_blocks() {
        let t = multi_block();
        let bytes = crate::encode(&t);
        let total = t.len();
        let mut r = BatchReader::new(SliceBlocks::new(bytes.as_slice()).unwrap()).unwrap();
        let mut largest_batch = 0;
        while let Some(batch) = r.next_batch().unwrap() {
            largest_batch = largest_batch.max(batch.len());
            // The arena holds one block, never the accumulated trace.
            assert!(
                r.arena.capacity() < total,
                "arena capacity {} grew toward the whole trace ({total} events)",
                r.arena.capacity()
            );
        }
        assert!(
            r.arena.capacity() <= 2 * largest_batch,
            "arena capacity {} should stay near the largest batch ({largest_batch})",
            r.arena.capacity()
        );
    }
}
