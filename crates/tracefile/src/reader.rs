//! Streaming tracefile decoder.

use std::io::Read;

use odbgc_trace::{Event, ObjectId, PhaseId, SlotIdx, Trace};

use crate::crc32::crc32;
use crate::error::DecodeError;
use crate::varint::{get_u64, unzigzag};
use crate::writer::{
    TAG_ACCESS, TAG_CREATE, TAG_PHASE, TAG_ROOT_ADD, TAG_ROOT_REMOVE, TAG_SLOT_WRITE_NULL,
    TAG_SLOT_WRITE_SOME,
};
use crate::{BLOCK_END, BLOCK_EVENTS, BLOCK_PHASES, FORMAT_VERSION, MAGIC, MAX_BLOCK_LEN};

/// Streaming tracefile reader: validates the header eagerly, then yields
/// events one at a time as `Iterator<Item = Result<Event, DecodeError>>`,
/// holding at most one block (~32 KiB) in memory.
///
/// The iterator is fused on error: after yielding an `Err`, it yields
/// `None` forever. A successful iteration ends only after the end block
/// has confirmed the total event count and the byte stream is exhausted.
///
/// ```
/// use odbgc_trace::TraceBuilder;
/// use odbgc_tracefile::TraceReader;
///
/// let mut b = TraceBuilder::new();
/// let a = b.create_unlinked(16, 0);
/// b.access(a);
/// let trace = b.finish();
/// let bytes = odbgc_tracefile::encode(&trace);
///
/// let reader = TraceReader::new(bytes.as_slice()).unwrap();
/// let events: Result<Vec<_>, _> = reader.collect();
/// assert_eq!(events.unwrap(), trace.events());
/// ```
pub struct TraceReader<R: Read> {
    input: R,
    phase_names: Vec<String>,
    /// Payload of the current event block.
    block: Vec<u8>,
    /// Cursor into `block`.
    pos: usize,
    /// Events remaining in the current block.
    block_remaining: u64,
    /// Delta baseline within the current block.
    prev_id: u64,
    /// Blocks read so far (phase table = block 0).
    blocks_read: u64,
    /// Events yielded so far.
    events_read: u64,
    /// Bytes consumed from `input` so far.
    offset: u64,
    /// Terminal state: end block verified (`Ok`) or error yielded.
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a tracefile: reads and validates the magic, version, and
    /// phase table. Fails fast with a typed error on foreign or
    /// future-version files.
    pub fn new(mut input: R) -> Result<Self, DecodeError> {
        let mut offset = 0u64;
        // Magic first, version second: a 4-byte foreign file is "not a
        // tracefile", not "a truncated tracefile".
        let mut magic = [0u8; 4];
        read_exact_at(&mut input, &mut magic, &mut offset, "magic")?;
        if magic != MAGIC {
            return Err(DecodeError::BadMagic { found: magic });
        }
        let mut rest = [0u8; 4];
        read_exact_at(&mut input, &mut rest, &mut offset, "version header")?;
        let version = u16::from_le_bytes([rest[0], rest[1]]);
        if version > FORMAT_VERSION {
            return Err(DecodeError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let (kind, payload) = read_block(&mut input, &mut offset, 0)?;
        if kind != BLOCK_PHASES {
            return Err(DecodeError::Corrupt {
                block: 0,
                message: format!("expected phase-table block first, found kind {kind}"),
            });
        }
        let phase_names = decode_phase_table(&payload)?;
        Ok(TraceReader {
            input,
            phase_names,
            block: Vec::new(),
            pos: 0,
            block_remaining: 0,
            prev_id: 0,
            blocks_read: 1,
            events_read: 0,
            offset,
            done: false,
        })
    }

    /// The phase-name table from the header, in id order.
    pub fn phase_names(&self) -> &[String] {
        &self.phase_names
    }

    /// Events successfully decoded so far.
    pub fn events_read(&self) -> u64 {
        self.events_read
    }

    /// Blocks successfully read so far (including the phase table and,
    /// once iteration completes, the end block).
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// A [`DecodeError::Corrupt`] at the current block.
    fn corrupt(&self, message: impl Into<String>) -> DecodeError {
        DecodeError::Corrupt {
            block: self.blocks_read,
            message: message.into(),
        }
    }

    /// Reads a varint from the current block.
    fn block_u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        get_u64(&self.block, &mut self.pos)
            .ok_or_else(|| self.corrupt(format!("bad varint ({what})")))
    }

    /// Decodes a delta-coded object id from the current block.
    fn block_id(&mut self, what: &str) -> Result<ObjectId, DecodeError> {
        let z = self.block_u64(what)?;
        let id = self.prev_id.wrapping_add(unzigzag(z) as u64);
        self.prev_id = id;
        Ok(ObjectId::new(id))
    }

    /// Loads the next block; `Ok(true)` means an event block is current,
    /// `Ok(false)` means the end block was reached and verified.
    fn load_next_block(&mut self) -> Result<bool, DecodeError> {
        let (kind, payload) = read_block(&mut self.input, &mut self.offset, self.blocks_read)?;
        self.blocks_read += 1;
        match kind {
            BLOCK_EVENTS => {
                self.block = payload;
                self.pos = 0;
                self.prev_id = 0;
                self.block_remaining = self.block_u64("block event count")?;
                if self.block_remaining == 0 {
                    return Err(self.corrupt("event block with zero events"));
                }
                Ok(true)
            }
            BLOCK_END => {
                let mut pos = 0;
                let total = get_u64(&payload, &mut pos)
                    .ok_or_else(|| self.corrupt("bad varint (total event count)"))?;
                if total != self.events_read {
                    return Err(self.corrupt(format!(
                        "end block declares {total} events but {} were present",
                        self.events_read
                    )));
                }
                // Nothing may follow the end block.
                let mut probe = [0u8; 1];
                match self.input.read(&mut probe) {
                    Ok(0) => Ok(false),
                    Ok(_) => Err(self.corrupt("trailing bytes after end block")),
                    Err(e) => Err(DecodeError::Io(e)),
                }
            }
            BLOCK_PHASES => Err(self.corrupt("duplicate phase-table block")),
            other => Err(self.corrupt(format!("unknown block kind {other}"))),
        }
    }

    /// Decodes the next event from the current block.
    fn decode_event(&mut self) -> Result<Event, DecodeError> {
        let tag = *self
            .block
            .get(self.pos)
            .ok_or_else(|| self.corrupt("event runs past block payload"))?;
        self.pos += 1;
        let ev = match tag {
            TAG_CREATE => {
                let id = self.block_id("create id")?;
                let size = self.block_u64("create size")?;
                let size = u32::try_from(size)
                    .map_err(|_| self.corrupt(format!("create size {size} exceeds u32")))?;
                let n = self.block_u64("create slot count")?;
                let n = usize::try_from(n)
                    .ok()
                    .filter(|&n| n <= self.block.len() * 8)
                    .ok_or_else(|| self.corrupt(format!("implausible slot count {n}")))?;
                let bitmap_len = n.div_ceil(8);
                let bitmap_end = self
                    .pos
                    .checked_add(bitmap_len)
                    .filter(|&e| e <= self.block.len())
                    .ok_or_else(|| self.corrupt("slot bitmap runs past block payload"))?;
                let bitmap = self.block[self.pos..bitmap_end].to_vec();
                self.pos = bitmap_end;
                let mut slots = Vec::with_capacity(n);
                for i in 0..n {
                    if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                        slots.push(Some(self.block_id("create slot target")?));
                    } else {
                        slots.push(None);
                    }
                }
                Event::Create {
                    id,
                    size,
                    slots: slots.into_boxed_slice(),
                }
            }
            TAG_ACCESS => Event::Access {
                id: self.block_id("access id")?,
            },
            TAG_SLOT_WRITE_SOME | TAG_SLOT_WRITE_NULL => {
                let src = self.block_id("slot-write src")?;
                let slot = self.block_u64("slot index")?;
                let slot = u32::try_from(slot)
                    .map_err(|_| self.corrupt(format!("slot index {slot} exceeds u32")))?;
                let new = if tag == TAG_SLOT_WRITE_SOME {
                    Some(self.block_id("slot-write target")?)
                } else {
                    None
                };
                Event::SlotWrite {
                    src,
                    slot: SlotIdx::new(slot),
                    new,
                }
            }
            TAG_ROOT_ADD => Event::RootAdd {
                id: self.block_id("root-add id")?,
            },
            TAG_ROOT_REMOVE => Event::RootRemove {
                id: self.block_id("root-remove id")?,
            },
            TAG_PHASE => {
                let id = self.block_u64("phase id")?;
                let id = u16::try_from(id)
                    .map_err(|_| self.corrupt(format!("phase id {id} exceeds u16")))?;
                Event::Phase {
                    id: PhaseId::new(id),
                }
            }
            other => return Err(self.corrupt(format!("unknown event tag {other}"))),
        };
        Ok(ev)
    }

    /// The iterator body, with `?` ergonomics.
    fn try_next(&mut self) -> Result<Option<Event>, DecodeError> {
        if self.block_remaining == 0 {
            // Between blocks the cursor must sit exactly at the payload
            // end; leftover bytes mean the count and the data disagree.
            if self.pos != self.block.len() {
                return Err(self.corrupt(format!(
                    "{} unconsumed bytes after last event of block",
                    self.block.len() - self.pos
                )));
            }
            if !self.load_next_block()? {
                return Ok(None);
            }
        }
        let ev = self.decode_event()?;
        self.block_remaining -= 1;
        self.events_read += 1;
        Ok(Some(ev))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Event, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.try_next() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads exactly `buf.len()` bytes, reporting a typed truncation error
/// (with the stream offset) when the input ends early.
fn read_exact_at<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    offset: &mut u64,
    expected: &'static str,
) -> Result<(), DecodeError> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(DecodeError::Truncated {
                    offset: *offset + filled as u64,
                    expected,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(DecodeError::Io(e)),
        }
    }
    *offset += buf.len() as u64;
    Ok(())
}

/// Reads one block: kind byte, length, payload, and CRC — verifying the
/// checksum before handing the payload back.
fn read_block<R: Read>(
    input: &mut R,
    offset: &mut u64,
    block_index: u64,
) -> Result<(u8, Vec<u8>), DecodeError> {
    let mut head = [0u8; 5];
    read_exact_at(input, &mut head, offset, "block header")?;
    let kind = head[0];
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]);
    if len > MAX_BLOCK_LEN {
        return Err(DecodeError::Corrupt {
            block: block_index,
            message: format!("block length {len} exceeds the {MAX_BLOCK_LEN}-byte cap"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_at(input, &mut payload, offset, "block payload")?;
    let mut stored = [0u8; 4];
    read_exact_at(input, &mut stored, offset, "block checksum")?;
    let stored = u32::from_le_bytes(stored);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch {
            block: block_index,
            stored,
            computed,
        });
    }
    Ok((kind, payload))
}

/// Decodes the phase-table payload.
fn decode_phase_table(payload: &[u8]) -> Result<Vec<String>, DecodeError> {
    let corrupt = |message: String| DecodeError::Corrupt { block: 0, message };
    let mut pos = 0;
    let count =
        get_u64(payload, &mut pos).ok_or_else(|| corrupt("bad varint (phase count)".into()))?;
    let count = usize::try_from(count)
        .ok()
        .filter(|&c| c <= usize::from(u16::MAX))
        .ok_or_else(|| corrupt(format!("implausible phase count {count}")))?;
    let mut names = Vec::with_capacity(count);
    for i in 0..count {
        let len = get_u64(payload, &mut pos)
            .ok_or_else(|| corrupt(format!("bad varint (phase {i} name length)")))?;
        let end = usize::try_from(len)
            .ok()
            .and_then(|l| pos.checked_add(l))
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| corrupt(format!("phase {i} name runs past the table")))?;
        let name = std::str::from_utf8(&payload[pos..end])
            .map_err(|_| corrupt(format!("phase {i} name is not UTF-8")))?;
        names.push(name.to_owned());
        pos = end;
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes after phase table".into()));
    }
    Ok(names)
}

/// Decodes a whole tracefile into a fully materialized [`Trace`].
pub fn read_trace<R: Read>(input: R) -> Result<Trace, DecodeError> {
    let mut reader = TraceReader::new(input)?;
    let mut events = Vec::new();
    for ev in reader.by_ref() {
        events.push(ev?);
    }
    let phase_names = std::mem::take(&mut reader.phase_names);
    Ok(Trace::from_parts(events, phase_names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_trace::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.phase("GenDB");
        let a = b.create_unlinked(128, 3);
        let c = b.create(64, vec![Some(a), None]);
        b.root_add(a);
        b.access(c);
        b.slot_write(c, SlotIdx::new(1), Some(a));
        b.phase("Reorg1");
        b.root_remove(a);
        b.finish()
    }

    #[test]
    fn streaming_iteration_matches_trace() {
        let t = sample();
        let bytes = crate::encode(&t);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.phase_names(), t.phase_names());
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(events.as_slice(), t.events());
        assert_eq!(r.events_read(), t.len() as u64);
        // Phase table + one event block + end block.
        assert_eq!(r.blocks_read(), 3);
        // Exhausted iterators stay exhausted.
        assert!(r.next().is_none());
    }

    #[test]
    fn extreme_ids_round_trip() {
        // Wrapping deltas must survive ids at both ends of u64.
        let mut b = TraceBuilder::new();
        b.access(ObjectId::new(u64::MAX));
        b.access(ObjectId::new(0));
        b.access(ObjectId::new(u64::MAX / 2));
        b.slot_write(
            ObjectId::new(u64::MAX),
            SlotIdx::new(u32::MAX),
            Some(ObjectId::new(1)),
        );
        let t = b.finish();
        assert_eq!(crate::decode(&crate::encode(&t)).unwrap(), t);
    }

    #[test]
    fn error_fuses_the_iterator() {
        let t = sample();
        let mut bytes = crate::encode(&t);
        let n = bytes.len();
        bytes.truncate(n - 3);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let results: Vec<_> = r.by_ref().collect();
        assert!(results.last().unwrap().is_err(), "truncation must surface");
        assert!(r.next().is_none(), "iterator must fuse after the error");
    }

    #[test]
    fn read_trace_round_trips() {
        let t = sample();
        assert_eq!(read_trace(crate::encode(&t).as_slice()).unwrap(), t);
    }
}
