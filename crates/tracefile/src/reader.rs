//! Streaming tracefile decoder.

use std::io::Read;

use odbgc_trace::{Event, Trace};

use crate::batch::{BatchReader, ReadBlocks};
use crate::error::DecodeError;

/// Streaming tracefile reader: validates the header eagerly, then yields
/// events one at a time as `Iterator<Item = Result<Event, DecodeError>>`,
/// holding at most one block (~32 KiB) in memory.
///
/// Internally each block is validated and decoded in one shot through
/// the shared batch decoder ([`BatchReader`]) — the CRC, the event
/// count, and exact payload consumption are checked once per block, and
/// both the raw-byte scratch buffer and the decoded-event arena are
/// reused across blocks, so a whole-file scan performs O(blocks
/// decoded), not O(events), allocations.
///
/// The iterator is fused on error: after yielding an `Err`, it yields
/// `None` forever. A successful iteration ends only after the end block
/// has confirmed the total event count and the byte stream is exhausted.
///
/// ```
/// use odbgc_trace::TraceBuilder;
/// use odbgc_tracefile::TraceReader;
///
/// let mut b = TraceBuilder::new();
/// let a = b.create_unlinked(16, 0);
/// b.access(a);
/// let trace = b.finish();
/// let bytes = odbgc_tracefile::encode(&trace);
///
/// let reader = TraceReader::new(bytes.as_slice()).unwrap();
/// let events: Result<Vec<_>, _> = reader.collect();
/// assert_eq!(events.unwrap(), trace.events());
/// ```
pub struct TraceReader<R: Read> {
    inner: BatchReader<ReadBlocks<R>>,
    /// Decoded events of the current block in *reverse* order, so each
    /// `next()` is a capacity-preserving `pop` from the back.
    pending: Vec<Event>,
    /// Events yielded so far.
    yielded: u64,
    /// Terminal state: end block verified (`Ok`) or error yielded.
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a tracefile: reads and validates the magic, version, and
    /// phase table. Fails fast with a typed error on foreign or
    /// future-version files.
    pub fn new(input: R) -> Result<Self, DecodeError> {
        Ok(TraceReader {
            inner: BatchReader::new(ReadBlocks::new(input)?)?,
            pending: Vec::new(),
            yielded: 0,
            done: false,
        })
    }

    /// The phase-name table from the header, in id order.
    pub fn phase_names(&self) -> &[String] {
        self.inner.phase_names()
    }

    /// Events successfully yielded so far.
    pub fn events_read(&self) -> u64 {
        self.yielded
    }

    /// Blocks successfully read so far (including the phase table and,
    /// once iteration completes, the end block).
    pub fn blocks_read(&self) -> u64 {
        self.inner.blocks_read()
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Event, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(ev) = self.pending.pop() {
            self.yielded += 1;
            return Some(Ok(ev));
        }
        match self.inner.next_into(&mut self.pending) {
            Ok(true) => {
                // Reverse once per block so per-event yielding is a pop.
                self.pending.reverse();
                let ev = self.pending.pop().expect("event blocks are never empty");
                self.yielded += 1;
                Some(Ok(ev))
            }
            Ok(false) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Decodes a whole tracefile into a fully materialized [`Trace`],
/// appending straight into one contiguous event vector (no per-block
/// copies).
pub fn read_trace<R: Read>(input: R) -> Result<Trace, DecodeError> {
    BatchReader::new(ReadBlocks::new(input)?)?.read_to_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_trace::{ObjectId, SlotIdx, TraceBuilder};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        b.phase("GenDB");
        let a = b.create_unlinked(128, 3);
        let c = b.create(64, vec![Some(a), None]);
        b.root_add(a);
        b.access(c);
        b.slot_write(c, SlotIdx::new(1), Some(a));
        b.phase("Reorg1");
        b.root_remove(a);
        b.finish()
    }

    #[test]
    fn streaming_iteration_matches_trace() {
        let t = sample();
        let bytes = crate::encode(&t);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.phase_names(), t.phase_names());
        let events: Vec<Event> = r.by_ref().map(|e| e.unwrap()).collect();
        assert_eq!(events.as_slice(), t.events());
        assert_eq!(r.events_read(), t.len() as u64);
        // Phase table + one event block + end block.
        assert_eq!(r.blocks_read(), 3);
        // Exhausted iterators stay exhausted.
        assert!(r.next().is_none());
    }

    #[test]
    fn extreme_ids_round_trip() {
        // Wrapping deltas must survive ids at both ends of u64.
        let mut b = TraceBuilder::new();
        b.access(ObjectId::new(u64::MAX));
        b.access(ObjectId::new(0));
        b.access(ObjectId::new(u64::MAX / 2));
        b.slot_write(
            ObjectId::new(u64::MAX),
            SlotIdx::new(u32::MAX),
            Some(ObjectId::new(1)),
        );
        let t = b.finish();
        assert_eq!(crate::decode(&crate::encode(&t)).unwrap(), t);
    }

    #[test]
    fn error_fuses_the_iterator() {
        let t = sample();
        let mut bytes = crate::encode(&t);
        let n = bytes.len();
        bytes.truncate(n - 3);
        let mut r = TraceReader::new(bytes.as_slice()).unwrap();
        let results: Vec<_> = r.by_ref().collect();
        assert!(results.last().unwrap().is_err(), "truncation must surface");
        assert!(r.next().is_none(), "iterator must fuse after the error");
    }

    #[test]
    fn read_trace_round_trips() {
        let t = sample();
        assert_eq!(read_trace(crate::encode(&t).as_slice()).unwrap(), t);
    }
}
