//! On-disk binary trace corpus: compact tracefile format, streaming
//! replay, and a persistent cross-process trace cache.
//!
//! The text codec in `odbgc-trace` is the diffable, human-readable
//! interchange form; this crate is the *storage* form. A tracefile is a
//! versioned binary container designed for three properties the text
//! format cannot give:
//!
//! * **Compactness.** Events are varint/delta-encoded against the
//!   previously seen object id, so the dense, locality-heavy id streams
//!   produced by OO7 generation shrink to a fraction of their text size.
//! * **Streaming.** [`TraceWriter`] encodes events as they arrive and
//!   [`TraceReader`] decodes them block by block, so neither side ever
//!   holds a whole trace in memory — peak memory is one block (~32 KiB),
//!   not O(trace).
//! * **Verifiability.** Every block is length-prefixed and CRC32-
//!   checksummed; truncation, bit flips, foreign files, and
//!   future-version files are all detected and reported as distinct
//!   typed [`DecodeError`]s, never panics.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! file    := magic version flags block*
//! magic   := "OTBF"                     (4 bytes)
//! version := u16 LE                     (currently 1)
//! flags   := u16 LE                     (reserved, 0)
//! block   := kind:u8 len:u32-LE payload[len] crc:u32-LE
//! ```
//!
//! The CRC is IEEE CRC32 over the payload bytes. Block kinds: `1` — the
//! phase table (exactly one, always first: varint count, then
//! varint-length-prefixed UTF-8 names); `2` — an event block (varint
//! event count, then events); `3` — the end block (varint total event
//! count, exactly one, always last). A file whose byte stream ends
//! before the end block is *truncated*, even if it ends on a block
//! boundary.
//!
//! Within an event block, object ids are encoded as zigzag varints of
//! the wrapping difference from the previously encoded id; the delta
//! state resets at each block boundary so blocks decode independently.
//! See [`writer`] for the per-event layouts.
//!
//! On top of the format, [`TraceCorpus`] is a directory of tracefiles
//! keyed by (workload, seed) with atomic temp-file + rename fills: a
//! persistent, cross-process second cache tier behind the in-memory
//! per-plan trace cache.

#![warn(missing_docs)]

pub mod batch;
pub mod corpus;
pub mod crc32;
pub mod error;
pub mod mmap;
pub mod reader;
pub mod varint;
pub mod writer;

pub use batch::{BatchReader, BlockSource, ReadBlocks, SliceBlocks};
pub use corpus::{CorpusKey, CorpusStats, TraceCorpus};
pub use error::DecodeError;
pub use mmap::TraceData;
pub use reader::{read_trace, TraceReader};
pub use writer::{write_trace, TraceWriter};

use std::path::Path;

use odbgc_trace::Trace;

/// The four magic bytes opening every tracefile.
pub const MAGIC: [u8; 4] = *b"OTBF";

/// The current (and only) format version this crate writes.
pub const FORMAT_VERSION: u16 = 1;

/// Block kind: the phase-name table (exactly one, first).
pub(crate) const BLOCK_PHASES: u8 = 1;
/// Block kind: a run of events.
pub(crate) const BLOCK_EVENTS: u8 = 2;
/// Block kind: the end marker carrying the total event count.
pub(crate) const BLOCK_END: u8 = 3;

/// Target payload size at which the writer seals an event block.
pub(crate) const BLOCK_TARGET_BYTES: usize = 32 * 1024;

/// Upper bound on a declared block length; a corrupted length field must
/// not provoke an absurd allocation.
pub(crate) const MAX_BLOCK_LEN: u32 = 16 * 1024 * 1024;

/// True when `prefix` starts with the tracefile magic — used to sniff
/// binary vs. text trace files.
pub fn is_binary(prefix: &[u8]) -> bool {
    prefix.len() >= MAGIC.len() && prefix[..MAGIC.len()] == MAGIC
}

/// Encodes a whole trace to an in-memory tracefile.
pub fn encode(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(trace.len() * 4 + 64);
    write_trace(&mut out, trace).expect("writing to a Vec cannot fail");
    out
}

/// Decodes an in-memory tracefile into a fully materialized trace.
///
/// This is the zero-copy path: blocks are CRC-verified and decoded
/// straight out of `bytes` with no intermediate payload copies.
pub fn decode(bytes: &[u8]) -> Result<Trace, DecodeError> {
    BatchReader::new(SliceBlocks::new(bytes)?)?.read_to_trace()
}

/// A batched reader over a whole-file backing ([`TraceData`]: mmap when
/// possible, owned bytes otherwise).
pub type FileBatches = BatchReader<SliceBlocks<TraceData>>;

/// Opens a tracefile on disk for zero-copy batched reading, preferring
/// a read-only memory map and falling back to reading the whole file
/// into memory (see [`mmap`] for when).
pub fn open_batches(path: &Path) -> Result<FileBatches, DecodeError> {
    let data = TraceData::open(path)?;
    BatchReader::new(SliceBlocks::new(data)?)
}

/// Like [`open_batches`], but never maps: the file is read into an
/// owned buffer. For callers that cannot rule out in-place writers.
pub fn open_batches_buffered(path: &Path) -> Result<FileBatches, DecodeError> {
    let data = TraceData::open_buffered(path)?;
    BatchReader::new(SliceBlocks::new(data)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_trace::{SlotIdx, TraceBuilder};

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.phase("GenDB");
        let a = b.create_unlinked(128, 3);
        let c = b.create(64, vec![Some(a), None]);
        b.root_add(a);
        b.access(c);
        b.slot_write(c, SlotIdx::new(1), Some(a));
        b.slot_clear(c, SlotIdx::new(0));
        b.phase("Reorg1");
        b.root_remove(a);
        b.finish()
    }

    #[test]
    fn round_trip() {
        let t = sample_trace();
        let bytes = encode(&t);
        assert!(is_binary(&bytes));
        assert_eq!(decode(&bytes).expect("decode"), t);
    }

    #[test]
    fn round_trip_empty() {
        let t = Trace::default();
        assert_eq!(decode(&encode(&t)).expect("decode"), t);
    }

    #[test]
    fn text_is_not_binary() {
        assert!(!is_binary(b"odbgc-trace v1\n"));
        assert!(!is_binary(b""));
        assert!(!is_binary(b"OTB"));
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let t = sample_trace();
        let binary = encode(&t).len();
        let text = odbgc_trace::codec::encode(&t).len();
        assert!(
            binary < text,
            "binary {binary} B should beat text {text} B even on a toy trace"
        );
    }
}
