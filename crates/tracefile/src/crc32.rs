//! IEEE CRC32, vendored: the workspace builds without crates.io, so the
//! checksum is implemented here (reflected polynomial `0xEDB88320`, the
//! same parameterization as zlib/`crc32fast`).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables, computed at compile time. `TABLES[0]` is
/// the classic byte-at-a-time table; `TABLES[k]` advances a byte's
/// contribution `k` further positions, letting the hot loop fold eight
/// input bytes per iteration instead of one.
const TABLES: [[u32; 256]; 8] = make_tables();

const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// A streaming CRC32 accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum (slicing-by-8: eight bytes per
    /// table round in the main loop, byte-at-a-time for the tail).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// CRC32 of a byte slice in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values (zlib-compatible).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"hello, tracefile world";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sliced_loop_matches_byte_at_a_time_for_every_length() {
        // Reference: the classic one-byte-per-round recurrence.
        let reference = |bytes: &[u8]| {
            let mut state: u32 = !0;
            for &b in bytes {
                state = (state >> 8) ^ TABLES[0][((state ^ u32::from(b)) & 0xFF) as usize];
            }
            !state
        };
        let data: Vec<u8> = (0..256u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "length {len}");
        }
        // Split points exercise carried state across the 8-byte loop.
        for split in [0, 1, 3, 7, 8, 9, 64] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), reference(&data), "split {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x10;
            assert_ne!(crc32(&data), base, "flip at byte {i} went undetected");
            data[i] ^= 0x10;
        }
    }
}
