//! IEEE CRC32, vendored: the workspace builds without crates.io, so the
//! checksum is implemented here (reflected polynomial `0xEDB88320`, the
//! same parameterization as zlib/`crc32fast`).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = make_table();

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// A streaming CRC32 accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ u32::from(b)) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[idx as usize];
        }
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// CRC32 of a byte slice in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values (zlib-compatible).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"hello, tracefile world";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x10;
            assert_ne!(crc32(&data), base, "flip at byte {i} went undetected");
            data[i] ^= 0x10;
        }
    }
}
