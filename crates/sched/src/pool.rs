//! The worker pool: bucket execution with work-stealing deques.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::packet::{Packet, PacketMut};
use crate::stats::{BucketStats, WorkerLoad};

/// A pool of collector workers executing packet buckets.
///
/// The scheduler holds no threads between buckets: each read-only
/// bucket spins up a scoped crew, drains, and joins, so a `Scheduler`
/// is plain data (cheap to own per collector, trivially `Send`).
/// Buckets small enough for one worker — and every bucket at
/// `workers == 1` — run inline on the caller's thread with no spawns
/// at all, which keeps the default single-worker configuration on
/// exactly the code path a sequential collector would take.
#[derive(Debug, Clone)]
pub struct Scheduler {
    workers: usize,
}

impl Scheduler {
    /// A pool of `workers` collector workers (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Scheduler {
            workers: workers.max(1),
        }
    }

    /// Configured pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drains one read-only bucket: every packet in `packets` runs
    /// exactly once against `ctx`, then the call returns. With more
    /// than one worker and more than one packet, packets are dealt
    /// round-robin onto per-worker deques; an idle worker pops its own
    /// deque front-first and steals from siblings back-first.
    ///
    /// On return the packets hold their results in their original slice
    /// positions — execution order never reorders them, so a caller
    /// folding `packets` front to back gets the canonical reduction.
    pub fn run_bucket<C, P>(&self, label: &'static str, ctx: &C, packets: &mut [P]) -> BucketStats
    where
        C: Sync,
        P: Packet<C>,
    {
        let n = packets.len();
        let crew = self.workers.min(n).max(1);
        if crew == 1 {
            let start = Instant::now();
            for p in packets.iter_mut() {
                p.run(ctx);
            }
            return BucketStats {
                label,
                packets: n as u64,
                workers: vec![WorkerLoad {
                    executed: n as u64,
                    steals: 0,
                    busy_ns: start.elapsed().as_nanos() as u64,
                }],
            };
        }

        // Packet slots: a worker takes the `&mut P` out to run it; the
        // packet itself never moves, so results stay in `packets`.
        let slots: Vec<Mutex<Option<&mut P>>> =
            packets.iter_mut().map(|p| Mutex::new(Some(p))).collect();
        // Round-robin deal: worker `w` owns packet indexes w, w+crew, …
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..crew)
            .map(|w| Mutex::new((w..n).step_by(crew).collect()))
            .collect();

        let workers = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..crew)
                .map(|w| {
                    let slots = &slots;
                    let queues = &queues;
                    scope.spawn(move || {
                        let start = Instant::now();
                        let mut load = WorkerLoad::default();
                        loop {
                            // Own deque first (front), then steal from
                            // siblings (back) — the classic Chase-Lev
                            // discipline, here with mutexed deques.
                            let mut next = queues[w].lock().expect("gc deque").pop_front();
                            if next.is_none() {
                                for off in 1..crew {
                                    let v = (w + off) % crew;
                                    if let Some(i) = queues[v].lock().expect("gc deque").pop_back()
                                    {
                                        load.steals += 1;
                                        next = Some(i);
                                        break;
                                    }
                                }
                            }
                            let Some(i) = next else { break };
                            if let Some(pkt) = slots[i].lock().expect("gc packet slot").take() {
                                pkt.run(ctx);
                                load.executed += 1;
                            }
                        }
                        load.busy_ns = start.elapsed().as_nanos() as u64;
                        load
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gc worker panicked"))
                .collect::<Vec<_>>()
        });

        debug_assert_eq!(
            workers.iter().map(|w| w.executed).sum::<u64>(),
            n as u64,
            "bucket drained every packet exactly once"
        );
        BucketStats {
            label,
            packets: n as u64,
            workers,
        }
    }

    /// Drains one mutating bucket: packets run sequentially on the
    /// calling thread, in index order, each with exclusive access to
    /// `ctx`. Mutation order is therefore canonical by construction —
    /// this is the coordinator half of the determinism argument.
    pub fn run_bucket_mut<C, P>(
        &self,
        label: &'static str,
        ctx: &mut C,
        packets: &mut [P],
    ) -> BucketStats
    where
        P: PacketMut<C>,
    {
        let start = Instant::now();
        for p in packets.iter_mut() {
            p.run(ctx);
        }
        BucketStats {
            label,
            packets: packets.len() as u64,
            workers: vec![WorkerLoad {
                executed: packets.len() as u64,
                steals: 0,
                busy_ns: start.elapsed().as_nanos() as u64,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sums a slice range; result lands in the packet.
    struct SumChunk<'a> {
        input: &'a [u64],
        total: u64,
    }

    impl Packet<()> for SumChunk<'_> {
        fn run(&mut self, _ctx: &()) {
            self.total = self.input.iter().sum();
        }
    }

    fn chunk_packets(data: &[u64], chunk: usize) -> Vec<SumChunk<'_>> {
        data.chunks(chunk)
            .map(|input| SumChunk { input, total: 0 })
            .collect()
    }

    #[test]
    fn bucket_reduction_is_worker_count_invariant() {
        let data: Vec<u64> = (0..10_000).collect();
        let mut reference: Option<Vec<u64>> = None;
        for workers in [1usize, 2, 4, 8] {
            let sched = Scheduler::new(workers);
            let mut packets = chunk_packets(&data, 97);
            let stats = sched.run_bucket("sum", &(), &mut packets);
            assert_eq!(stats.packets as usize, packets.len());
            let totals: Vec<u64> = packets.iter().map(|p| p.total).collect();
            match &reference {
                None => reference = Some(totals),
                Some(r) => assert_eq!(r, &totals, "workers={workers} changed the reduction"),
            }
        }
    }

    #[test]
    fn single_packet_bucket_runs_inline() {
        let sched = Scheduler::new(8);
        let data = [1u64, 2, 3];
        let mut packets = chunk_packets(&data, 3);
        let stats = sched.run_bucket("sum", &(), &mut packets);
        assert_eq!(stats.workers.len(), 1, "one packet needs no crew");
        assert_eq!(stats.steals(), 0);
        assert_eq!(packets[0].total, 6);
    }

    struct AppendMut(u64);

    impl PacketMut<Vec<u64>> for AppendMut {
        fn run(&mut self, ctx: &mut Vec<u64>) {
            ctx.push(self.0);
        }
    }

    #[test]
    fn mutable_bucket_preserves_packet_order() {
        let sched = Scheduler::new(8);
        let mut log = Vec::new();
        let mut packets: Vec<AppendMut> = (0..16).map(AppendMut).collect();
        let stats = sched.run_bucket_mut("finalize", &mut log, &mut packets);
        assert_eq!(log, (0..16).collect::<Vec<u64>>());
        assert_eq!(stats.packets, 16);
    }

    #[test]
    fn zero_worker_request_clamps_to_one() {
        assert_eq!(Scheduler::new(0).workers(), 1);
    }

    #[test]
    fn empty_bucket_is_a_noop() {
        let sched = Scheduler::new(4);
        let mut packets: Vec<SumChunk<'_>> = Vec::new();
        let stats = sched.run_bucket("sum", &(), &mut packets);
        assert_eq!(stats.packets, 0);
    }
}
