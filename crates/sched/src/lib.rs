//! Work-packet GC scheduler.
//!
//! Collection work is expressed as typed *packets* — self-contained
//! units that read a shared context and write only into themselves —
//! grouped into *buckets* that execute in stage order: a bucket opens
//! only when its predecessor has drained (the mmtk-core scheduler
//! discipline). Within a bucket, packets run on a pool of collector
//! workers with work-stealing deques; across buckets, the caller merges
//! per-packet results in packet-index order.
//!
//! Determinism is the hard constraint, and the division of labor that
//! guarantees it is baked into the two packet traits:
//!
//! * [`Packet`] (read-only context) — runs *concurrently*. Packets may
//!   race only on who executes first, never on data: each packet owns
//!   its output, so the set of per-packet results is a pure function of
//!   the inputs, whatever the worker count or steal schedule.
//! * [`PacketMut`] (mutable context) — runs *sequentially on the
//!   caller's thread*, in packet-index order. Store mutation is
//!   coordinator work; its order is fixed by construction.
//!
//! The caller then performs the *deterministic reduction*: iterate the
//! bucket's packets in index order and fold their outputs. Because
//! packet outputs are schedule-independent and the fold order is
//! canonical, the reduction — survivor sets, I/O counters, garbage
//! tallies — is byte-identical at any worker count.
//!
//! What *does* vary run to run (worker busy times, steal counts, packet
//! placement) is surfaced separately as [`BucketStats`] /
//! [`SchedStats`], which callers must treat as volatile telemetry.

#![warn(missing_docs)]

pub mod packet;
pub mod pool;
pub mod stats;

pub use packet::{Packet, PacketMut};
pub use pool::Scheduler;
pub use stats::{BucketStats, SchedStats, SchedTotals, WorkerLoad};
