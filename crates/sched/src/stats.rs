//! Scheduler execution statistics.
//!
//! Everything in this module describes *how* a collection was executed
//! — worker busy times, steal counts, packet placement — never *what*
//! it computed. The numbers vary run to run and with the worker count,
//! so consumers must keep them out of deterministic output (the
//! simulator's telemetry files them under volatile `sched_` keys, which
//! `strip_volatile` removes).

/// What one worker did during one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Packets this worker executed.
    pub executed: u64,
    /// Packets this worker stole from a sibling's deque.
    pub steals: u64,
    /// Wall time the worker spent inside the bucket, nanoseconds.
    pub busy_ns: u64,
}

/// Execution record of one drained bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketStats {
    /// The bucket's stage label (e.g. `"trace"`).
    pub label: &'static str,
    /// Packets the bucket held.
    pub packets: u64,
    /// Per-worker loads, indexed by worker. Length is the number of
    /// workers that participated (1 for inline and mutable buckets).
    pub workers: Vec<WorkerLoad>,
}

impl BucketStats {
    /// Total steals across workers.
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total busy nanoseconds across workers.
    pub fn busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }
}

/// Execution record of one collection: every bucket it drained, in
/// stage order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Configured worker-pool size (buckets may use fewer).
    pub workers: usize,
    /// Drained buckets in execution order.
    pub buckets: Vec<BucketStats>,
}

impl SchedStats {
    /// An empty record for a pool of `workers`.
    pub fn new(workers: usize) -> Self {
        SchedStats {
            workers,
            buckets: Vec::new(),
        }
    }

    /// Appends one drained bucket.
    pub fn push(&mut self, bucket: BucketStats) {
        self.buckets.push(bucket);
    }

    /// Total packets executed.
    pub fn packets(&self) -> u64 {
        self.buckets.iter().map(|b| b.packets).sum()
    }

    /// Total steals.
    pub fn steals(&self) -> u64 {
        self.buckets.iter().map(BucketStats::steals).sum()
    }

    /// Total busy nanoseconds across buckets and workers.
    pub fn busy_ns(&self) -> u64 {
        self.buckets.iter().map(BucketStats::busy_ns).sum()
    }

    /// Busy nanoseconds summed per worker index across buckets. Length
    /// is the configured pool size; workers a bucket did not use
    /// contribute zero.
    pub fn per_worker_busy_ns(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.workers.max(1)];
        for b in &self.buckets {
            for (i, w) in b.workers.iter().enumerate() {
                if let Some(slot) = out.get_mut(i) {
                    *slot += w.busy_ns;
                }
            }
        }
        out
    }
}

/// Running totals across collections — what `odbgc serve-bench` reports
/// as GC-worker utilization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedTotals {
    /// Collections absorbed.
    pub collections: u64,
    /// Packets executed.
    pub packets: u64,
    /// Packets stolen.
    pub steals: u64,
    /// Busy nanoseconds across all workers.
    pub busy_ns: u64,
}

impl SchedTotals {
    /// Folds one collection's record into the totals.
    pub fn absorb(&mut self, stats: &SchedStats) {
        self.collections += 1;
        self.packets += stats.packets();
        self.steals += stats.steals();
        self.busy_ns += stats.busy_ns();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(label: &'static str, packets: u64, loads: &[(u64, u64, u64)]) -> BucketStats {
        BucketStats {
            label,
            packets,
            workers: loads
                .iter()
                .map(|&(executed, steals, busy_ns)| WorkerLoad {
                    executed,
                    steals,
                    busy_ns,
                })
                .collect(),
        }
    }

    #[test]
    fn stats_aggregate_across_buckets_and_workers() {
        let mut s = SchedStats::new(2);
        s.push(bucket("root_scan", 1, &[(1, 0, 10)]));
        s.push(bucket("trace", 4, &[(3, 0, 100), (1, 1, 80)]));
        assert_eq!(s.packets(), 5);
        assert_eq!(s.steals(), 1);
        assert_eq!(s.busy_ns(), 190);
        assert_eq!(s.per_worker_busy_ns(), vec![110, 80]);
    }

    #[test]
    fn totals_absorb_collections() {
        let mut s = SchedStats::new(1);
        s.push(bucket("trace", 2, &[(2, 0, 50)]));
        let mut t = SchedTotals::default();
        t.absorb(&s);
        t.absorb(&s);
        assert_eq!(t.collections, 2);
        assert_eq!(t.packets, 4);
        assert_eq!(t.busy_ns, 100);
        assert_eq!(t.steals, 0);
    }
}
