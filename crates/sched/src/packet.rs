//! The packet traits: units of collection work.

/// A unit of read-only collection work.
///
/// Packets in one bucket may execute concurrently on any worker, so a
/// packet may only *read* the shared context and *write* into itself.
/// Results are collected by the caller after the bucket drains, in
/// packet-index order — which is what makes the reduction independent
/// of the execution schedule.
pub trait Packet<C>: Send {
    /// Executes the packet against the shared context.
    fn run(&mut self, ctx: &C);
}

/// A unit of mutating collection work.
///
/// Mutable-context buckets are coordinator work: the scheduler runs
/// them sequentially on the calling thread, in packet-index order, so
/// every store mutation happens in the same canonical order at every
/// worker count.
pub trait PacketMut<C> {
    /// Executes the packet against the exclusive context.
    fn run(&mut self, ctx: &mut C);
}
