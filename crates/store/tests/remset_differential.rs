//! Differential property test: the hand-rolled open-addressing remset
//! table behaves identically to the `HashMap`-backed implementation it
//! replaced.
//!
//! The oracle is a literal `HashMap<(src, slot), target>` per partition —
//! the exact data structure the previous implementation used. Random
//! operation sequences (insert / remove / retain, with key collisions and
//! re-insertions on purpose) are applied to both, and every observable
//! query (`external_targets`, `entry_count`, `total_entries`) must agree
//! after each step.

use std::collections::HashMap;

use proptest::prelude::*;

use odbgc_store::remset::RemSets;
use odbgc_store::PartitionId;
use odbgc_trace::{ObjectId, SlotIdx};

/// The previous implementation, reconstructed as an oracle.
#[derive(Default)]
struct OracleRemSets {
    sets: Vec<HashMap<(u64, u32), ObjectId>>,
}

impl OracleRemSets {
    fn ensure(&mut self, p: PartitionId) -> &mut HashMap<(u64, u32), ObjectId> {
        if self.sets.len() <= p.index() {
            self.sets.resize_with(p.index() + 1, HashMap::new);
        }
        &mut self.sets[p.index()]
    }

    fn insert(
        &mut self,
        src: ObjectId,
        slot: SlotIdx,
        src_partition: PartitionId,
        target: ObjectId,
        target_partition: PartitionId,
    ) {
        if src_partition == target_partition {
            return;
        }
        self.ensure(target_partition)
            .insert((src.raw(), slot.raw()), target);
    }

    fn remove(&mut self, src: ObjectId, slot: SlotIdx, target_partition: PartitionId) {
        if let Some(set) = self.sets.get_mut(target_partition.index()) {
            set.remove(&(src.raw(), slot.raw()));
        }
    }

    fn external_targets(&self, p: PartitionId) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .sets
            .get(p.index())
            .map(|s| s.values().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn entry_count(&self, p: PartitionId) -> usize {
        self.sets.get(p.index()).map_or(0, HashMap::len)
    }

    fn retain_targets(&mut self, p: PartitionId, mut pred: impl FnMut(ObjectId) -> bool) {
        if let Some(set) = self.sets.get_mut(p.index()) {
            set.retain(|_, &mut t| pred(t));
        }
    }

    fn total_entries(&self) -> usize {
        self.sets.iter().map(HashMap::len).sum()
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// insert(src, slot, src_p, target, target_p)
    Insert(u64, u32, u32, u64, u32),
    /// remove(src, slot, target_p)
    Remove(u64, u32, u32),
    /// retain_targets(p, |t| t.raw() % modulus != 0)
    Retain(u32, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Small key ranges on purpose: collisions, overwrites, and removes of
    // present keys must actually happen to exercise tombstone reuse.
    prop_oneof![
        (0u64..40, 0u32..6, 0u32..4, 0u64..40, 0u32..4)
            .prop_map(|(s, sl, sp, t, tp)| Op::Insert(s, sl, sp, t, tp)),
        (0u64..40, 0u32..6, 0u32..4).prop_map(|(s, sl, tp)| Op::Remove(s, sl, tp)),
        (0u32..4, 2u64..5).prop_map(|(p, m)| Op::Retain(p, m)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn open_addressing_table_matches_hashmap_oracle(ops in proptest::collection::vec(arb_op(), 1..400)) {
        let mut real = RemSets::new();
        let mut oracle = OracleRemSets::default();
        for op in &ops {
            match *op {
                Op::Insert(src, slot, sp, target, tp) => {
                    real.insert(
                        ObjectId::new(src),
                        SlotIdx::new(slot),
                        PartitionId::new(sp),
                        ObjectId::new(target),
                        PartitionId::new(tp),
                    );
                    oracle.insert(
                        ObjectId::new(src),
                        SlotIdx::new(slot),
                        PartitionId::new(sp),
                        ObjectId::new(target),
                        PartitionId::new(tp),
                    );
                }
                Op::Remove(src, slot, tp) => {
                    real.remove(ObjectId::new(src), SlotIdx::new(slot), PartitionId::new(tp));
                    oracle.remove(ObjectId::new(src), SlotIdx::new(slot), PartitionId::new(tp));
                }
                Op::Retain(p, m) => {
                    real.retain_targets(PartitionId::new(p), |t| t.raw() % m != 0);
                    oracle.retain_targets(PartitionId::new(p), |t| t.raw() % m != 0);
                }
            }
            // Every observable query agrees after every operation.
            prop_assert_eq!(real.total_entries(), oracle.total_entries());
            for p in 0..4u32 {
                let p = PartitionId::new(p);
                prop_assert_eq!(real.entry_count(p), oracle.entry_count(p));
                prop_assert_eq!(real.external_targets(p), oracle.external_targets(p));
            }
        }
    }
}
