//! Property tests: store accounting invariants hold under arbitrary
//! (valid) workloads.

use proptest::prelude::*;

use odbgc_store::{Store, StoreConfig};
use odbgc_trace::synthetic::{churn, ChurnConfig};

fn arb_config() -> impl Strategy<Value = ChurnConfig> {
    (1usize..6, 1usize..5, 10usize..400, (8u32..64, 64u32..512)).prop_map(
        |(anchors, slots, steps, (lo, hi))| ChurnConfig {
            anchors,
            slots_per_object: slots,
            steps,
            size_range: (lo, hi),
            weights: (4, 3, 2, 2),
        },
    )
}

/// Checks every cheaply-verifiable global invariant of a store.
fn check_invariants(store: &Store) {
    // Conservation of garbage.
    assert_eq!(
        store.total_garbage_generated(),
        store.total_garbage_collected() + store.garbage_bytes()
    );
    // Storage is partitioned into live, garbage, and free.
    assert_eq!(
        store.occupied_bytes(),
        store.live_bytes() + store.garbage_bytes()
    );
    // Allocated storage bounds occupancy.
    assert!(store.db_size_bytes() >= store.occupied_bytes());
    // Per-partition residents cover exactly the occupied bytes.
    let mut resident_bytes = 0u64;
    for snap in store.partition_snapshots() {
        for &id in store.residents_of(snap.id) {
            assert!(store.is_present(id), "resident {id} must be present");
            assert_eq!(store.partition_of(id).unwrap(), snap.id);
            resident_bytes += u64::from(store.size_of(id).unwrap());
        }
        assert_eq!(
            snap.live_bytes + snap.garbage_bytes,
            u64::from(snap.occupied_bytes)
        );
    }
    assert_eq!(resident_bytes, store.occupied_bytes());
    // Maintained O(1) counters agree with fresh scans.
    store.assert_counters_match();
    let scanned_po: u64 = store
        .partition_snapshots()
        .iter()
        .map(|s| s.overwrites)
        .sum();
    assert_eq!(scanned_po, store.total_outstanding_overwrites());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn churn_replay_upholds_invariants(cfg in arb_config(), seed in any::<u64>()) {
        let trace = churn(&cfg, seed);
        let mut store = Store::new(StoreConfig::tiny());
        for ev in trace.iter() {
            store.apply(ev).expect("synthetic traces are valid");
            // Counter == fresh-scan equivalence after *every* event.
            store.assert_counters_match();
        }
        check_invariants(&store);
        store.assert_consistent();
        // After reconciling with full reachability (churn can kill
        // cycles the cascade cannot see), the tracker is exact.
        store.recompute_garbage_exact();
        store.assert_garbage_exact();
        store.assert_consistent();
        check_invariants(&store);
    }

    #[test]
    fn tracker_is_sound_before_reconciliation(cfg in arb_config(), seed in any::<u64>()) {
        // The cascade may *miss* cyclic garbage but must never mark a
        // reachable object as garbage.
        let trace = churn(&cfg, seed);
        let mut store = Store::new(StoreConfig::tiny());
        for ev in trace.iter() {
            store.apply(ev).expect("valid");
        }
        let reachable = store.compute_reachable();
        for id in reachable.iter() {
            assert!(store.is_live(id), "reachable {id} must be tracked live");
        }
    }

    #[test]
    fn io_charges_are_monotone(cfg in arb_config(), seed in any::<u64>()) {
        let trace = churn(&cfg, seed);
        let mut store = Store::new(StoreConfig::tiny());
        let mut last_total = 0;
        for ev in trace.iter() {
            store.apply(ev).expect("valid");
            let total = store.io().total();
            assert!(total >= last_total);
            last_total = total;
        }
        // Phase-mark-free synthetic traces: every storage-touching event
        // either hits the buffer or paid I/O; the totals never exceed
        // a sane bound (every event touches at most a handful of pages).
        assert!(store.io().total() <= 8 * trace.len() as u64 + 64);
    }

    #[test]
    fn buffer_capacity_is_respected(cfg in arb_config(), seed in any::<u64>()) {
        let trace = churn(&cfg, seed);
        let config = StoreConfig { buffer_pages: 2, ..StoreConfig::tiny() };
        let mut store = Store::new(config);
        for ev in trace.iter() {
            store.apply(ev).expect("valid");
        }
        check_invariants(&store);
    }
}
