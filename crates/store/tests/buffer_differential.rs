//! Differential property test: the intrusive-LRU buffer pool evicts and
//! accounts exactly like the stamp-based linear-scan pool it replaced.
//!
//! The oracle is the previous implementation: a flat `Vec` of frames,
//! each carrying a monotonically increasing last-use stamp, with eviction
//! by minimum stamp (linear scan). Because stamps are unique and strictly
//! increasing, min-stamp eviction and LRU-list-head eviction pick the
//! same victim — this test pins that equivalence under random workloads,
//! checking residency, dirty bits, eviction order, and the I/O charges.

use proptest::prelude::*;

use odbgc_store::buffer::BufferPool;
use odbgc_store::{IoClass, IoLedger, PageKey, PartitionId};

/// The pre-optimization pool, reconstructed as an oracle.
struct OraclePool {
    frames: Vec<(PageKey, bool, u64)>, // (key, dirty, stamp)
    clock: u64,
    capacity: usize,
}

impl OraclePool {
    fn new(capacity: u32) -> Self {
        OraclePool {
            frames: Vec::new(),
            clock: 0,
            capacity: capacity as usize,
        }
    }

    fn touch(&mut self, key: PageKey, dirty: bool, class: IoClass, ledger: &mut IoLedger) {
        self.clock += 1;
        if let Some(f) = self.frames.iter_mut().find(|f| f.0 == key) {
            f.1 |= dirty;
            f.2 = self.clock;
            return;
        }
        ledger.charge_reads(class, 1);
        if self.frames.len() == self.capacity {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.2)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            if self.frames[victim].1 {
                ledger.charge_writes(class, 1);
            }
            self.frames.swap_remove(victim);
        }
        self.frames.push((key, dirty, self.clock));
    }

    fn invalidate_partition(&mut self, p: PartitionId) {
        self.frames.retain(|f| f.0.partition != p);
    }

    fn contains(&self, key: PageKey) -> bool {
        self.frames.iter().any(|f| f.0 == key)
    }

    fn is_dirty(&self, key: PageKey) -> bool {
        self.frames.iter().any(|f| f.0 == key && f.1)
    }

    /// Keys least- to most-recently used (ascending stamp).
    fn lru_order(&self) -> Vec<PageKey> {
        let mut v: Vec<(u64, PageKey)> = self.frames.iter().map(|f| (f.2, f.0)).collect();
        v.sort_unstable_by_key(|&(stamp, _)| stamp);
        v.into_iter().map(|(_, k)| k).collect()
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// touch(partition, page, dirty)
    Touch(u32, u32, bool),
    /// invalidate_partition(partition)
    Invalidate(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..3, 0u32..10, any::<bool>()).prop_map(|(p, pg, d)| Op::Touch(p, pg, d)),
        (0u32..3).prop_map(Op::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intrusive_lru_matches_stamp_oracle(
        capacity in 1u32..6,
        ops in proptest::collection::vec(arb_op(), 1..300),
    ) {
        let mut real = BufferPool::new(capacity);
        let mut oracle = OraclePool::new(capacity);
        let mut real_ledger = IoLedger::new();
        let mut oracle_ledger = IoLedger::new();
        for op in &ops {
            match *op {
                Op::Touch(p, page, dirty) => {
                    let key = PageKey { partition: PartitionId::new(p), page };
                    real.touch(key, dirty, IoClass::App, &mut real_ledger);
                    oracle.touch(key, dirty, IoClass::App, &mut oracle_ledger);
                }
                Op::Invalidate(p) => {
                    real.invalidate_partition(PartitionId::new(p));
                    oracle.invalidate_partition(PartitionId::new(p));
                }
            }
            // Same recency order implies the same future evictions; the
            // ledgers prove the past ones charged identically.
            prop_assert_eq!(real.lru_order(), oracle.lru_order());
            prop_assert_eq!(real.len(), oracle.frames.len());
            prop_assert_eq!(real_ledger.total(), oracle_ledger.total());
            for pp in 0..3u32 {
                for pg in 0..10u32 {
                    let key = PageKey { partition: PartitionId::new(pp), page: pg };
                    prop_assert_eq!(real.contains(key), oracle.contains(key));
                    prop_assert_eq!(real.is_dirty(key), oracle.is_dirty(key));
                }
            }
        }
    }
}
