//! Source-level guard: the per-event and per-collection hot paths must
//! stay free of `HashMap`/`HashSet`.
//!
//! The whole point of the flat, index-addressed rewrite (epoch marks,
//! open-addressing remsets, intrusive-LRU buffer pool) is that event
//! application and collection never hash and never allocate per item. A
//! stray `HashSet` reintroduced in a refactor would silently undo that,
//! so this test greps the hot-path sources — comments stripped — and
//! fails on any occurrence. Oracle reimplementations in the differential
//! tests live in `tests/`, which this guard deliberately does not scan.

const HOT_PATH_SOURCES: &[(&str, &str)] = &[
    ("store/src/store.rs", include_str!("../src/store.rs")),
    ("store/src/remset.rs", include_str!("../src/remset.rs")),
    ("store/src/buffer.rs", include_str!("../src/buffer.rs")),
    (
        "store/src/partition.rs",
        include_str!("../src/partition.rs"),
    ),
    ("store/src/object.rs", include_str!("../src/object.rs")),
    ("gc/src/cheney.rs", include_str!("../../gc/src/cheney.rs")),
    (
        "gc/src/collector.rs",
        include_str!("../../gc/src/collector.rs"),
    ),
    (
        "gc/src/parallel.rs",
        include_str!("../../gc/src/parallel.rs"),
    ),
    ("sched/src/pool.rs", include_str!("../../sched/src/pool.rs")),
];

/// Strips `//`-style comments (doc comments included). Good enough for
/// this codebase: no string literal legitimately contains `//` followed
/// by a hash-collection name.
fn strip_comments(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

#[test]
fn hot_paths_never_name_hash_collections() {
    let mut offenses = Vec::new();
    for (name, src) in HOT_PATH_SOURCES {
        for (lineno, line) in src.lines().enumerate() {
            let code = strip_comments(line);
            if code.contains("HashMap") || code.contains("HashSet") {
                offenses.push(format!("{name}:{}: {}", lineno + 1, line.trim()));
            }
        }
    }
    assert!(
        offenses.is_empty(),
        "hash collections reintroduced on hot paths:\n{}",
        offenses.join("\n")
    );
}
