//! I/O accounting: every page transfer is charged to the application or to
//! the garbage collector. The SAIO policy controls exactly the ratio
//! `gc_total / (gc_total + app_total)`.

/// Who caused a page transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// The application (trace replay through the buffer pool).
    App,
    /// The garbage collector (partition reads and compaction writes).
    Gc,
}

/// Cumulative page-transfer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoLedger {
    /// Page reads performed for the application.
    pub app_reads: u64,
    /// Page writes performed for the application (dirty evictions).
    pub app_writes: u64,
    /// Page reads performed by the collector.
    pub gc_reads: u64,
    /// Page writes performed by the collector.
    pub gc_writes: u64,
}

impl IoLedger {
    /// A zeroed ledger.
    pub fn new() -> Self {
        IoLedger::default()
    }

    /// Charges `n` page reads to `class`.
    #[inline]
    pub fn charge_reads(&mut self, class: IoClass, n: u64) {
        match class {
            IoClass::App => self.app_reads += n,
            IoClass::Gc => self.gc_reads += n,
        }
    }

    /// Charges `n` page writes to `class`.
    #[inline]
    pub fn charge_writes(&mut self, class: IoClass, n: u64) {
        match class {
            IoClass::App => self.app_writes += n,
            IoClass::Gc => self.gc_writes += n,
        }
    }

    /// Application reads + writes.
    pub fn app_total(&self) -> u64 {
        self.app_reads + self.app_writes
    }

    /// Collector reads + writes.
    pub fn gc_total(&self) -> u64 {
        self.gc_reads + self.gc_writes
    }

    /// All page transfers.
    pub fn total(&self) -> u64 {
        self.app_total() + self.gc_total()
    }

    /// Fraction of all I/O performed by the collector, in `[0, 1]`;
    /// 0 when no I/O has happened.
    pub fn gc_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.gc_total() as f64 / total as f64
        }
    }

    /// A copyable snapshot, for computing deltas over an interval.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot { at: *self }
    }
}

/// A point-in-time copy of an [`IoLedger`], used to measure an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    at: IoLedger,
}

impl IoSnapshot {
    /// Application I/O performed since the snapshot.
    pub fn app_delta(&self, now: &IoLedger) -> u64 {
        now.app_total() - self.at.app_total()
    }

    /// Collector I/O performed since the snapshot.
    pub fn gc_delta(&self, now: &IoLedger) -> u64 {
        now.gc_total() - self.at.gc_total()
    }

    /// Total I/O performed since the snapshot.
    pub fn total_delta(&self, now: &IoLedger) -> u64 {
        now.total() - self.at.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_accumulates_per_class() {
        let mut l = IoLedger::new();
        l.charge_reads(IoClass::App, 3);
        l.charge_writes(IoClass::App, 1);
        l.charge_reads(IoClass::Gc, 12);
        l.charge_writes(IoClass::Gc, 8);
        assert_eq!(l.app_total(), 4);
        assert_eq!(l.gc_total(), 20);
        assert_eq!(l.total(), 24);
        assert!((l.gc_fraction() - 20.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_fraction_is_zero() {
        assert_eq!(IoLedger::new().gc_fraction(), 0.0);
    }

    #[test]
    fn snapshot_deltas() {
        let mut l = IoLedger::new();
        l.charge_reads(IoClass::App, 5);
        let snap = l.snapshot();
        l.charge_reads(IoClass::App, 2);
        l.charge_writes(IoClass::Gc, 7);
        assert_eq!(snap.app_delta(&l), 2);
        assert_eq!(snap.gc_delta(&l), 7);
        assert_eq!(snap.total_delta(&l), 9);
    }
}
