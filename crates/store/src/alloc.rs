//! Object placement.
//!
//! Following §3.1 of the paper, allocation is decoupled from collection:
//! when no existing partition has room, a new partition is simply appended.
//! Lack of free space never triggers a collection.

use crate::config::{AllocPolicy, StoreConfig};
use crate::ids::PartitionId;
use crate::partition::Partition;

/// Chooses a partition and offset for a new object of `size` bytes,
/// appending a partition if necessary. Objects larger than a regular
/// partition get a dedicated, larger partition sized in whole pages.
pub fn place(
    partitions: &mut Vec<Partition>,
    config: &StoreConfig,
    size: u32,
) -> (PartitionId, u32) {
    debug_assert!(size >= 1);
    match config.alloc_policy {
        AllocPolicy::FirstFit => {
            for (i, p) in partitions.iter_mut().enumerate() {
                if p.fits(size) {
                    let offset = p.append(size);
                    return (PartitionId::new(i as u32), offset);
                }
            }
        }
        AllocPolicy::AppendOnly => {
            if let Some(p) = partitions.last_mut() {
                if p.fits(size) {
                    let offset = p.append(size);
                    return (PartitionId::new(partitions.len() as u32 - 1), offset);
                }
            }
        }
    }
    // No existing partition has room: append one (never collect).
    let pages = config
        .pages_per_partition
        .max(size.div_ceil(config.page_size));
    let mut fresh = Partition::new(pages, config.page_size);
    let offset = fresh.append(size);
    partitions.push(fresh);
    (PartitionId::new(partitions.len() as u32 - 1), offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoreConfig {
        StoreConfig::tiny() // 64-byte pages, 4-page (256-byte) partitions
    }

    #[test]
    fn first_fit_fills_earliest_partition() {
        let cfg = cfg();
        let mut parts = Vec::new();
        let (p0, o0) = place(&mut parts, &cfg, 100);
        let (p1, o1) = place(&mut parts, &cfg, 100);
        let (p2, o2) = place(&mut parts, &cfg, 100); // 300 > 256: new partition
        let (p3, o3) = place(&mut parts, &cfg, 56); // fits back in partition 0
        assert_eq!((p0.raw(), o0), (0, 0));
        assert_eq!((p1.raw(), o1), (0, 100));
        assert_eq!((p2.raw(), o2), (1, 0));
        assert_eq!((p3.raw(), o3), (0, 200));
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn append_only_never_backfills() {
        let cfg = StoreConfig {
            alloc_policy: AllocPolicy::AppendOnly,
            ..cfg()
        };
        let mut parts = Vec::new();
        place(&mut parts, &cfg, 100);
        place(&mut parts, &cfg, 200); // forces partition 1
        let (p, _) = place(&mut parts, &cfg, 56); // would fit in 0; goes to 1
        assert_eq!(p.raw(), 1);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn oversized_objects_get_dedicated_partition() {
        let cfg = cfg();
        let mut parts = Vec::new();
        let (p, o) = place(&mut parts, &cfg, 1000); // > 256 bytes
        assert_eq!((p.raw(), o), (0, 0));
        assert_eq!(parts[0].pages, 16); // ceil(1000/64)
        assert_eq!(parts[0].capacity, 1024);
        // Tail space of the big partition is reusable under first-fit.
        let (p2, o2) = place(&mut parts, &cfg, 24);
        assert_eq!((p2.raw(), o2), (0, 1000));
    }

    #[test]
    fn exact_fit_boundary() {
        let cfg = cfg();
        let mut parts = Vec::new();
        place(&mut parts, &cfg, 256);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].free_bytes(), 0);
        let (p, _) = place(&mut parts, &cfg, 1);
        assert_eq!(p.raw(), 1);
    }
}
