//! Object placement.
//!
//! Following §3.1 of the paper, allocation is decoupled from collection:
//! when no existing partition has room, a new partition is simply appended.
//! Lack of free space never triggers a collection.

use crate::config::{AllocPolicy, StoreConfig};
use crate::ids::PartitionId;
use crate::partition::Partition;

/// Chooses a partition and offset for a new object of `size` bytes,
/// appending a partition if necessary. Objects larger than a regular
/// partition get a dedicated, larger partition sized in whole pages.
///
/// Two accelerations keep steady-state allocation cheap without changing
/// where anything lands:
///
/// - `free` is a dense mirror of each partition's free bytes, kept in
///   lockstep with `partitions` (here on append, by the store after a
///   collection or grow). First-fit scans this flat `u32` array instead
///   of striding over the much larger `Partition` structs.
/// - `cursor` marks the first partition that might have free space:
///   everything below it has zero free bytes and can never fit an
///   object, so the scan starts there. The scan advances the cursor past
///   exhausted partitions; the store rewinds it whenever a collection or
///   a partition grow frees space below it.
pub fn place(
    partitions: &mut Vec<Partition>,
    free: &mut Vec<u32>,
    config: &StoreConfig,
    cursor: &mut usize,
    size: u32,
) -> (PartitionId, u32) {
    debug_assert!(size >= 1);
    debug_assert_eq!(free.len(), partitions.len(), "free cache out of sync");
    match config.alloc_policy {
        AllocPolicy::FirstFit => {
            for i in *cursor..free.len() {
                let f = free[i];
                if f == 0 {
                    if i == *cursor {
                        *cursor += 1;
                    }
                    continue;
                }
                if size <= f {
                    let offset = partitions[i].append(size);
                    free[i] = f - size;
                    return (PartitionId::new(i as u32), offset);
                }
            }
        }
        AllocPolicy::AppendOnly => {
            if let Some(p) = partitions.last_mut() {
                if p.fits(size) {
                    let offset = p.append(size);
                    *free.last_mut().expect("cache mirrors partitions") = p.free_bytes();
                    return (PartitionId::new(partitions.len() as u32 - 1), offset);
                }
            }
        }
    }
    // No existing partition has room: append one (never collect).
    let pages = config
        .pages_per_partition
        .max(size.div_ceil(config.page_size));
    let mut fresh = Partition::new(pages, config.page_size);
    let offset = fresh.append(size);
    free.push(fresh.free_bytes());
    partitions.push(fresh);
    (PartitionId::new(partitions.len() as u32 - 1), offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoreConfig {
        StoreConfig::tiny() // 64-byte pages, 4-page (256-byte) partitions
    }

    #[test]
    fn first_fit_fills_earliest_partition() {
        let cfg = cfg();
        let mut parts = Vec::new();
        let mut free = Vec::new();
        let mut cursor = 0;
        let (p0, o0) = place(&mut parts, &mut free, &cfg, &mut cursor, 100);
        let (p1, o1) = place(&mut parts, &mut free, &cfg, &mut cursor, 100);
        let (p2, o2) = place(&mut parts, &mut free, &cfg, &mut cursor, 100); // 300 > 256: new partition
        let (p3, o3) = place(&mut parts, &mut free, &cfg, &mut cursor, 56); // fits back in partition 0
        assert_eq!((p0.raw(), o0), (0, 0));
        assert_eq!((p1.raw(), o1), (0, 100));
        assert_eq!((p2.raw(), o2), (1, 0));
        assert_eq!((p3.raw(), o3), (0, 200));
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn append_only_never_backfills() {
        let cfg = StoreConfig {
            alloc_policy: AllocPolicy::AppendOnly,
            ..cfg()
        };
        let mut parts = Vec::new();
        let mut free = Vec::new();
        let mut cursor = 0;
        place(&mut parts, &mut free, &cfg, &mut cursor, 100);
        place(&mut parts, &mut free, &cfg, &mut cursor, 200); // forces partition 1
        let (p, _) = place(&mut parts, &mut free, &cfg, &mut cursor, 56); // would fit in 0; goes to 1
        assert_eq!(p.raw(), 1);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn oversized_objects_get_dedicated_partition() {
        let cfg = cfg();
        let mut parts = Vec::new();
        let mut free = Vec::new();
        let mut cursor = 0;
        let (p, o) = place(&mut parts, &mut free, &cfg, &mut cursor, 1000); // > 256 bytes
        assert_eq!((p.raw(), o), (0, 0));
        assert_eq!(parts[0].pages, 16); // ceil(1000/64)
        assert_eq!(parts[0].capacity, 1024);
        // Tail space of the big partition is reusable under first-fit.
        let (p2, o2) = place(&mut parts, &mut free, &cfg, &mut cursor, 24);
        assert_eq!((p2.raw(), o2), (0, 1000));
    }

    #[test]
    fn exact_fit_boundary() {
        let cfg = cfg();
        let mut parts = Vec::new();
        let mut free = Vec::new();
        let mut cursor = 0;
        place(&mut parts, &mut free, &cfg, &mut cursor, 256);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].free_bytes(), 0);
        let (p, _) = place(&mut parts, &mut free, &cfg, &mut cursor, 1);
        assert_eq!(p.raw(), 1);
    }
}
