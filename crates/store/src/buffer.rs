//! A small LRU buffer pool.
//!
//! The paper sizes the buffer equal to one partition (12 × 8 KiB pages,
//! §3.1), so the pool is tiny and a linear-scan LRU over a `Vec` is both
//! simplest and fastest. A buffer miss costs one page read; evicting a
//! dirty page costs one page write, charged to the I/O class performing the
//! access that caused the eviction.

use crate::ids::PageKey;
use crate::io::{IoClass, IoLedger};

#[derive(Debug, Clone, Copy)]
struct Frame {
    key: PageKey,
    dirty: bool,
    /// Last-use stamp; larger = more recent.
    stamp: u64,
}

/// Buffer access statistics (hits/misses per class), separate from the page
/// I/O ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Application accesses served from the buffer.
    pub app_hits: u64,
    /// Application accesses that had to read a page.
    pub app_misses: u64,
    /// Collector accesses served from the buffer.
    pub gc_hits: u64,
    /// Collector accesses that had to read a page.
    pub gc_misses: u64,
    /// Evictions that had to write a dirty page back.
    pub dirty_evictions: u64,
}

impl BufferStats {
    /// Application hit rate in `[0, 1]`; 0 when no accesses.
    pub fn app_hit_rate(&self) -> f64 {
        let total = self.app_hits + self.app_misses;
        if total == 0 {
            0.0
        } else {
            self.app_hits as f64 / total as f64
        }
    }
}

/// Fixed-capacity LRU page buffer with dirty-bit tracking.
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    capacity: usize,
    clock: u64,
    stats: BufferStats,
}

impl BufferPool {
    /// Creates a pool holding `capacity` pages.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "buffer must hold at least one page");
        BufferPool {
            frames: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            clock: 0,
            stats: BufferStats::default(),
        }
    }

    /// Touches `key` on behalf of `class`, marking it dirty if `dirty`.
    /// Charges a read to `ledger` on a miss and a write when a dirty page
    /// must be evicted to make room.
    pub fn touch(&mut self, key: PageKey, dirty: bool, class: IoClass, ledger: &mut IoLedger) {
        self.clock += 1;
        if let Some(frame) = self.frames.iter_mut().find(|f| f.key == key) {
            frame.stamp = self.clock;
            frame.dirty |= dirty;
            match class {
                IoClass::App => self.stats.app_hits += 1,
                IoClass::Gc => self.stats.gc_hits += 1,
            }
            return;
        }
        match class {
            IoClass::App => self.stats.app_misses += 1,
            IoClass::Gc => self.stats.gc_misses += 1,
        }
        ledger.charge_reads(class, 1);
        if self.frames.len() == self.capacity {
            let (victim_idx, _) = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.stamp)
                .expect("capacity > 0 so a victim exists");
            if self.frames[victim_idx].dirty {
                ledger.charge_writes(class, 1);
                self.stats.dirty_evictions += 1;
            }
            self.frames.swap_remove(victim_idx);
        }
        self.frames.push(Frame {
            key,
            dirty,
            stamp: self.clock,
        });
    }

    /// Drops every buffered page satisfying `pred` *without* writing it
    /// back. The collector uses this when it rewrites a partition wholesale:
    /// buffered copies are stale and their contents were already persisted
    /// by the collector's own writes.
    pub fn invalidate_where(&mut self, mut pred: impl FnMut(PageKey) -> bool) {
        self.frames.retain(|f| !pred(f.key));
    }

    /// Is `key` currently buffered?
    pub fn contains(&self, key: PageKey) -> bool {
        self.frames.iter().any(|f| f.key == key)
    }

    /// Is `key` buffered and dirty?
    pub fn is_dirty(&self, key: PageKey) -> bool {
        self.frames.iter().any(|f| f.key == key && f.dirty)
    }

    /// Number of buffered pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Access statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PartitionId;

    fn key(p: u32, pg: u32) -> PageKey {
        PageKey::new(PartitionId::new(p), pg)
    }

    #[test]
    fn miss_charges_read_hit_charges_nothing() {
        let mut pool = BufferPool::new(2);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        assert_eq!(io.app_reads, 1);
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        assert_eq!(io.app_reads, 1);
        assert_eq!(pool.stats().app_hits, 1);
        assert_eq!(pool.stats().app_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut pool = BufferPool::new(2);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        pool.touch(key(0, 1), false, IoClass::App, &mut io);
        pool.touch(key(0, 0), false, IoClass::App, &mut io); // refresh page 0
        pool.touch(key(0, 2), false, IoClass::App, &mut io); // evicts page 1
        assert!(pool.contains(key(0, 0)));
        assert!(!pool.contains(key(0, 1)));
        assert!(pool.contains(key(0, 2)));
    }

    #[test]
    fn dirty_eviction_charges_write() {
        let mut pool = BufferPool::new(1);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), true, IoClass::App, &mut io);
        assert_eq!((io.app_reads, io.app_writes), (1, 0));
        pool.touch(key(0, 1), false, IoClass::App, &mut io);
        assert_eq!((io.app_reads, io.app_writes), (2, 1));
        assert_eq!(pool.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_eviction_charges_no_write() {
        let mut pool = BufferPool::new(1);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        pool.touch(key(0, 1), false, IoClass::App, &mut io);
        assert_eq!(io.app_writes, 0);
    }

    #[test]
    fn dirty_bit_is_sticky() {
        let mut pool = BufferPool::new(2);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), true, IoClass::App, &mut io);
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        assert!(pool.is_dirty(key(0, 0)));
    }

    #[test]
    fn invalidate_drops_without_writeback() {
        let mut pool = BufferPool::new(4);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), true, IoClass::App, &mut io);
        pool.touch(key(1, 0), true, IoClass::App, &mut io);
        let writes_before = io.app_writes + io.gc_writes;
        pool.invalidate_where(|k| k.partition == PartitionId::new(0));
        assert!(!pool.contains(key(0, 0)));
        assert!(pool.contains(key(1, 0)));
        assert_eq!(io.app_writes + io.gc_writes, writes_before);
    }

    #[test]
    fn gc_class_charges_gc_ledger() {
        let mut pool = BufferPool::new(1);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), true, IoClass::Gc, &mut io);
        pool.touch(key(0, 1), false, IoClass::Gc, &mut io);
        assert_eq!(io.gc_reads, 2);
        assert_eq!(io.gc_writes, 1);
        assert_eq!(io.app_total(), 0);
    }

    #[test]
    fn capacity_respected() {
        let mut pool = BufferPool::new(3);
        let mut io = IoLedger::new();
        for pg in 0..10 {
            pool.touch(key(0, pg), false, IoClass::App, &mut io);
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.capacity(), 3);
    }
}
