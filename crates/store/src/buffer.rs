//! An LRU buffer pool with O(1) lookup.
//!
//! The paper sizes the buffer equal to one partition (12 × 8 KiB pages,
//! §3.1), but `touch` sits on the per-event hot path — every object
//! access touches each page the object spans — so even a tiny pool is
//! worth indexing. Frames live in a slab threaded onto an intrusive
//! doubly-linked LRU list (head = least recent), and a per-partition
//! page→frame table makes lookup, hit promotion, and eviction all O(1)
//! with zero steady-state allocation. A buffer miss costs one page read;
//! evicting a dirty page costs one page write, charged to the I/O class
//! performing the access that caused the eviction.

use crate::ids::{PageKey, PartitionId};
use crate::io::{IoClass, IoLedger};

/// Sentinel for "no frame" in the page index and LRU links.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Frame {
    key: PageKey,
    dirty: bool,
    /// LRU list neighbor toward the head (less recently used).
    prev: u32,
    /// LRU list neighbor toward the tail (more recently used).
    next: u32,
}

/// Buffer access statistics (hits/misses per class), separate from the page
/// I/O ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Application accesses served from the buffer.
    pub app_hits: u64,
    /// Application accesses that had to read a page.
    pub app_misses: u64,
    /// Collector accesses served from the buffer.
    pub gc_hits: u64,
    /// Collector accesses that had to read a page.
    pub gc_misses: u64,
    /// Evictions that had to write a dirty page back.
    pub dirty_evictions: u64,
}

impl BufferStats {
    /// Application hit rate in `[0, 1]`; 0 when no accesses.
    pub fn app_hit_rate(&self) -> f64 {
        let total = self.app_hits + self.app_misses;
        if total == 0 {
            0.0
        } else {
            self.app_hits as f64 / total as f64
        }
    }
}

/// Fixed-capacity LRU page buffer with dirty-bit tracking.
#[derive(Debug)]
pub struct BufferPool {
    /// Frame slab; slots are recycled via `free`, never shrunk.
    frames: Vec<Frame>,
    /// Recycled slab slots.
    free: Vec<u32>,
    /// Least recently used frame (first eviction victim).
    lru_head: u32,
    /// Most recently used frame.
    lru_tail: u32,
    /// `page_index[partition][page]` → frame slot, or `NIL`. Grown on
    /// demand as partitions/pages are first touched.
    page_index: Vec<Vec<u32>>,
    /// Buffered page count (`frames` minus free slots).
    live: usize,
    capacity: usize,
    stats: BufferStats,
}

impl BufferPool {
    /// Creates a pool holding `capacity` pages.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "buffer must hold at least one page");
        BufferPool {
            frames: Vec::with_capacity(capacity as usize),
            free: Vec::new(),
            lru_head: NIL,
            lru_tail: NIL,
            page_index: Vec::new(),
            live: 0,
            capacity: capacity as usize,
            stats: BufferStats::default(),
        }
    }

    /// Frame slot buffering `key`, if any.
    #[inline]
    fn lookup(&self, key: PageKey) -> Option<u32> {
        let slot = *self
            .page_index
            .get(key.partition.index())?
            .get(key.page as usize)?;
        (slot != NIL).then_some(slot)
    }

    /// Points `key`'s index entry at `slot`, growing the index on demand.
    fn index_set(&mut self, key: PageKey, slot: u32) {
        let p = key.partition.index();
        if self.page_index.len() <= p {
            self.page_index.resize_with(p + 1, Vec::new);
        }
        let pages = &mut self.page_index[p];
        if pages.len() <= key.page as usize {
            pages.resize(key.page as usize + 1, NIL);
        }
        pages[key.page as usize] = slot;
    }

    /// Unlinks frame `i` from the LRU list (it stays in the slab).
    fn detach(&mut self, i: u32) {
        let Frame { prev, next, .. } = self.frames[i as usize];
        if prev == NIL {
            self.lru_head = next;
        } else {
            self.frames[prev as usize].next = next;
        }
        if next == NIL {
            self.lru_tail = prev;
        } else {
            self.frames[next as usize].prev = prev;
        }
    }

    /// Links frame `i` at the most-recently-used end.
    fn attach_tail(&mut self, i: u32) {
        let tail = self.lru_tail;
        self.frames[i as usize].prev = tail;
        self.frames[i as usize].next = NIL;
        if tail == NIL {
            self.lru_head = i;
        } else {
            self.frames[tail as usize].next = i;
        }
        self.lru_tail = i;
    }

    /// Unlinks frame `i`, clears its index entry, and recycles its slot.
    fn drop_frame(&mut self, i: u32) {
        self.detach(i);
        let key = self.frames[i as usize].key;
        self.page_index[key.partition.index()][key.page as usize] = NIL;
        self.free.push(i);
        self.live -= 1;
    }

    /// Touches `key` on behalf of `class`, marking it dirty if `dirty`.
    /// Charges a read to `ledger` on a miss and a write when a dirty page
    /// must be evicted to make room.
    pub fn touch(&mut self, key: PageKey, dirty: bool, class: IoClass, ledger: &mut IoLedger) {
        // Fast path: a repeat touch of the most-recently-used page — the
        // common case, e.g. successive slot writes against one object
        // header — needs no index lookup and no list splice, only the
        // dirty bit and the hit counter.
        let tail = self.lru_tail;
        if tail != NIL && self.frames[tail as usize].key == key {
            self.frames[tail as usize].dirty |= dirty;
            match class {
                IoClass::App => self.stats.app_hits += 1,
                IoClass::Gc => self.stats.gc_hits += 1,
            }
            return;
        }
        if let Some(i) = self.lookup(key) {
            self.frames[i as usize].dirty |= dirty;
            match class {
                IoClass::App => self.stats.app_hits += 1,
                IoClass::Gc => self.stats.gc_hits += 1,
            }
            if self.lru_tail != i {
                self.detach(i);
                self.attach_tail(i);
            }
            return;
        }
        match class {
            IoClass::App => self.stats.app_misses += 1,
            IoClass::Gc => self.stats.gc_misses += 1,
        }
        ledger.charge_reads(class, 1);
        if self.live == self.capacity {
            let victim = self.lru_head;
            if self.frames[victim as usize].dirty {
                ledger.charge_writes(class, 1);
                self.stats.dirty_evictions += 1;
            }
            self.drop_frame(victim);
        }
        let i = match self.free.pop() {
            Some(i) => i,
            None => {
                self.frames.push(Frame {
                    key,
                    dirty,
                    prev: NIL,
                    next: NIL,
                });
                (self.frames.len() - 1) as u32
            }
        };
        self.frames[i as usize] = Frame {
            key,
            dirty,
            prev: NIL,
            next: NIL,
        };
        self.attach_tail(i);
        self.index_set(key, i);
        self.live += 1;
    }

    /// Drops every buffered page satisfying `pred` *without* writing it
    /// back. The collector uses this when it rewrites a partition wholesale:
    /// buffered copies are stale and their contents were already persisted
    /// by the collector's own writes.
    pub fn invalidate_where(&mut self, mut pred: impl FnMut(PageKey) -> bool) {
        let mut i = self.lru_head;
        while i != NIL {
            let next = self.frames[i as usize].next;
            if pred(self.frames[i as usize].key) {
                self.drop_frame(i);
            }
            i = next;
        }
    }

    /// Drops every buffered page of partition `p` without writing it back.
    /// O(pages of `p`) via the page index — the per-collection fast path
    /// for [`BufferPool::invalidate_where`] with a partition predicate.
    pub fn invalidate_partition(&mut self, p: PartitionId) {
        let Some(n) = self.page_index.get(p.index()).map(Vec::len) else {
            return;
        };
        for pg in 0..n {
            let i = self.page_index[p.index()][pg];
            if i != NIL {
                self.drop_frame(i);
            }
        }
    }

    /// Is `key` currently buffered?
    pub fn contains(&self, key: PageKey) -> bool {
        self.lookup(key).is_some()
    }

    /// Is `key` buffered and dirty?
    pub fn is_dirty(&self, key: PageKey) -> bool {
        self.lookup(key)
            .is_some_and(|i| self.frames[i as usize].dirty)
    }

    /// Number of buffered pages.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Access statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Buffered pages from least to most recently used. Test/diagnostic
    /// helper for asserting eviction order.
    pub fn lru_order(&self) -> Vec<PageKey> {
        let mut out = Vec::with_capacity(self.live);
        let mut i = self.lru_head;
        while i != NIL {
            out.push(self.frames[i as usize].key);
            i = self.frames[i as usize].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PartitionId;

    fn key(p: u32, pg: u32) -> PageKey {
        PageKey::new(PartitionId::new(p), pg)
    }

    #[test]
    fn miss_charges_read_hit_charges_nothing() {
        let mut pool = BufferPool::new(2);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        assert_eq!(io.app_reads, 1);
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        assert_eq!(io.app_reads, 1);
        assert_eq!(pool.stats().app_hits, 1);
        assert_eq!(pool.stats().app_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut pool = BufferPool::new(2);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        pool.touch(key(0, 1), false, IoClass::App, &mut io);
        pool.touch(key(0, 0), false, IoClass::App, &mut io); // refresh page 0
        pool.touch(key(0, 2), false, IoClass::App, &mut io); // evicts page 1
        assert!(pool.contains(key(0, 0)));
        assert!(!pool.contains(key(0, 1)));
        assert!(pool.contains(key(0, 2)));
    }

    #[test]
    fn dirty_eviction_charges_write() {
        let mut pool = BufferPool::new(1);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), true, IoClass::App, &mut io);
        assert_eq!((io.app_reads, io.app_writes), (1, 0));
        pool.touch(key(0, 1), false, IoClass::App, &mut io);
        assert_eq!((io.app_reads, io.app_writes), (2, 1));
        assert_eq!(pool.stats().dirty_evictions, 1);
    }

    #[test]
    fn clean_eviction_charges_no_write() {
        let mut pool = BufferPool::new(1);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        pool.touch(key(0, 1), false, IoClass::App, &mut io);
        assert_eq!(io.app_writes, 0);
    }

    #[test]
    fn dirty_bit_is_sticky() {
        let mut pool = BufferPool::new(2);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), true, IoClass::App, &mut io);
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        assert!(pool.is_dirty(key(0, 0)));
    }

    #[test]
    fn invalidate_drops_without_writeback() {
        let mut pool = BufferPool::new(4);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), true, IoClass::App, &mut io);
        pool.touch(key(1, 0), true, IoClass::App, &mut io);
        let writes_before = io.app_writes + io.gc_writes;
        pool.invalidate_where(|k| k.partition == PartitionId::new(0));
        assert!(!pool.contains(key(0, 0)));
        assert!(pool.contains(key(1, 0)));
        assert_eq!(io.app_writes + io.gc_writes, writes_before);
    }

    #[test]
    fn invalidate_partition_matches_predicate_form() {
        let mut pool = BufferPool::new(6);
        let mut io = IoLedger::new();
        for pg in 0..3 {
            pool.touch(key(0, pg), pg == 1, IoClass::App, &mut io);
            pool.touch(key(1, pg), false, IoClass::Gc, &mut io);
        }
        let writes_before = io.app_writes + io.gc_writes;
        pool.invalidate_partition(PartitionId::new(0));
        assert_eq!(io.app_writes + io.gc_writes, writes_before);
        for pg in 0..3 {
            assert!(!pool.contains(key(0, pg)));
            assert!(pool.contains(key(1, pg)));
        }
        assert_eq!(pool.len(), 3);
        // Surviving pages keep their recency order.
        assert_eq!(pool.lru_order(), vec![key(1, 0), key(1, 1), key(1, 2)]);
    }

    #[test]
    fn gc_class_charges_gc_ledger() {
        let mut pool = BufferPool::new(1);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), true, IoClass::Gc, &mut io);
        pool.touch(key(0, 1), false, IoClass::Gc, &mut io);
        assert_eq!(io.gc_reads, 2);
        assert_eq!(io.gc_writes, 1);
        assert_eq!(io.app_total(), 0);
    }

    #[test]
    fn capacity_respected() {
        let mut pool = BufferPool::new(3);
        let mut io = IoLedger::new();
        for pg in 0..10 {
            pool.touch(key(0, pg), false, IoClass::App, &mut io);
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.capacity(), 3);
    }

    #[test]
    fn frame_slots_are_recycled_after_invalidation() {
        let mut pool = BufferPool::new(3);
        let mut io = IoLedger::new();
        for round in 0..5 {
            for pg in 0..3 {
                pool.touch(key(0, pg), false, IoClass::App, &mut io);
            }
            pool.invalidate_partition(PartitionId::new(0));
            assert!(pool.is_empty(), "round {round}");
        }
        // The slab never grew past capacity despite 15 insertions.
        assert!(pool.frames.len() <= 3);
    }

    #[test]
    fn lru_order_tracks_touches() {
        let mut pool = BufferPool::new(3);
        let mut io = IoLedger::new();
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        pool.touch(key(0, 1), false, IoClass::App, &mut io);
        pool.touch(key(0, 2), false, IoClass::App, &mut io);
        pool.touch(key(0, 0), false, IoClass::App, &mut io);
        assert_eq!(pool.lru_order(), vec![key(0, 1), key(0, 2), key(0, 0)]);
    }
}
