//! Per-object storage metadata.

use odbgc_trace::ObjectId;

use crate::ids::PartitionId;

/// Logical liveness state of an object, as maintained by the exact garbage
/// tracker and the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjState {
    /// Reachable (as far as the incremental tracker knows).
    Live,
    /// Unreachable: counted as garbage, still occupying storage.
    Garbage,
    /// Physically reclaimed by a collection; the id is retired.
    Destroyed,
}

/// Storage record of one object.
#[derive(Debug, Clone)]
pub struct ObjectInfo {
    /// Object size in bytes (≥ 1).
    pub size: u32,
    /// Partition the object currently resides in.
    pub partition: PartitionId,
    /// Byte offset of the object within its partition.
    pub offset: u32,
    /// Pointer slots. `None` = null pointer.
    pub slots: Box<[Option<ObjectId>]>,
    /// Incoming references from live holders plus root pins plus the birth
    /// pin. Maintained by the garbage tracker; an object whose count
    /// reaches zero is garbage.
    pub refcount: u32,
    /// Liveness state.
    pub state: ObjState,
    /// Is the object currently in the root set?
    pub is_root: bool,
    /// A newborn object is held by a transient application register (the
    /// variable the program created it into) until its first incoming
    /// reference or root registration arrives. The pin contributes one
    /// reference count and makes the object a collection root of its
    /// partition; it is dropped — replaced by the incoming reference —
    /// the first time the object is referenced.
    pub birth_pin: bool,
}

impl ObjectInfo {
    /// A fresh live object.
    pub fn new(
        size: u32,
        partition: PartitionId,
        offset: u32,
        slots: Box<[Option<ObjectId>]>,
    ) -> Self {
        ObjectInfo {
            size,
            partition,
            offset,
            slots,
            refcount: 1, // the birth pin
            state: ObjState::Live,
            is_root: false,
            birth_pin: true,
        }
    }

    /// Reachable per the tracker.
    pub fn is_live(&self) -> bool {
        self.state == ObjState::Live
    }

    /// Unreachable but still occupying storage.
    pub fn is_garbage(&self) -> bool {
        self.state == ObjState::Garbage
    }

    /// Physically reclaimed.
    pub fn is_destroyed(&self) -> bool {
        self.state == ObjState::Destroyed
    }

    /// Physically present in storage (live or garbage, not yet reclaimed).
    pub fn is_present(&self) -> bool {
        self.state != ObjState::Destroyed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_object_is_live_unrooted_and_birth_pinned() {
        let o = ObjectInfo::new(64, PartitionId::new(0), 0, Box::new([None, None]));
        assert!(o.is_live());
        assert!(o.is_present());
        assert!(!o.is_root);
        assert!(o.birth_pin);
        assert_eq!(o.refcount, 1);
        assert_eq!(o.slots.len(), 2);
    }

    #[test]
    fn state_predicates() {
        let mut o = ObjectInfo::new(8, PartitionId::new(1), 16, Box::new([]));
        o.state = ObjState::Garbage;
        assert!(o.is_garbage() && o.is_present() && !o.is_live());
        o.state = ObjState::Destroyed;
        assert!(o.is_destroyed() && !o.is_present());
    }
}
