//! Per-object storage metadata.

use odbgc_trace::ObjectId;

use crate::ids::PartitionId;

/// A pointer slot packed into 8 bytes. `Option<ObjectId>` is 16 bytes
/// (a raw `u64` id has no niche), which doubles the slot arena's memory
/// traffic for no information: ids are dense indexes into the object
/// table, so `u64::MAX` can never be a real id and serves as the null
/// encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PackedSlot(u64);

impl PackedSlot {
    const NONE: u64 = u64::MAX;

    #[inline]
    pub(crate) fn pack(v: Option<ObjectId>) -> Self {
        match v {
            Some(id) => {
                debug_assert_ne!(id.raw(), Self::NONE, "id collides with the null sentinel");
                PackedSlot(id.raw())
            }
            None => PackedSlot(Self::NONE),
        }
    }

    #[inline]
    pub(crate) fn get(self) -> Option<ObjectId> {
        (self.0 != Self::NONE).then(|| ObjectId::new(self.0))
    }
}

/// Logical liveness state of an object, as maintained by the exact garbage
/// tracker and the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjState {
    /// Reachable (as far as the incremental tracker knows).
    Live,
    /// Unreachable: counted as garbage, still occupying storage.
    Garbage,
    /// Physically reclaimed by a collection; the id is retired.
    Destroyed,
}

/// Storage record of one object.
#[derive(Debug, Clone)]
pub struct ObjectInfo {
    /// Object size in bytes (≥ 1).
    pub size: u32,
    /// Partition the object currently resides in.
    pub partition: PartitionId,
    /// Byte offset of the object within its partition.
    pub offset: u32,
    /// Start of this object's pointer slots in the store's slot arena.
    pub slots_start: u32,
    /// Number of pointer slots.
    pub slots_len: u32,
    /// Incoming references from live holders plus root pins plus the birth
    /// pin. Maintained by the garbage tracker; an object whose count
    /// reaches zero is garbage.
    pub refcount: u32,
    /// Liveness state.
    pub state: ObjState,
    /// Is the object currently in the root set?
    pub is_root: bool,
    /// A newborn object is held by a transient application register (the
    /// variable the program created it into) until its first incoming
    /// reference or root registration arrives. The pin contributes one
    /// reference count and makes the object a collection root of its
    /// partition; it is dropped — replaced by the incoming reference —
    /// the first time the object is referenced.
    pub birth_pin: bool,
    /// The visit epoch this object was last marked in (see
    /// [`Store::begin_visit_epoch`](crate::Store::begin_visit_epoch)).
    /// `0` means "never marked": epochs handed out by the store start
    /// at 1. This replaces per-traversal `HashSet` visited sets — a
    /// traversal marks an object by writing the current epoch here, and
    /// "already visited" is a single integer compare.
    pub mark_epoch: u32,
}

impl ObjectInfo {
    /// A fresh live object whose slots occupy
    /// `slots_start..slots_start + slots_len` of the store's slot arena.
    pub fn new(
        size: u32,
        partition: PartitionId,
        offset: u32,
        slots_start: u32,
        slots_len: u32,
    ) -> Self {
        ObjectInfo {
            size,
            partition,
            offset,
            slots_start,
            slots_len,
            refcount: 1, // the birth pin
            state: ObjState::Live,
            is_root: false,
            birth_pin: true,
            mark_epoch: 0,
        }
    }

    /// This object's slot range in the store's slot arena.
    #[inline]
    pub fn slot_range(&self) -> std::ops::Range<usize> {
        let start = self.slots_start as usize;
        start..start + self.slots_len as usize
    }

    /// Reachable per the tracker.
    pub fn is_live(&self) -> bool {
        self.state == ObjState::Live
    }

    /// Unreachable but still occupying storage.
    pub fn is_garbage(&self) -> bool {
        self.state == ObjState::Garbage
    }

    /// Physically reclaimed.
    pub fn is_destroyed(&self) -> bool {
        self.state == ObjState::Destroyed
    }

    /// Physically present in storage (live or garbage, not yet reclaimed).
    pub fn is_present(&self) -> bool {
        self.state != ObjState::Destroyed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_object_is_live_unrooted_and_birth_pinned() {
        let o = ObjectInfo::new(64, PartitionId::new(0), 0, 0, 2);
        assert!(o.is_live());
        assert!(o.is_present());
        assert!(!o.is_root);
        assert!(o.birth_pin);
        assert_eq!(o.refcount, 1);
        assert_eq!(o.slot_range(), 0..2);
    }

    #[test]
    fn state_predicates() {
        let mut o = ObjectInfo::new(8, PartitionId::new(1), 16, 4, 0);
        o.state = ObjState::Garbage;
        assert!(o.is_garbage() && o.is_present() && !o.is_live());
        o.state = ObjState::Destroyed;
        assert!(o.is_destroyed() && !o.is_present());
    }
}
