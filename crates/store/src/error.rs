//! Store errors.

use odbgc_trace::{ObjectId, SlotIdx};

/// A trace event that the store could not apply. Any of these indicates a
/// malformed trace (or a store bug), never a legal application behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The event names an object id that was never created.
    UnknownObject(ObjectId),
    /// The event touches an object that the collector already destroyed.
    /// A correct trace can never do this: destroyed objects were
    /// unreachable, and applications cannot name unreachable objects.
    UseAfterFree(ObjectId),
    /// The event mutates or reads an object that is unreachable (garbage).
    TouchedGarbage(ObjectId),
    /// A creation reused an existing id.
    DuplicateId(ObjectId),
    /// A slot index beyond the object's slot count.
    SlotOutOfBounds {
        /// The object addressed.
        object: ObjectId,
        /// The offending slot index.
        slot: SlotIdx,
        /// How many slots the object actually has.
        slot_count: usize,
    },
    /// Created object with size 0 (objects must occupy storage).
    ZeroSizeObject(ObjectId),
    /// RootAdd for an object already in the root set.
    DuplicateRoot(ObjectId),
    /// RootRemove for an object not in the root set.
    NotARoot(ObjectId),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownObject(id) => write!(f, "unknown object {id}"),
            StoreError::UseAfterFree(id) => write!(f, "use of destroyed object {id}"),
            StoreError::TouchedGarbage(id) => write!(f, "touched unreachable object {id}"),
            StoreError::DuplicateId(id) => write!(f, "duplicate creation of {id}"),
            StoreError::SlotOutOfBounds {
                object,
                slot,
                slot_count,
            } => write!(
                f,
                "slot {slot} out of bounds for {object} ({slot_count} slots)"
            ),
            StoreError::ZeroSizeObject(id) => write!(f, "object {id} created with size 0"),
            StoreError::DuplicateRoot(id) => write!(f, "object {id} is already a root"),
            StoreError::NotARoot(id) => write!(f, "object {id} is not a root"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let id = ObjectId::new(9);
        assert!(StoreError::UnknownObject(id).to_string().contains("o9"));
        assert!(StoreError::SlotOutOfBounds {
            object: id,
            slot: SlotIdx::new(4),
            slot_count: 2
        }
        .to_string()
        .contains("out of bounds"));
    }
}
