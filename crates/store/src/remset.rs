//! Remembered sets: per-partition records of incoming cross-partition
//! references.
//!
//! Partitioned collection treats every reference into the collected
//! partition from *outside* it as a root (plus global roots resident
//! inside), and does not traverse pointers leaving the partition. The
//! remembered set therefore tracks *physical* pointers — including those
//! held by objects that are already unreachable — because the collector
//! cannot know a remote holder is garbage. This is the standard
//! conservatism of partitioned GC: garbage chains that cross partitions are
//! reclaimed only once the referencing partition is collected first.
//!
//! Remset maintenance sits on the per-event hot path (every pointer write
//! may insert or remove an entry), so the storage is a hand-rolled
//! open-addressing table with an FxHash-style multiplicative hasher
//! instead of `HashMap`'s SipHash: no per-operation allocation, no
//! cryptographic mixing, cache-friendly linear probing. The observable
//! behavior (insert/remove/external_targets/entry_count/retain_targets)
//! is identical to the previous `HashMap<RemEntry, ObjectId>`-backed
//! implementation; `crates/store/tests/remset_differential.rs` proves it
//! against a `HashMap` oracle under random operation sequences.

use odbgc_trace::{ObjectId, SlotIdx};

use crate::ids::PartitionId;

/// One remembered reference: a slot of `src` (in another partition)
/// pointing at `target` (in this set's partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemEntry {
    /// The referencing object (in another partition).
    pub src: ObjectId,
    /// The slot of `src` holding the pointer.
    pub slot: SlotIdx,
}

/// FxHash-style mixer for the (src, slot) key: xor-fold the two words,
/// then one multiply by a random odd constant and a high-bit fold. Not
/// DoS-resistant — irrelevant here, keys are simulator-generated ids —
/// but 1–2 ns instead of SipHash's ~20.
#[inline]
fn hash_key(src: u64, slot: u32) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h = (src.rotate_left(5) ^ u64::from(slot)).wrapping_mul(K);
    h ^= h >> 32;
    h
}

/// Control-byte states for the open-addressing table.
const EMPTY: u8 = 0;
const FULL: u8 = 1;
const TOMBSTONE: u8 = 2;

/// Open-addressing (linear probing, tombstone deletion) map from
/// `(src, slot)` to the remembered target.
///
/// Invariants: `ctrl`, `keys`, and `vals` always have identical length,
/// a power of two; `len` counts FULL slots; `used` counts FULL +
/// TOMBSTONE slots and triggers a rehash (which drops tombstones) when
/// it exceeds 7/8 of capacity.
#[derive(Debug, Default)]
struct RemTable {
    ctrl: Vec<u8>,
    keys: Vec<(u64, u32)>,
    vals: Vec<ObjectId>,
    len: usize,
    used: usize,
}

impl RemTable {
    const MIN_CAPACITY: usize = 8;

    #[inline]
    fn mask(&self) -> usize {
        self.ctrl.len() - 1
    }

    /// Index of the key if present, else the slot where an insert should
    /// land (first tombstone on the probe path, or the empty slot).
    #[inline]
    fn probe(&self, key: (u64, u32)) -> (Option<usize>, usize) {
        debug_assert!(!self.ctrl.is_empty());
        let mask = self.mask();
        let mut i = hash_key(key.0, key.1) as usize & mask;
        let mut insert_at = usize::MAX;
        loop {
            match self.ctrl[i] {
                EMPTY => {
                    let at = if insert_at == usize::MAX {
                        i
                    } else {
                        insert_at
                    };
                    return (None, at);
                }
                FULL if self.keys[i] == key => return (Some(i), i),
                TOMBSTONE if insert_at == usize::MAX => insert_at = i,
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.ctrl.len() * 2).max(Self::MIN_CAPACITY);
        let old_ctrl = std::mem::replace(&mut self.ctrl, vec![EMPTY; new_cap]);
        let old_keys = std::mem::replace(&mut self.keys, vec![(0, 0); new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![ObjectId::new(0); new_cap]);
        self.used = self.len;
        let mask = new_cap - 1;
        for (i, &c) in old_ctrl.iter().enumerate() {
            if c != FULL {
                continue;
            }
            let key = old_keys[i];
            let mut j = hash_key(key.0, key.1) as usize & mask;
            while self.ctrl[j] == FULL {
                j = (j + 1) & mask;
            }
            self.ctrl[j] = FULL;
            self.keys[j] = key;
            self.vals[j] = old_vals[i];
        }
    }

    fn insert(&mut self, key: (u64, u32), val: ObjectId) {
        if self.ctrl.is_empty() || (self.used + 1) * 8 > self.ctrl.len() * 7 {
            self.grow();
        }
        let (found, at) = self.probe(key);
        if found.is_some() {
            self.vals[at] = val;
            return;
        }
        if self.ctrl[at] == EMPTY {
            self.used += 1;
        }
        self.ctrl[at] = FULL;
        self.keys[at] = key;
        self.vals[at] = val;
        self.len += 1;
    }

    fn remove(&mut self, key: (u64, u32)) {
        if self.ctrl.is_empty() {
            return;
        }
        if let (Some(i), _) = self.probe(key) {
            self.ctrl[i] = TOMBSTONE;
            self.len -= 1;
        }
    }

    fn retain_vals(&mut self, mut pred: impl FnMut(ObjectId) -> bool) {
        for i in 0..self.ctrl.len() {
            if self.ctrl[i] == FULL && !pred(self.vals[i]) {
                self.ctrl[i] = TOMBSTONE;
                self.len -= 1;
            }
        }
    }

    fn values_into(&self, out: &mut Vec<ObjectId>) {
        for (i, &c) in self.ctrl.iter().enumerate() {
            if c == FULL {
                out.push(self.vals[i]);
            }
        }
    }

    /// Structural audit: verifies the open-addressing invariants hold —
    /// parallel arrays in lockstep, power-of-two (or empty) capacity,
    /// `len`/`used` matching the control bytes, and every FULL key
    /// reachable by its own probe sequence (i.e. no entry was stranded by
    /// a torn rehash or deletion).
    fn check_structure(&self, p: usize) -> Result<(), String> {
        let cap = self.ctrl.len();
        if self.keys.len() != cap || self.vals.len() != cap {
            return Err(format!(
                "remset[{p}]: parallel arrays out of lockstep ({cap}/{}/{})",
                self.keys.len(),
                self.vals.len()
            ));
        }
        if cap != 0 && !cap.is_power_of_two() {
            return Err(format!("remset[{p}]: capacity {cap} not a power of two"));
        }
        let full = self.ctrl.iter().filter(|&&c| c == FULL).count();
        let dead = self.ctrl.iter().filter(|&&c| c == TOMBSTONE).count();
        if full != self.len {
            return Err(format!(
                "remset[{p}]: len {} but {full} FULL slots",
                self.len
            ));
        }
        if full + dead != self.used {
            return Err(format!(
                "remset[{p}]: used {} but {full} FULL + {dead} TOMBSTONE slots",
                self.used
            ));
        }
        for (i, &c) in self.ctrl.iter().enumerate() {
            if c != FULL {
                continue;
            }
            let key = self.keys[i];
            if self.probe(key).0 != Some(i) {
                return Err(format!(
                    "remset[{p}]: entry at slot {i} unreachable by its probe sequence"
                ));
            }
        }
        Ok(())
    }
}

/// Remembered sets for all partitions.
#[derive(Debug, Default)]
pub struct RemSets {
    /// `sets[p]` maps (src, slot) → target for every cross-partition
    /// pointer into partition `p`.
    sets: Vec<RemTable>,
}

impl RemSets {
    /// Empty remembered sets.
    pub fn new() -> Self {
        RemSets::default()
    }

    fn ensure(&mut self, p: PartitionId) -> &mut RemTable {
        if self.sets.len() <= p.index() {
            self.sets.resize_with(p.index() + 1, RemTable::default);
        }
        &mut self.sets[p.index()]
    }

    /// Records that `src.slots[slot]` (src in `src_partition`) now points at
    /// `target` living in `target_partition`. Intra-partition pointers are
    /// not remembered.
    pub fn insert(
        &mut self,
        src: ObjectId,
        slot: SlotIdx,
        src_partition: PartitionId,
        target: ObjectId,
        target_partition: PartitionId,
    ) {
        if src_partition == target_partition {
            return;
        }
        self.ensure(target_partition)
            .insert((src.raw(), slot.raw()), target);
    }

    /// Removes the remembered entry for `src.slots[slot]` pointing into
    /// `target_partition`, if present.
    pub fn remove(&mut self, src: ObjectId, slot: SlotIdx, target_partition: PartitionId) {
        if let Some(set) = self.sets.get_mut(target_partition.index()) {
            set.remove((src.raw(), slot.raw()));
        }
    }

    /// The distinct target objects referenced into `p` from outside — the
    /// external component of `p`'s collection roots.
    pub fn external_targets(&self, p: PartitionId) -> Vec<ObjectId> {
        let mut v = Vec::new();
        self.external_targets_into(p, &mut v);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Allocation-free variant of [`RemSets::external_targets`]: appends
    /// the raw remembered targets into `out` *without* sorting or
    /// deduplication (one push per entry, so an object referenced from
    /// several slots appears several times). Callers building a root set
    /// sort and dedup the whole buffer once at the end.
    pub fn external_targets_into(&self, p: PartitionId, out: &mut Vec<ObjectId>) {
        if let Some(set) = self.sets.get(p.index()) {
            set.values_into(out);
        }
    }

    /// Number of remembered entries into `p`.
    pub fn entry_count(&self, p: PartitionId) -> usize {
        self.sets.get(p.index()).map_or(0, |t| t.len)
    }

    /// Drops every entry into `p` whose target satisfies `pred`. Used after
    /// a collection to forget references to destroyed objects.
    pub fn retain_targets(&mut self, p: PartitionId, pred: impl FnMut(ObjectId) -> bool) {
        if let Some(set) = self.sets.get_mut(p.index()) {
            set.retain_vals(pred);
        }
    }

    /// Total remembered entries across all partitions (space-overhead
    /// metric).
    pub fn total_entries(&self) -> usize {
        self.sets.iter().map(|t| t.len).sum()
    }

    /// Structural audit of every per-partition table (see
    /// `RemTable::check_structure`). Run by the store's deep consistency
    /// check after collections — in particular after parallel
    /// collections, where it proves the sweep/finalize split left no
    /// torn table behind.
    pub fn check_structure(&self) -> Result<(), String> {
        for (p, set) in self.sets.iter().enumerate() {
            set.check_structure(p)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> PartitionId {
        PartitionId::new(n)
    }
    fn oid(n: u64) -> ObjectId {
        ObjectId::new(n)
    }
    fn s(n: u32) -> SlotIdx {
        SlotIdx::new(n)
    }

    #[test]
    fn cross_partition_refs_are_remembered() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(0), oid(9), pid(1));
        assert_eq!(rs.external_targets(pid(1)), vec![oid(9)]);
        assert_eq!(rs.entry_count(pid(1)), 1);
        assert_eq!(rs.external_targets(pid(0)), Vec::<ObjectId>::new());
    }

    #[test]
    fn intra_partition_refs_are_not() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(2), oid(9), pid(2));
        assert_eq!(rs.entry_count(pid(2)), 0);
    }

    #[test]
    fn remove_erases_specific_slot() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(0), oid(9), pid(1));
        rs.insert(oid(1), s(1), pid(0), oid(9), pid(1));
        rs.remove(oid(1), s(0), pid(1));
        assert_eq!(rs.entry_count(pid(1)), 1);
        // The surviving entry still makes o9 a root of P1.
        assert_eq!(rs.external_targets(pid(1)), vec![oid(9)]);
    }

    #[test]
    fn targets_are_deduped() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(0), oid(9), pid(1));
        rs.insert(oid(2), s(0), pid(0), oid(9), pid(1));
        rs.insert(oid(2), s(1), pid(0), oid(8), pid(1));
        assert_eq!(rs.external_targets(pid(1)), vec![oid(8), oid(9)]);
        assert_eq!(rs.entry_count(pid(1)), 3);
        assert_eq!(rs.total_entries(), 3);
    }

    #[test]
    fn retain_targets_filters() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(0), oid(9), pid(1));
        rs.insert(oid(2), s(0), pid(0), oid(8), pid(1));
        rs.retain_targets(pid(1), |t| t == oid(9));
        assert_eq!(rs.external_targets(pid(1)), vec![oid(9)]);
    }

    #[test]
    fn remove_on_unknown_partition_is_noop() {
        let mut rs = RemSets::new();
        rs.remove(oid(1), s(0), pid(7));
        assert_eq!(rs.entry_count(pid(7)), 0);
    }

    #[test]
    fn reinsert_overwrites_target() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(0), oid(9), pid(1));
        rs.insert(oid(1), s(0), pid(0), oid(8), pid(1));
        assert_eq!(rs.entry_count(pid(1)), 1);
        assert_eq!(rs.external_targets(pid(1)), vec![oid(8)]);
    }

    #[test]
    fn structural_audit_passes_under_churn() {
        let mut rs = RemSets::new();
        rs.check_structure()
            .expect("empty sets are structurally ok");
        for round in 0..3u64 {
            for i in 0..150u64 {
                rs.insert(oid(i), s(round as u32), pid(0), oid(500 + i), pid(1));
            }
            for i in (0..150u64).step_by(3) {
                rs.remove(oid(i), s(round as u32), pid(1));
            }
            rs.check_structure().expect("audit after churn round");
        }
        rs.retain_targets(pid(1), |t| t.raw() % 2 == 0);
        rs.check_structure().expect("audit after retain");
    }

    #[test]
    fn table_survives_growth_and_tombstone_churn() {
        let mut rs = RemSets::new();
        // Enough inserts to force several rehashes, interleaved with
        // removals so tombstones accumulate on probe paths.
        for round in 0..4u64 {
            for i in 0..200u64 {
                rs.insert(oid(i), s(round as u32), pid(0), oid(1000 + i), pid(1));
            }
            for i in (0..200u64).step_by(2) {
                rs.remove(oid(i), s(round as u32), pid(1));
            }
        }
        assert_eq!(rs.entry_count(pid(1)), 4 * 100);
        let targets = rs.external_targets(pid(1));
        let expected: Vec<ObjectId> = (0..200u64)
            .filter(|i| i % 2 == 1)
            .map(|i| oid(1000 + i))
            .collect();
        assert_eq!(targets, expected);
    }
}
