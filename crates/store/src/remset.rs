//! Remembered sets: per-partition records of incoming cross-partition
//! references.
//!
//! Partitioned collection treats every reference into the collected
//! partition from *outside* it as a root (plus global roots resident
//! inside), and does not traverse pointers leaving the partition. The
//! remembered set therefore tracks *physical* pointers — including those
//! held by objects that are already unreachable — because the collector
//! cannot know a remote holder is garbage. This is the standard
//! conservatism of partitioned GC: garbage chains that cross partitions are
//! reclaimed only once the referencing partition is collected first.

use std::collections::HashMap;

use odbgc_trace::{ObjectId, SlotIdx};

use crate::ids::PartitionId;

/// One remembered reference: a slot of `src` (in another partition)
/// pointing at `target` (in this set's partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemEntry {
    /// The referencing object (in another partition).
    pub src: ObjectId,
    /// The slot of `src` holding the pointer.
    pub slot: SlotIdx,
}

/// Remembered sets for all partitions.
#[derive(Debug, Default)]
pub struct RemSets {
    /// `sets[p]` maps (src, slot) → target for every cross-partition
    /// pointer into partition `p`.
    sets: Vec<HashMap<RemEntry, ObjectId>>,
}

impl RemSets {
    /// Empty remembered sets.
    pub fn new() -> Self {
        RemSets::default()
    }

    fn ensure(&mut self, p: PartitionId) -> &mut HashMap<RemEntry, ObjectId> {
        if self.sets.len() <= p.index() {
            self.sets.resize_with(p.index() + 1, HashMap::new);
        }
        &mut self.sets[p.index()]
    }

    /// Records that `src.slots[slot]` (src in `src_partition`) now points at
    /// `target` living in `target_partition`. Intra-partition pointers are
    /// not remembered.
    pub fn insert(
        &mut self,
        src: ObjectId,
        slot: SlotIdx,
        src_partition: PartitionId,
        target: ObjectId,
        target_partition: PartitionId,
    ) {
        if src_partition == target_partition {
            return;
        }
        self.ensure(target_partition)
            .insert(RemEntry { src, slot }, target);
    }

    /// Removes the remembered entry for `src.slots[slot]` pointing into
    /// `target_partition`, if present.
    pub fn remove(&mut self, src: ObjectId, slot: SlotIdx, target_partition: PartitionId) {
        if let Some(set) = self.sets.get_mut(target_partition.index()) {
            set.remove(&RemEntry { src, slot });
        }
    }

    /// The distinct target objects referenced into `p` from outside — the
    /// external component of `p`'s collection roots.
    pub fn external_targets(&self, p: PartitionId) -> Vec<ObjectId> {
        match self.sets.get(p.index()) {
            Some(set) => {
                let mut v: Vec<ObjectId> = set.values().copied().collect();
                v.sort_unstable();
                v.dedup();
                v
            }
            None => Vec::new(),
        }
    }

    /// Number of remembered entries into `p`.
    pub fn entry_count(&self, p: PartitionId) -> usize {
        self.sets.get(p.index()).map_or(0, HashMap::len)
    }

    /// Drops every entry into `p` whose target satisfies `pred`. Used after
    /// a collection to forget references to destroyed objects.
    pub fn retain_targets(&mut self, p: PartitionId, mut pred: impl FnMut(ObjectId) -> bool) {
        if let Some(set) = self.sets.get_mut(p.index()) {
            set.retain(|_, target| pred(*target));
        }
    }

    /// Total remembered entries across all partitions (space-overhead
    /// metric).
    pub fn total_entries(&self) -> usize {
        self.sets.iter().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> PartitionId {
        PartitionId::new(n)
    }
    fn oid(n: u64) -> ObjectId {
        ObjectId::new(n)
    }
    fn s(n: u32) -> SlotIdx {
        SlotIdx::new(n)
    }

    #[test]
    fn cross_partition_refs_are_remembered() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(0), oid(9), pid(1));
        assert_eq!(rs.external_targets(pid(1)), vec![oid(9)]);
        assert_eq!(rs.entry_count(pid(1)), 1);
        assert_eq!(rs.external_targets(pid(0)), Vec::<ObjectId>::new());
    }

    #[test]
    fn intra_partition_refs_are_not() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(2), oid(9), pid(2));
        assert_eq!(rs.entry_count(pid(2)), 0);
    }

    #[test]
    fn remove_erases_specific_slot() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(0), oid(9), pid(1));
        rs.insert(oid(1), s(1), pid(0), oid(9), pid(1));
        rs.remove(oid(1), s(0), pid(1));
        assert_eq!(rs.entry_count(pid(1)), 1);
        // The surviving entry still makes o9 a root of P1.
        assert_eq!(rs.external_targets(pid(1)), vec![oid(9)]);
    }

    #[test]
    fn targets_are_deduped() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(0), oid(9), pid(1));
        rs.insert(oid(2), s(0), pid(0), oid(9), pid(1));
        rs.insert(oid(2), s(1), pid(0), oid(8), pid(1));
        assert_eq!(rs.external_targets(pid(1)), vec![oid(8), oid(9)]);
        assert_eq!(rs.entry_count(pid(1)), 3);
        assert_eq!(rs.total_entries(), 3);
    }

    #[test]
    fn retain_targets_filters() {
        let mut rs = RemSets::new();
        rs.insert(oid(1), s(0), pid(0), oid(9), pid(1));
        rs.insert(oid(2), s(0), pid(0), oid(8), pid(1));
        rs.retain_targets(pid(1), |t| t == oid(9));
        assert_eq!(rs.external_targets(pid(1)), vec![oid(9)]);
    }

    #[test]
    fn remove_on_unknown_partition_is_noop() {
        let mut rs = RemSets::new();
        rs.remove(oid(1), s(0), pid(7));
        assert_eq!(rs.entry_count(pid(7)), 0);
    }
}
