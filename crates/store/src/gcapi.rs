//! Types exchanged between the store and the collector.

use crate::ids::PartitionId;

/// Read-only per-partition facts a partition-selection policy may consult.
///
/// `garbage_bytes` is oracle knowledge (exact, from the incremental
/// tracker) and is exposed only so that oracle baselines and tests can use
/// it; realizable policies must restrict themselves to the other fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSnapshot {
    /// The partition described.
    pub id: PartitionId,
    /// Pointer overwrites into this partition since its last collection.
    pub overwrites: u64,
    /// Bytes in use (live + garbage) — the append high-water mark.
    pub occupied_bytes: u32,
    /// Partition capacity in bytes.
    pub capacity: u32,
    /// Number of resident objects (live + garbage).
    pub residents: usize,
    /// Times this partition has been collected.
    pub collections: u64,
    /// Exact garbage bytes resident here (oracle only).
    pub garbage_bytes: u64,
    /// Exact live bytes resident here (oracle only).
    pub live_bytes: u64,
}

/// A swept-but-not-finalized collection: the output of
/// [`crate::Store::sweep_partition`], consumed by
/// [`crate::Store::finish_collection`].
///
/// Between the two calls the partition's objects are already destroyed
/// and compacted, but the cross-store effects — remembered-set pruning,
/// collector I/O charges, buffer invalidation, allocator refresh — have
/// not yet been applied. A packet-graph collector uses the split to run
/// the sweep as one mutable bucket and the finalize/remset-update as the
/// next, without changing the operation order of the fused
/// [`crate::Store::apply_collection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a pending sweep must be finished with Store::finish_collection"]
pub struct PendingSweep {
    /// The swept partition.
    pub partition: PartitionId,
    /// Bytes physically reclaimed (sizes of destroyed objects).
    pub bytes_reclaimed: u64,
    /// Objects destroyed.
    pub objects_destroyed: usize,
    /// Objects that survived (copied/compacted).
    pub objects_survived: usize,
    /// Pages the partition occupied before the sweep — the collector's
    /// read charge, payable at finalize.
    pub occupied_pages_before: u64,
    /// The partition's pointer-overwrite count at the moment of
    /// collection (before its reset).
    pub overwrites_at_collection: u64,
}

/// Result of applying a collection to one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectionApplied {
    /// The collected partition.
    pub partition: PartitionId,
    /// Bytes physically reclaimed (sizes of destroyed objects).
    pub bytes_reclaimed: u64,
    /// Bytes remaining in the partition after compaction.
    pub bytes_after: u64,
    /// Objects destroyed.
    pub objects_destroyed: usize,
    /// Objects that survived (copied/compacted).
    pub objects_survived: usize,
    /// Page reads charged to the collector for this collection.
    pub gc_reads: u64,
    /// Page writes charged to the collector for this collection.
    pub gc_writes: u64,
    /// The partition's pointer-overwrite count at the moment of collection
    /// (before its reset) — the denominator of the FGS/HB estimator's
    /// garbage-per-pointer-overwrite behavior metric.
    pub overwrites_at_collection: u64,
}

impl CollectionApplied {
    /// Collector I/O for this collection.
    pub fn gc_io(&self) -> u64 {
        self.gc_reads + self.gc_writes
    }

    /// Bytes reclaimed per overwrite observed on this partition (the
    /// current-behavior `GPPO` sample), or `None` when no overwrites were
    /// recorded.
    pub fn gppo(&self) -> Option<f64> {
        if self.overwrites_at_collection == 0 {
            None
        } else {
            Some(self.bytes_reclaimed as f64 / self.overwrites_at_collection as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gppo_handles_zero_overwrites() {
        let mut c = CollectionApplied {
            partition: PartitionId::new(0),
            bytes_reclaimed: 600,
            bytes_after: 100,
            objects_destroyed: 3,
            objects_survived: 1,
            gc_reads: 12,
            gc_writes: 2,
            overwrites_at_collection: 0,
        };
        assert_eq!(c.gppo(), None);
        assert_eq!(c.gc_io(), 14);
        c.overwrites_at_collection = 6;
        assert_eq!(c.gppo(), Some(100.0));
    }
}
