//! The store facade: trace replay, I/O charging, garbage tracking, and the
//! collection-application entry point used by the collector.

use std::collections::BTreeSet;

use odbgc_trace::{Event, ObjectId, SlotIdx};

use crate::alloc;
use crate::buffer::{BufferPool, BufferStats};
use crate::config::{OverwriteSemantics, StoreConfig};
use crate::error::StoreError;
use crate::gcapi::{CollectionApplied, PartitionSnapshot, PendingSweep};
use crate::ids::{page_span, PageKey, PartitionId};
use crate::io::{IoClass, IoLedger};
use crate::object::{ObjState, ObjectInfo, PackedSlot};
use crate::partition::Partition;
use crate::remset::RemSets;
use crate::tracker::GarbageLedger;

/// What applying one event did, for callers that want per-event deltas
/// without re-querying counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Pointer overwrites this event contributed to the overwrite clock
    /// (0 or 1).
    pub overwrites: u32,
    /// Bytes that became garbage as a direct consequence of this event.
    pub garbage_created: u64,
}

/// The result of a full reachability scan ([`Store::compute_reachable`]):
/// a dense bitmap over object ids. Replaces the old `HashSet<ObjectId>`
/// return — membership is an array index, iteration is a linear scan.
#[derive(Debug, Clone)]
pub struct ReachSet {
    bits: Vec<bool>,
    len: usize,
}

impl ReachSet {
    /// Is `id` reachable?
    pub fn contains(&self, id: ObjectId) -> bool {
        self.bits.get(id.raw() as usize).copied().unwrap_or(false)
    }

    /// Number of reachable objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is reachable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The reachable ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| ObjectId::new(i as u64))
    }
}

/// A partitioned object store replaying database events.
///
/// See the crate docs for the model. All mutation goes through
/// [`Store::apply`] (application events) and [`Store::apply_collection`]
/// (the collector).
///
/// ```
/// use odbgc_store::{Store, StoreConfig};
/// use odbgc_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let root = b.create_unlinked(64, 1);
/// b.root_add(root);
/// let child = b.create_unlinked(256, 0);
/// b.slot_write(root, odbgc_trace::SlotIdx::new(0), Some(child));
/// b.slot_clear(root, odbgc_trace::SlotIdx::new(0)); // child dies
///
/// let mut store = Store::new(StoreConfig::tiny());
/// for ev in b.finish().iter() {
///     store.apply(ev).unwrap();
/// }
/// assert_eq!(store.garbage_bytes(), 256);
/// assert_eq!(store.overwrite_clock(), 1); // only the kill overwrote
/// assert!(store.io().app_total() > 0);    // replay charged page I/O
/// ```
#[derive(Debug)]
pub struct Store {
    config: StoreConfig,
    /// Object table indexed by raw object id (ids are dense in practice).
    objects: Vec<Option<ObjectInfo>>,
    partitions: Vec<Partition>,
    remsets: RemSets,
    buffer: BufferPool,
    io: IoLedger,
    roots: BTreeSet<ObjectId>,
    garbage: GarbageLedger,
    /// Total pointer overwrites (the SAGA time base).
    overwrite_clock: u64,
    /// Total bytes ever allocated (the allocation time base of the
    /// programming-language-style baseline policy).
    alloc_clock: u64,
    /// Total live bytes across partitions.
    live_bytes: u64,
    /// Objects currently present (live + garbage), for O(1) census.
    present_objects: u64,
    /// Sum of partition capacities (`DBSize`), maintained so the
    /// simulator can sample it every event without an O(partitions) scan.
    db_size: u64,
    /// Sum of outstanding per-partition overwrite counters (`Σ PO(p)`),
    /// maintained for the same reason.
    outstanding_overwrites: u64,
    /// Last visit epoch handed out by [`Store::begin_visit_epoch`].
    /// Objects whose `mark_epoch` equals the current traversal's epoch
    /// are "visited"; a new traversal is an O(1) counter bump, not an
    /// O(visited) set clear.
    mark_epoch: u32,
    /// Reusable stack for the refcount cascade and reachability marking.
    /// Always left empty between uses.
    cascade_scratch: Vec<ObjectId>,
    /// Reusable buffer for the doomed-object list of a collection.
    doomed_scratch: Vec<ObjectId>,
    /// First-fit allocation cursor: every partition below this index has
    /// zero free bytes. See [`alloc::place`].
    alloc_cursor: usize,
    /// Flat copy of each partition's free bytes, kept in lockstep with
    /// `partitions`. The first-fit scan reads this dense array instead of
    /// striding over the much larger `Partition` structs.
    free_cache: Vec<u32>,
    /// `log2(page_size)` when the page size is a power of two (it always
    /// is in practice), letting the per-event page math shift instead of
    /// divide.
    page_shift: Option<u32>,
    /// Every object's pointer slots, packed end to end. An object's
    /// [`ObjectInfo::slot_range`] addresses its span. One store-wide
    /// vector replaces a per-object boxed slice, so creating an object
    /// is an amortized-free `extend` instead of a heap allocation (and
    /// dropping the store frees one buffer instead of one per object).
    /// Slot counts are immutable after creation, so spans never move.
    slot_arena: Vec<PackedSlot>,
}

impl Store {
    /// An empty store with the given geometry.
    pub fn new(config: StoreConfig) -> Self {
        config.validate();
        let buffer = BufferPool::new(config.buffer_pages);
        let page_shift = config
            .page_size
            .is_power_of_two()
            .then(|| config.page_size.trailing_zeros());
        Store {
            config,
            objects: Vec::new(),
            partitions: Vec::new(),
            remsets: RemSets::new(),
            buffer,
            io: IoLedger::new(),
            roots: BTreeSet::new(),
            garbage: GarbageLedger::new(),
            overwrite_clock: 0,
            alloc_clock: 0,
            live_bytes: 0,
            present_objects: 0,
            db_size: 0,
            outstanding_overwrites: 0,
            mark_epoch: 0,
            cascade_scratch: Vec::new(),
            doomed_scratch: Vec::new(),
            alloc_cursor: 0,
            free_cache: Vec::new(),
            page_shift,
            slot_arena: Vec::new(),
        }
    }

    /// The store configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Object-table helpers
    // ------------------------------------------------------------------

    fn info(&self, id: ObjectId) -> Result<&ObjectInfo, StoreError> {
        match self.objects.get(id.raw() as usize) {
            Some(Some(info)) => Ok(info),
            _ => Err(StoreError::UnknownObject(id)),
        }
    }

    fn info_mut(&mut self, id: ObjectId) -> Result<&mut ObjectInfo, StoreError> {
        match self.objects.get_mut(id.raw() as usize) {
            Some(Some(info)) => Ok(info),
            _ => Err(StoreError::UnknownObject(id)),
        }
    }

    /// Checks the object may legally be touched by the application.
    fn check_touchable(&self, id: ObjectId) -> Result<&ObjectInfo, StoreError> {
        let info = self.info(id)?;
        match info.state {
            ObjState::Live => Ok(info),
            ObjState::Garbage => Err(StoreError::TouchedGarbage(id)),
            ObjState::Destroyed => Err(StoreError::UseAfterFree(id)),
        }
    }

    // ------------------------------------------------------------------
    // Visit epochs
    // ------------------------------------------------------------------

    /// Starts a new visit epoch and returns it. An object is "visited" in
    /// the current traversal iff its `mark_epoch` equals the returned
    /// value, so starting a traversal costs O(1) instead of clearing (or
    /// hashing into) a visited set.
    ///
    /// On the (astronomically rare) wraparound at `u32::MAX`, every
    /// object's mark is reset to 0 — the reserved "never marked" value —
    /// and epochs restart at 1, so a stale mark can never alias a fresh
    /// epoch.
    pub fn begin_visit_epoch(&mut self) -> u32 {
        if self.mark_epoch == u32::MAX {
            for info in self.objects.iter_mut().flatten() {
                info.mark_epoch = 0;
            }
            self.mark_epoch = 0;
        }
        self.mark_epoch += 1;
        self.mark_epoch
    }

    /// Marks `id` visited in `epoch`. Returns `true` iff the object
    /// exists and was not already marked (i.e. this call marked it).
    pub fn try_mark(&mut self, id: ObjectId, epoch: u32) -> bool {
        match self.objects.get_mut(id.raw() as usize) {
            Some(Some(info)) if info.mark_epoch != epoch => {
                info.mark_epoch = epoch;
                true
            }
            _ => false,
        }
    }

    /// For every non-null slot target of `cur` that resides in partition
    /// `p` and is not yet marked in `epoch`: marks it and calls `f` with
    /// it, in slot order. The single-lookup equivalent of the old
    /// "partition check + visited-set insert" Cheney step.
    pub fn mark_unvisited_children(
        &mut self,
        cur: ObjectId,
        p: PartitionId,
        epoch: u32,
        mut f: impl FnMut(ObjectId),
    ) {
        let range = self
            .objects
            .get(cur.raw() as usize)
            .and_then(|s| s.as_ref())
            .expect("resident object")
            .slot_range();
        for i in range {
            let Some(t) = self.slot_arena[i].get() else {
                continue;
            };
            match self.objects.get_mut(t.raw() as usize) {
                Some(Some(info)) if info.partition == p && info.mark_epoch != epoch => {
                    info.mark_epoch = epoch;
                    f(t);
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Buffer / I/O helpers
    // ------------------------------------------------------------------

    /// Touches the pages covering `[offset, offset+size)` of `partition`.
    fn touch_extent(
        &mut self,
        partition: PartitionId,
        offset: u32,
        size: u32,
        dirty: bool,
        class: IoClass,
    ) {
        let (first, last) = match self.page_shift {
            Some(s) => (offset >> s, (offset + size - 1) >> s),
            None => page_span(offset, size, self.config.page_size),
        };
        for page in first..=last {
            self.buffer
                .touch(PageKey::new(partition, page), dirty, class, &mut self.io);
        }
    }

    /// Touches all pages of an object.
    fn touch_object(&mut self, id: ObjectId, dirty: bool) {
        let info = self.info(id).expect("caller validated id");
        let (partition, offset, size) = (info.partition, info.offset, info.size);
        self.touch_extent(partition, offset, size, dirty, IoClass::App);
    }

    // ------------------------------------------------------------------
    // Reference counting / garbage cascade
    // ------------------------------------------------------------------

    /// Counts a new incoming reference. The first reference an object ever
    /// receives *replaces* its birth pin (the creating program register is
    /// assumed dead once the object is linked into the database), so the
    /// count is unchanged in that case.
    ///
    /// Returns the target's partition — callers on the slot-write path
    /// need it for remset maintenance and would otherwise pay a second
    /// object-table lookup.
    fn incr_ref(&mut self, id: ObjectId) -> PartitionId {
        self.incr_ref_checked(id)
            .expect("refcount target must be validated by the caller")
    }

    /// [`Store::incr_ref`] with the touchability check folded into its
    /// lookup: the slot-write path would otherwise pay two object-table
    /// lookups (validate, then count) for every non-null store.
    fn incr_ref_checked(&mut self, id: ObjectId) -> Result<PartitionId, StoreError> {
        let info = match self.objects.get_mut(id.raw() as usize) {
            Some(Some(info)) => info,
            _ => return Err(StoreError::UnknownObject(id)),
        };
        match info.state {
            ObjState::Live => {}
            ObjState::Garbage => return Err(StoreError::TouchedGarbage(id)),
            ObjState::Destroyed => return Err(StoreError::UseAfterFree(id)),
        }
        let p = info.partition;
        if info.birth_pin {
            info.birth_pin = false;
            let pins = &mut self.partitions[p.index()].pinned_residents;
            let pos = pins
                .iter()
                .position(|&x| x == id)
                .expect("pinned-resident index out of sync");
            pins.swap_remove(pos);
        } else {
            info.refcount += 1;
        }
        Ok(p)
    }

    /// Decrements `id`'s reference count; if it reaches zero while live,
    /// the object becomes garbage and its own references die (cascade).
    /// Returns bytes of garbage created by the cascade.
    ///
    /// The cascade runs on the store-owned scratch stack (no allocation)
    /// and does the decrement, the garbage transition, and the child
    /// discovery on a single object-table lookup per visited object.
    fn decr_ref(&mut self, id: ObjectId) -> u64 {
        self.decr_ref_tracked(id).1
    }

    /// [`Store::decr_ref`], additionally returning `id`'s partition read
    /// off the lookup that performs the first decrement — the slot-write
    /// path needs it for remset maintenance and would otherwise pay a
    /// separate object-table lookup.
    fn decr_ref_tracked(&mut self, id: ObjectId) -> (PartitionId, u64) {
        let mut id_partition = None;
        let mut created = 0;
        let mut stack = std::mem::take(&mut self.cascade_scratch);
        debug_assert!(stack.is_empty(), "cascade scratch left dirty");
        stack.push(id);
        while let Some(cur) = stack.pop() {
            let info = self
                .objects
                .get_mut(cur.raw() as usize)
                .and_then(Option::as_mut)
                .expect("refcount target must exist");
            if id_partition.is_none() {
                // First pop is `id` itself.
                id_partition = Some(info.partition);
            }
            debug_assert!(info.refcount > 0, "refcount underflow on {cur}");
            info.refcount -= 1;
            if info.refcount == 0 && info.state == ObjState::Live {
                info.state = ObjState::Garbage;
                let (size, partition) = (u64::from(info.size), info.partition);
                let range = info.slot_range();
                // The dead object's outgoing references no longer count.
                stack.extend(self.slot_arena[range].iter().filter_map(|s| s.get()));
                let part = &mut self.partitions[partition.index()];
                part.live_bytes -= size;
                part.garbage_bytes += size;
                self.live_bytes -= size;
                self.garbage.record_generated(size);
                created += size;
            }
        }
        self.cascade_scratch = stack;
        (id_partition.expect("loop ran at least once"), created)
    }

    /// Marks a live object as garbage, updating ledgers. Does *not* touch
    /// reference counts. Returns the object's size.
    fn transition_to_garbage(&mut self, id: ObjectId) -> u64 {
        let info = self.info_mut(id).expect("object must exist");
        debug_assert_eq!(info.state, ObjState::Live);
        info.state = ObjState::Garbage;
        let (size, partition) = (u64::from(info.size), info.partition);
        self.partitions[partition.index()].live_bytes -= size;
        self.partitions[partition.index()].garbage_bytes += size;
        self.live_bytes -= size;
        self.garbage.record_generated(size);
        size
    }

    // ------------------------------------------------------------------
    // Event application
    // ------------------------------------------------------------------

    /// Applies one application event, charging I/O and updating garbage
    /// accounting.
    pub fn apply(&mut self, ev: &Event) -> Result<ApplyOutcome, StoreError> {
        match ev {
            Event::Create { id, size, slots } => self.apply_create(*id, *size, slots),
            Event::Access { id } => {
                self.check_touchable(*id)?;
                self.touch_object(*id, false);
                Ok(ApplyOutcome::default())
            }
            Event::SlotWrite { src, slot, new } => self.apply_slot_write(*src, *slot, *new),
            Event::RootAdd { id } => {
                let info = self.check_touchable(*id)?;
                if info.is_root {
                    return Err(StoreError::DuplicateRoot(*id));
                }
                let p = info.partition;
                self.info_mut(*id).expect("validated").is_root = true;
                self.roots.insert(*id);
                self.partitions[p.index()].root_residents.push(*id);
                self.incr_ref(*id);
                Ok(ApplyOutcome::default())
            }
            Event::RootRemove { id } => {
                let info = self.check_touchable(*id)?;
                if !info.is_root {
                    return Err(StoreError::NotARoot(*id));
                }
                let p = info.partition;
                self.info_mut(*id).expect("validated").is_root = false;
                self.roots.remove(id);
                let roots = &mut self.partitions[p.index()].root_residents;
                let pos = roots
                    .iter()
                    .position(|x| x == id)
                    .expect("root-resident index out of sync");
                roots.swap_remove(pos);
                let garbage_created = self.decr_ref(*id);
                Ok(ApplyOutcome {
                    overwrites: 0,
                    garbage_created,
                })
            }
            Event::Phase { .. } => Ok(ApplyOutcome::default()),
        }
    }

    fn apply_create(
        &mut self,
        id: ObjectId,
        size: u32,
        slots: &[Option<ObjectId>],
    ) -> Result<ApplyOutcome, StoreError> {
        if size == 0 {
            return Err(StoreError::ZeroSizeObject(id));
        }
        if matches!(self.objects.get(id.raw() as usize), Some(Some(_))) {
            return Err(StoreError::DuplicateId(id));
        }
        // Validate targets before mutating anything.
        for target in slots.iter().flatten() {
            self.check_touchable(*target)?;
        }

        let partitions_before = self.partitions.len();
        let (partition, offset) = alloc::place(
            &mut self.partitions,
            &mut self.free_cache,
            &self.config,
            &mut self.alloc_cursor,
            size,
        );
        for p in &self.partitions[partitions_before..] {
            self.db_size += u64::from(p.capacity);
        }
        let idx = id.raw() as usize;
        if self.objects.len() <= idx {
            self.objects.resize_with(idx + 1, || None);
        }
        let slots_start =
            u32::try_from(self.slot_arena.len()).expect("slot arena exceeds u32 range");
        self.slot_arena
            .extend(slots.iter().map(|s| PackedSlot::pack(*s)));
        self.objects[idx] = Some(ObjectInfo::new(
            size,
            partition,
            offset,
            slots_start,
            slots.len() as u32,
        ));
        let part = &mut self.partitions[partition.index()];
        part.live_bytes += u64::from(size);
        part.residents.push(id);
        part.pinned_residents.push(id); // newborns carry the birth pin
        self.live_bytes += u64::from(size);
        self.present_objects += 1;
        self.alloc_clock += u64::from(size);

        // Initial pointer stores: count references and remember
        // cross-partition edges, but these are not overwrites.
        for (i, target) in slots.iter().enumerate() {
            if let Some(t) = target {
                let tp = self.incr_ref(*t);
                self.remsets
                    .insert(id, SlotIdx::new(i as u32), partition, *t, tp);
            }
        }

        self.touch_extent(partition, offset, size, true, IoClass::App);
        Ok(ApplyOutcome::default())
    }

    fn apply_slot_write(
        &mut self,
        src: ObjectId,
        slot: SlotIdx,
        new: Option<ObjectId>,
    ) -> Result<ApplyOutcome, StoreError> {
        // One validating lookup of `src` yields everything the write
        // needs: partition and offset for the header touch, the old slot
        // value, and the bounds check.
        let info = self.check_touchable(src)?;
        let slot_count = info.slots_len as usize;
        if slot.index() >= slot_count {
            return Err(StoreError::SlotOutOfBounds {
                object: src,
                slot,
                slot_count,
            });
        }
        let (src_partition, src_offset) = (info.partition, info.offset);
        let arena_idx = info.slots_start as usize + slot.index();
        let old = self.slot_arena[arena_idx].get();

        // Count the incoming reference first: the validating lookup
        // doubles as the touchability check (one object-table access,
        // not two), and installing the new reference before the old one
        // is released means a self-assignment never sees a transient
        // zero refcount. Nothing has been mutated yet if this errors.
        let new_partition = match new {
            Some(n) => {
                let np = self.incr_ref_checked(n)?;
                self.remsets.insert(src, slot, src_partition, n, np);
                Some(np)
            }
            None => None,
        };

        // The slot write hits the object header page.
        self.touch_extent(src_partition, src_offset, 1, true, IoClass::App);
        self.slot_arena[arena_idx] = PackedSlot::pack(new);

        let mut outcome = ApplyOutcome::default();
        match self.config.overwrite_semantics {
            OverwriteSemantics::NonNullOld => {
                if old.is_some() {
                    outcome.overwrites = 1;
                }
            }
            OverwriteSemantics::AllStores => outcome.overwrites = 1,
        }
        self.overwrite_clock += u64::from(outcome.overwrites);

        if let Some(o) = old {
            let (old_partition, garbage_created) = self.decr_ref_tracked(o);
            // If the new pointer targets a different partition (or is
            // null), the old remembered entry must go; if it targets the
            // same partition the insert above already replaced it.
            if new_partition != Some(old_partition) {
                self.remsets.remove(src, slot, old_partition);
            }
            self.partitions[old_partition.index()].overwrites += 1;
            self.outstanding_overwrites += 1;
            outcome.garbage_created = garbage_created;
        }
        Ok(outcome)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The cumulative page-I/O ledger.
    pub fn io(&self) -> &IoLedger {
        &self.io
    }

    /// Buffer-pool hit/miss statistics.
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Cumulative pointer overwrites (the SAGA time base).
    pub fn overwrite_clock(&self) -> u64 {
        self.overwrite_clock
    }

    /// Cumulative bytes allocated by `Create` events.
    pub fn alloc_clock(&self) -> u64 {
        self.alloc_clock
    }

    /// Pointer overwrites into `p` since it was last collected.
    pub fn partition_overwrites(&self, p: PartitionId) -> u64 {
        self.partitions[p.index()].overwrites
    }

    /// Sum of outstanding per-partition overwrite counters (the FGS state
    /// `Σ PO(p)`). O(1): maintained incrementally, not scanned.
    pub fn total_outstanding_overwrites(&self) -> u64 {
        self.outstanding_overwrites
    }

    /// Number of allocated partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// `DBSize(t)`: allocated storage (sum of partition capacities).
    /// O(1): maintained incrementally, not scanned.
    pub fn db_size_bytes(&self) -> u64 {
        self.db_size
    }

    /// Grows partition `p` by `extra_pages` pages of backing storage,
    /// e.g. to model file-system extension outside object allocation.
    /// `DBSize` grows accordingly.
    pub fn grow_partition(&mut self, p: PartitionId, extra_pages: u32) {
        let added = self.partitions[p.index()].grow(extra_pages, self.config.page_size);
        self.db_size += added;
        self.free_cache[p.index()] = self.partitions[p.index()].free_bytes();
        // Free space appeared below the first-fit cursor; rewind it.
        self.alloc_cursor = self.alloc_cursor.min(p.index());
    }

    /// Bytes occupied by objects (live + garbage).
    pub fn occupied_bytes(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| u64::from(p.high_water))
            .sum()
    }

    /// Bytes of live (reachable) objects.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// `ActGarb(t)` per the incremental tracker.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage.actual()
    }

    /// `TotGarb(t)`: cumulative garbage generated.
    pub fn total_garbage_generated(&self) -> u64 {
        self.garbage.total_generated()
    }

    /// `TotColl(t)`: cumulative garbage collected.
    pub fn total_garbage_collected(&self) -> u64 {
        self.garbage.total_collected()
    }

    /// Objects currently present (live + garbage).
    pub fn present_objects(&self) -> u64 {
        self.present_objects
    }

    /// Current root set, in id order.
    pub fn roots(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.roots.iter().copied()
    }

    /// Is the object present (live or garbage, not destroyed)?
    pub fn is_present(&self, id: ObjectId) -> bool {
        self.info(id).map(|i| i.is_present()).unwrap_or(false)
    }

    /// Is the object live per the tracker?
    pub fn is_live(&self, id: ObjectId) -> bool {
        self.info(id).map(|i| i.is_live()).unwrap_or(false)
    }

    /// The object's slot contents.
    pub fn slots_of(
        &self,
        id: ObjectId,
    ) -> Result<impl Iterator<Item = Option<ObjectId>> + '_, StoreError> {
        Ok(self.slot_arena[self.info(id)?.slot_range()]
            .iter()
            .map(|s| s.get()))
    }

    /// The object's partition.
    pub fn partition_of(&self, id: ObjectId) -> Result<PartitionId, StoreError> {
        Ok(self.info(id)?.partition)
    }

    /// The object's size in bytes.
    pub fn size_of(&self, id: ObjectId) -> Result<u32, StoreError> {
        Ok(self.info(id)?.size)
    }

    /// The object's reference count (test/diagnostic use).
    pub fn refcount_of(&self, id: ObjectId) -> Result<u32, StoreError> {
        Ok(self.info(id)?.refcount)
    }

    /// Objects resident in `p` (live + garbage) in layout order.
    pub fn residents_of(&self, p: PartitionId) -> &[ObjectId] {
        &self.partitions[p.index()].residents
    }

    /// Collection roots for partition `p`: external (remembered)
    /// references into `p` plus global roots resident in `p`.
    pub fn partition_roots(&self, p: PartitionId) -> Vec<ObjectId> {
        let mut roots = Vec::new();
        self.partition_roots_into(p, &mut roots);
        roots
    }

    /// Allocation-free variant of [`Store::partition_roots`]: fills `out`
    /// (cleared first) with the sorted, deduped collection roots of `p`.
    /// O(roots-in-p): the global-root and birth-pin components come from
    /// per-partition indexes maintained on root add/remove and pin drop,
    /// not from scans of all roots and all residents.
    pub fn partition_roots_into(&self, p: PartitionId, out: &mut Vec<ObjectId>) {
        out.clear();
        self.remsets.external_targets_into(p, out);
        let part = &self.partitions[p.index()];
        out.extend_from_slice(&part.root_residents);
        // Birth-pinned residents are held by application registers.
        out.extend_from_slice(&part.pinned_residents);
        out.sort_unstable();
        out.dedup();
    }

    /// Per-partition facts for selection policies.
    pub fn partition_snapshots(&self) -> Vec<PartitionSnapshot> {
        self.partitions
            .iter()
            .enumerate()
            .map(|(i, p)| PartitionSnapshot {
                id: PartitionId::new(i as u32),
                overwrites: p.overwrites,
                occupied_bytes: p.high_water,
                capacity: p.capacity,
                residents: p.residents.len(),
                collections: p.collections,
                garbage_bytes: p.garbage_bytes,
                live_bytes: p.live_bytes,
            })
            .collect()
    }

    /// Total remembered-set entries (space-overhead metric).
    pub fn remset_entries(&self) -> usize {
        self.remsets.total_entries()
    }

    // ------------------------------------------------------------------
    // Exact reachability (oracle / validation)
    // ------------------------------------------------------------------

    /// Computes the set of objects reachable from the root set (including
    /// birth-pinned newborns, which are held by application registers).
    ///
    /// `&self` diagnostic/test entry point backed by a dense bitmap (no
    /// hashing); the mutating per-collection path uses the epoch-marking
    /// [`Store::recompute_garbage_exact`] instead.
    pub fn compute_reachable(&self) -> ReachSet {
        let mut bits = vec![false; self.objects.len()];
        let mut len = 0usize;
        let mut stack: Vec<ObjectId> = self.roots.iter().copied().collect();
        for part in &self.partitions {
            stack.extend_from_slice(&part.pinned_residents);
        }
        while let Some(cur) = stack.pop() {
            let Some(flag) = bits.get_mut(cur.raw() as usize) else {
                continue;
            };
            if *flag {
                continue;
            }
            *flag = true;
            len += 1;
            if let Ok(info) = self.info(cur) {
                debug_assert!(info.is_present());
                stack.extend(
                    self.slot_arena[info.slot_range()]
                        .iter()
                        .filter_map(|s| s.get()),
                );
            }
        }
        ReachSet { bits, len }
    }

    /// Marks every reachable object with a fresh visit epoch and returns
    /// that epoch. Allocation-free: traversal runs on the store-owned
    /// scratch stack, and roots come from the root set plus the
    /// per-partition pinned-resident indexes.
    fn mark_reachable(&mut self) -> u32 {
        let epoch = self.begin_visit_epoch();
        let mut stack = std::mem::take(&mut self.cascade_scratch);
        debug_assert!(stack.is_empty(), "cascade scratch left dirty");
        stack.extend(self.roots.iter().copied());
        for part in &self.partitions {
            stack.extend_from_slice(&part.pinned_residents);
        }
        while let Some(cur) = stack.pop() {
            match self
                .objects
                .get_mut(cur.raw() as usize)
                .and_then(Option::as_mut)
            {
                Some(info) if info.mark_epoch != epoch => {
                    info.mark_epoch = epoch;
                    debug_assert!(info.is_present());
                    let range = info.slot_range();
                    stack.extend(self.slot_arena[range].iter().filter_map(|s| s.get()));
                }
                _ => {}
            }
        }
        self.cascade_scratch = stack;
        epoch
    }

    /// Reconciles the incremental tracker with full reachability, catching
    /// cyclic structures that died without any reference count reaching
    /// zero. Returns `ActGarb` afterwards. Exact but O(objects + edges);
    /// intended to run at collection frequency (the oracle estimator) and
    /// in tests.
    pub fn recompute_garbage_exact(&mut self) -> u64 {
        let epoch = self.mark_reachable();
        let mut found_cycles = false;
        for raw in 0..self.objects.len() {
            let Some(info) = self.objects[raw].as_ref() else {
                continue;
            };
            if info.is_live() && info.mark_epoch != epoch {
                self.transition_to_garbage(ObjectId::new(raw as u64));
                found_cycles = true;
            }
        }
        if found_cycles {
            self.rebuild_refcounts();
        }
        self.garbage.actual()
    }

    /// Recomputes every present object's reference count from live holders
    /// and roots.
    fn rebuild_refcounts(&mut self) {
        let n = self.objects.len();
        let mut counts = vec![0u32; n];
        for info in self.objects.iter().flatten() {
            if info.is_live() {
                for t in self.slot_arena[info.slot_range()]
                    .iter()
                    .filter_map(|s| s.get())
                {
                    counts[t.raw() as usize] += 1;
                }
            }
        }
        for r in &self.roots {
            counts[r.raw() as usize] += 1;
        }
        for (i, slot) in self.objects.iter_mut().enumerate() {
            if let Some(info) = slot {
                if info.is_present() {
                    info.refcount = counts[i] + u32::from(info.birth_pin);
                }
            }
        }
    }

    /// Deep structural audit: re-derives every piece of redundant state
    /// from first principles and compares. Returns the first discrepancy
    /// found. Intended for tests and debugging (O(objects + pointers)).
    ///
    /// Checked invariants:
    /// 1. every cross-partition pointer from a present object has exactly
    ///    one remembered-set entry, and every entry matches a real slot;
    /// 2. every reference count equals live-holder references + root pin
    ///    + birth pin;
    /// 3. partition live/garbage byte tallies and the residents lists
    ///    match the object table, and object extents do not overlap;
    /// 4. the global live/occupied/garbage ledgers equal the per-partition
    ///    sums.
    pub fn check_consistency(&self) -> Result<(), String> {
        // -- remembered sets ------------------------------------------------
        // Structural audit first: if a (parallel) collection tore a
        // table's internals, the semantic checks below could loop or
        // report nonsense.
        self.remsets.check_structure()?;
        let mut expected_entries = 0usize;
        for (raw, slot) in self.objects.iter().enumerate() {
            let Some(info) = slot else { continue };
            if !info.is_present() {
                continue;
            }
            let src = ObjectId::new(raw as u64);
            for (i, target) in self.slot_arena[info.slot_range()].iter().enumerate() {
                let Some(t) = target.get() else { continue };
                let tinfo = self
                    .info(t)
                    .map_err(|e| format!("{src} slot {i} dangles: {e}"))?;
                if !tinfo.is_present() {
                    return Err(format!("{src} slot {i} references destroyed {t}"));
                }
                if tinfo.partition != info.partition {
                    expected_entries += 1;
                    let roots = self.remsets.external_targets(tinfo.partition);
                    if !roots.contains(&t) {
                        return Err(format!(
                            "missing remembered entry for {src} slot {i} -> {t}"
                        ));
                    }
                }
            }
        }
        if expected_entries != self.remsets.total_entries() {
            return Err(format!(
                "remembered sets hold {} entries, expected {}",
                self.remsets.total_entries(),
                expected_entries
            ));
        }

        // -- reference counts -----------------------------------------------
        let mut counts = vec![0u32; self.objects.len()];
        for slot in self.objects.iter() {
            let Some(info) = slot else { continue };
            if info.is_live() {
                for t in self.slot_arena[info.slot_range()]
                    .iter()
                    .filter_map(|s| s.get())
                {
                    counts[t.raw() as usize] += 1;
                }
            }
        }
        for r in &self.roots {
            counts[r.raw() as usize] += 1;
        }
        for (raw, slot) in self.objects.iter().enumerate() {
            let Some(info) = slot else { continue };
            if info.is_present() {
                let expected = counts[raw] + u32::from(info.birth_pin);
                if info.refcount != expected {
                    return Err(format!(
                        "o{raw} refcount {} != expected {expected}",
                        info.refcount
                    ));
                }
            }
        }

        // -- partitions ------------------------------------------------------
        let (mut live_total, mut occupied_total) = (0u64, 0u64);
        for (pi, part) in self.partitions.iter().enumerate() {
            let pid = PartitionId::new(pi as u32);
            let (mut live, mut garbage) = (0u64, 0u64);
            let mut extents: Vec<(u32, u32)> = Vec::with_capacity(part.residents.len());
            for &r in &part.residents {
                let info = self
                    .info(r)
                    .map_err(|e| format!("{pid} resident {r}: {e}"))?;
                if !info.is_present() {
                    return Err(format!("{pid} lists destroyed resident {r}"));
                }
                if info.partition != pid {
                    return Err(format!("{pid} lists {r} homed in {}", info.partition));
                }
                if info.offset + info.size > part.high_water {
                    return Err(format!("{pid} resident {r} extends past high water"));
                }
                extents.push((info.offset, info.size));
                if info.is_live() {
                    live += u64::from(info.size);
                } else {
                    garbage += u64::from(info.size);
                }
            }
            extents.sort_unstable();
            for w in extents.windows(2) {
                if w[0].0 + w[0].1 > w[1].0 {
                    return Err(format!("{pid} has overlapping object extents"));
                }
            }
            if live != part.live_bytes || garbage != part.garbage_bytes {
                return Err(format!(
                    "{pid} tallies live {}/{} garbage {}/{}",
                    part.live_bytes, live, part.garbage_bytes, garbage
                ));
            }
            live_total += live;
            occupied_total += u64::from(part.high_water);
        }
        if live_total != self.live_bytes {
            return Err(format!(
                "global live bytes {} != partition sum {live_total}",
                self.live_bytes
            ));
        }
        if occupied_total != self.occupied_bytes() {
            return Err("occupied-bytes accessor disagrees with partitions".to_owned());
        }
        if self.garbage.actual() != occupied_total - live_total {
            return Err(format!(
                "garbage ledger {} != occupied-live {}",
                self.garbage.actual(),
                occupied_total - live_total
            ));
        }

        // -- per-partition root & pin indexes -------------------------------
        // The indexes partition_roots_into reads must equal a from-scratch
        // derivation: root_residents[p] is exactly the global roots homed
        // in p (destroyed or not, mirroring the root set), and
        // pinned_residents[p] is exactly the birth-pinned residents.
        let mut expected_roots: Vec<Vec<ObjectId>> = vec![Vec::new(); self.partitions.len()];
        for &r in &self.roots {
            let info = self.info(r).map_err(|e| format!("root {r}: {e}"))?;
            expected_roots[info.partition.index()].push(r);
        }
        for (pi, part) in self.partitions.iter().enumerate() {
            let pid = PartitionId::new(pi as u32);
            let mut indexed = part.root_residents.clone();
            indexed.sort_unstable();
            // `expected_roots` is already sorted (root-set iteration order).
            if indexed != expected_roots[pi] {
                return Err(format!(
                    "{pid} root index {:?} != derived {:?}",
                    indexed, expected_roots[pi]
                ));
            }
            let mut pinned = part.pinned_residents.clone();
            pinned.sort_unstable();
            let mut expected_pinned: Vec<ObjectId> = part
                .residents
                .iter()
                .copied()
                .filter(|&r| self.info(r).map(|i| i.birth_pin) == Ok(true))
                .collect();
            expected_pinned.sort_unstable();
            if pinned != expected_pinned {
                return Err(format!(
                    "{pid} pinned index {pinned:?} != derived {expected_pinned:?}"
                ));
            }
        }

        // -- visit epochs ----------------------------------------------------
        // No object may carry a mark from the future; marks beyond the
        // store epoch would alias a later traversal and corrupt it.
        for (raw, slot) in self.objects.iter().enumerate() {
            if let Some(info) = slot {
                if info.mark_epoch > self.mark_epoch {
                    return Err(format!(
                        "o{raw} mark epoch {} exceeds store epoch {}",
                        info.mark_epoch, self.mark_epoch
                    ));
                }
            }
        }

        // -- first-fit free cache --------------------------------------------
        // The dense free-bytes array the allocator scans must mirror the
        // partitions exactly.
        if self.free_cache.len() != self.partitions.len() {
            return Err(format!(
                "free cache covers {} partitions, store has {}",
                self.free_cache.len(),
                self.partitions.len()
            ));
        }
        for (pi, part) in self.partitions.iter().enumerate() {
            if self.free_cache[pi] != part.free_bytes() {
                return Err(format!(
                    "P{pi} free cache {} != actual {}",
                    self.free_cache[pi],
                    part.free_bytes()
                ));
            }
        }

        // -- first-fit cursor ------------------------------------------------
        // Skipping partitions below the cursor is only sound if none of
        // them has free space.
        for (pi, part) in self.partitions.iter().take(self.alloc_cursor).enumerate() {
            if part.free_bytes() > 0 {
                return Err(format!(
                    "P{pi} has {} free bytes below the alloc cursor {}",
                    part.free_bytes(),
                    self.alloc_cursor
                ));
            }
        }
        self.check_counters()
    }

    /// Verifies the maintained O(1) counters against fresh O(partitions)
    /// scans. Cheap enough to run after every event in deep-checked
    /// simulations.
    fn check_counters(&self) -> Result<(), String> {
        let scanned_db: u64 = self.partitions.iter().map(|p| u64::from(p.capacity)).sum();
        if scanned_db != self.db_size {
            return Err(format!(
                "db-size counter {} != capacity scan {scanned_db}",
                self.db_size
            ));
        }
        let scanned_po: u64 = self.partitions.iter().map(|p| p.overwrites).sum();
        if scanned_po != self.outstanding_overwrites {
            return Err(format!(
                "outstanding-overwrite counter {} != scan {scanned_po}",
                self.outstanding_overwrites
            ));
        }
        Ok(())
    }

    /// Panicking wrapper around the counter-vs-scan equivalence check.
    pub fn assert_counters_match(&self) {
        if let Err(msg) = self.check_counters() {
            panic!("store counters diverged: {msg}");
        }
    }

    /// Panicking wrapper around [`Store::check_consistency`].
    pub fn assert_consistent(&self) {
        if let Err(msg) = self.check_consistency() {
            panic!("store inconsistent: {msg}");
        }
    }

    /// Test hook: asserts the incremental tracker agrees with full
    /// reachability. Panics on divergence.
    pub fn assert_garbage_exact(&self) {
        let reachable = self.compute_reachable();
        for (i, slot) in self.objects.iter().enumerate() {
            if let Some(info) = slot {
                let id = ObjectId::new(i as u64);
                match info.state {
                    ObjState::Live => assert!(
                        reachable.contains(id),
                        "{id} tracked live but unreachable (undetected cycle?)"
                    ),
                    ObjState::Garbage => assert!(
                        !reachable.contains(id),
                        "{id} tracked garbage but reachable (tracker unsound!)"
                    ),
                    ObjState::Destroyed => assert!(
                        !reachable.contains(id),
                        "{id} destroyed but reachable (collector unsound!)"
                    ),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Collection application
    // ------------------------------------------------------------------

    /// Applies a collection of partition `p`: every resident *not* in
    /// `survivors` is physically destroyed, the survivors are compacted in
    /// the given order, the partition's overwrite counter resets, its
    /// buffered pages are invalidated, and the collector is charged page
    /// reads for the previously occupied extent plus writes for the
    /// compacted extent.
    ///
    /// `survivors` must be a duplicate-free subset of `p`'s residents (in
    /// the copy order the collector chose); the collector computes it by
    /// tracing from [`Store::partition_roots`]. Panics on a malformed
    /// survivor list — that is a collector bug, not a data condition.
    pub fn apply_collection(
        &mut self,
        p: PartitionId,
        survivors: &[ObjectId],
    ) -> CollectionApplied {
        let pending = self.sweep_partition(p, survivors);
        self.finish_collection(pending)
    }

    /// The sweep half of [`Store::apply_collection`]: destroys every
    /// resident of `p` not in `survivors` and compacts the survivors in
    /// the given order, but defers the cross-store finalization
    /// (remembered-set pruning, collector I/O charges, buffer
    /// invalidation, allocator refresh) to
    /// [`Store::finish_collection`].
    ///
    /// Callers must pass the returned [`PendingSweep`] to
    /// [`Store::finish_collection`] before the next collection or
    /// consistency check; the two calls compose to exactly
    /// [`Store::apply_collection`].
    pub fn sweep_partition(&mut self, p: PartitionId, survivors: &[ObjectId]) -> PendingSweep {
        let occupied_pages_before =
            u64::from(self.partitions[p.index()].occupied_pages(self.config.page_size));
        let overwrites_at_collection = self.partitions[p.index()].overwrites;

        // Validate and mark the survivors in a fresh epoch: residency is
        // one table lookup, duplicate detection is the epoch mark itself.
        let epoch = self.begin_visit_epoch();
        for &s in survivors {
            let info = match self.objects.get_mut(s.raw() as usize) {
                Some(Some(info)) if info.partition == p && info.is_present() => info,
                _ => panic!("survivor {s} is not resident in {p}"),
            };
            assert!(
                info.mark_epoch != epoch,
                "duplicate survivors passed to apply_collection"
            );
            info.mark_epoch = epoch;
        }

        // Doomed = residents not marked as survivors, in layout order.
        let mut doomed = std::mem::take(&mut self.doomed_scratch);
        doomed.clear();
        for &r in &self.partitions[p.index()].residents {
            let info = self.objects[r.raw() as usize]
                .as_ref()
                .expect("resident exists");
            if info.mark_epoch != epoch {
                doomed.push(r);
            }
        }

        // Phase 1: anything still tracked live is cyclic garbage the
        // cascade could not see; transition it (with cascade for its
        // outgoing references) before destroying. The cascade never
        // mutates slot contents, so reading the arena per slot is safe.
        for &d in &doomed {
            if self.objects[d.raw() as usize]
                .as_ref()
                .expect("resident exists")
                .is_live()
            {
                self.transition_to_garbage(d);
                let range = self.objects[d.raw() as usize]
                    .as_ref()
                    .expect("resident exists")
                    .slot_range();
                for i in range {
                    if let Some(t) = self.slot_arena[i].get() {
                        self.decr_ref(t);
                    }
                }
            }
        }

        // Phase 2: physical destruction.
        let mut bytes_reclaimed = 0u64;
        for &d in &doomed {
            let info = self.objects[d.raw() as usize]
                .as_ref()
                .expect("resident exists");
            debug_assert!(info.is_garbage(), "destroying a live object");
            let size = u64::from(info.size);
            let slots_start = info.slots_start as usize;
            let range = info.slot_range();
            // Forget the doomed object's outgoing remembered entries.
            // Intra-partition targets were never remembered (and may be
            // fellow doomed objects already destroyed this collection);
            // cross-partition targets are necessarily still present.
            for i in range {
                if let Some(t) = self.slot_arena[i].get() {
                    let tinfo = self.objects[t.raw() as usize]
                        .as_ref()
                        .expect("slot target exists");
                    let tp = tinfo.partition;
                    if tp != p {
                        debug_assert!(tinfo.is_present(), "doomed object references destroyed {t}");
                        self.remsets
                            .remove(d, SlotIdx::new((i - slots_start) as u32), tp);
                    }
                }
            }
            let info = self.objects[d.raw() as usize]
                .as_mut()
                .expect("resident exists");
            info.state = ObjState::Destroyed;
            info.refcount = 0;
            info.birth_pin = false;
            self.partitions[p.index()].garbage_bytes -= size;
            self.garbage.record_collected(size);
            bytes_reclaimed += size;
            self.present_objects -= 1;
        }

        // Phase 3: compact survivors in the collector's copy order.
        {
            let part = &mut self.partitions[p.index()];
            part.high_water = 0;
            part.residents.clear();
            part.residents.extend_from_slice(survivors);
            part.overwrites = 0;
            part.collections += 1;
            self.outstanding_overwrites -= overwrites_at_collection;
        }
        for &s in survivors {
            let size = self.objects[s.raw() as usize]
                .as_ref()
                .expect("survivor exists")
                .size;
            let offset = self.partitions[p.index()].append(size);
            self.objects[s.raw() as usize]
                .as_mut()
                .expect("survivor exists")
                .offset = offset;
        }

        // Doomed objects lost their birth pins; drop them from the index.
        {
            let objects = &self.objects;
            self.partitions[p.index()].pinned_residents.retain(|&id| {
                objects[id.raw() as usize]
                    .as_ref()
                    .is_some_and(|i| i.birth_pin)
            });
        }

        let objects_destroyed = doomed.len();
        self.doomed_scratch = doomed;

        PendingSweep {
            partition: p,
            bytes_reclaimed,
            objects_destroyed,
            objects_survived: survivors.len(),
            occupied_pages_before,
            overwrites_at_collection,
        }
    }

    /// The finalize half of [`Store::apply_collection`]: prunes the
    /// remembered sets of the swept partition, charges collector I/O,
    /// invalidates the partition's buffered pages, and refreshes the
    /// allocator's view of the reclaimed space.
    pub fn finish_collection(&mut self, pending: PendingSweep) -> CollectionApplied {
        let p = pending.partition;

        // Safety net: no remembered entry may point at a destroyed target.
        let objects = &self.objects;
        self.remsets.retain_targets(p, |t| {
            objects
                .get(t.raw() as usize)
                .and_then(|s| s.as_ref())
                .is_some_and(ObjectInfo::is_present)
        });

        // Phase 4: I/O and buffer effects.
        let occupied_pages_after =
            u64::from(self.partitions[p.index()].occupied_pages(self.config.page_size));
        self.io
            .charge_reads(IoClass::Gc, pending.occupied_pages_before);
        self.io.charge_writes(IoClass::Gc, occupied_pages_after);
        self.buffer.invalidate_partition(p);

        // Compaction may have opened free space below the first-fit
        // cursor; refresh the free cache and rewind the cursor so
        // allocation sees the reclaimed bytes.
        self.free_cache[p.index()] = self.partitions[p.index()].free_bytes();
        self.alloc_cursor = self.alloc_cursor.min(p.index());

        CollectionApplied {
            partition: p,
            bytes_reclaimed: pending.bytes_reclaimed,
            bytes_after: u64::from(self.partitions[p.index()].high_water),
            objects_destroyed: pending.objects_destroyed,
            objects_survived: pending.objects_survived,
            gc_reads: pending.occupied_pages_before,
            gc_writes: occupied_pages_after,
            overwrites_at_collection: pending.overwrites_at_collection,
        }
    }

    /// A read-only, `Send + Sync` view of the store for concurrent trace
    /// packets. See [`StoreView`].
    pub fn view(&self) -> StoreView<'_> {
        StoreView { store: self }
    }
}

/// A read-only view of a [`Store`] safe to share across collector
/// workers.
///
/// The view exposes exactly the traversal surface a trace packet needs
/// — partition roots, slot children, residency — and none of the
/// mutating surface. Crucially, [`StoreView::for_each_unmarked_child_in`]
/// *reads* visit marks but never writes them: during a parallel trace
/// bucket the marks are frozen (they were last written by the sequential
/// reduce of the previous BFS level), so concurrent packets observe a
/// consistent snapshot and the candidate lists they emit are a pure
/// function of the level's frontier.
#[derive(Debug, Clone, Copy)]
pub struct StoreView<'a> {
    store: &'a Store,
}

impl StoreView<'_> {
    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.store.partitions.len()
    }

    /// Capacity in bytes of partition `p`.
    pub fn partition_capacity(&self, p: PartitionId) -> u32 {
        self.store.partitions[p.index()].capacity
    }

    /// Objects resident in `p` (live + garbage) in layout order.
    pub fn residents_of(&self, p: PartitionId) -> &[ObjectId] {
        self.store.residents_of(p)
    }

    /// The byte offset of `id` within its partition. Offsets are unique
    /// per partition and below its capacity, so packets can use them to
    /// index packet-local visited bitmaps without hashing.
    pub fn offset_of(&self, id: ObjectId) -> u32 {
        self.store.objects[id.raw() as usize]
            .as_ref()
            .expect("resident object")
            .offset
    }

    /// Allocation-free collection roots of `p` (sorted, deduped). Same
    /// contract as [`Store::partition_roots_into`].
    pub fn partition_roots_into(&self, p: PartitionId, out: &mut Vec<ObjectId>) {
        self.store.partition_roots_into(p, out);
    }

    /// For every non-null slot target of `cur` that resides in partition
    /// `p` and is not marked in `epoch`: calls `f` with it, in slot
    /// order. The read-only sibling of
    /// [`Store::mark_unvisited_children`] — it *never writes marks*, so
    /// concurrent packets tracing different parents cannot race; the
    /// caller marks (and dedups) the emitted candidates afterwards, in
    /// canonical order.
    pub fn for_each_unmarked_child_in(
        &self,
        cur: ObjectId,
        p: PartitionId,
        epoch: u32,
        mut f: impl FnMut(ObjectId),
    ) {
        let range = self.store.objects[cur.raw() as usize]
            .as_ref()
            .expect("resident object")
            .slot_range();
        for i in range {
            let Some(t) = self.store.slot_arena[i].get() else {
                continue;
            };
            match self.store.objects.get(t.raw() as usize) {
                Some(Some(info)) if info.partition == p && info.mark_epoch != epoch => f(t),
                _ => {}
            }
        }
    }

    /// For every non-null slot target of `cur` that resides in partition
    /// `p`: calls `f` with it, in slot order, with no epoch filter.
    /// Packets that keep a packet-local visited structure (the batched
    /// multi-partition planner) use this instead of the shared epoch
    /// marks.
    pub fn for_each_child_in(&self, cur: ObjectId, p: PartitionId, mut f: impl FnMut(ObjectId)) {
        let range = self.store.objects[cur.raw() as usize]
            .as_ref()
            .expect("resident object")
            .slot_range();
        for i in range {
            let Some(t) = self.store.slot_arena[i].get() else {
                continue;
            };
            match self.store.objects.get(t.raw() as usize) {
                Some(Some(info)) if info.partition == p => f(t),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_trace::TraceBuilder;

    fn tiny() -> Store {
        Store::new(StoreConfig::tiny())
    }

    /// Replays a builder's trace, panicking on any error.
    fn replay(store: &mut Store, trace: &odbgc_trace::Trace) {
        for ev in trace.iter() {
            store.apply(ev).expect("replay");
        }
    }

    #[test]
    fn create_places_and_charges_io() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let a = b.create_unlinked(100, 1);
        replay(&mut s, &b.finish());
        assert_eq!(s.partition_count(), 1);
        assert_eq!(s.live_bytes(), 100);
        assert_eq!(s.occupied_bytes(), 100);
        // 100 bytes on 64-byte pages = 2 pages read into buffer (dirty).
        assert_eq!(s.io().app_reads, 2);
        assert!(s.is_live(a));
    }

    #[test]
    fn access_unknown_object_errors() {
        let mut s = tiny();
        let e = s
            .apply(&Event::Access {
                id: ObjectId::new(5),
            })
            .unwrap_err();
        assert_eq!(e, StoreError::UnknownObject(ObjectId::new(5)));
    }

    #[test]
    fn duplicate_create_errors() {
        let mut s = tiny();
        let ev = Event::Create {
            id: ObjectId::new(0),
            size: 10,
            slots: Box::new([]),
        };
        s.apply(&ev).unwrap();
        assert_eq!(
            s.apply(&ev).unwrap_err(),
            StoreError::DuplicateId(ObjectId::new(0))
        );
    }

    #[test]
    fn zero_size_create_errors() {
        let mut s = tiny();
        let e = s
            .apply(&Event::Create {
                id: ObjectId::new(0),
                size: 0,
                slots: Box::new([]),
            })
            .unwrap_err();
        assert_eq!(e, StoreError::ZeroSizeObject(ObjectId::new(0)));
    }

    #[test]
    fn slot_out_of_bounds_errors() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let a = b.create_unlinked(10, 1);
        replay(&mut s, &b.finish());
        let e = s
            .apply(&Event::SlotWrite {
                src: a,
                slot: SlotIdx::new(1),
                new: None,
            })
            .unwrap_err();
        assert!(matches!(e, StoreError::SlotOutOfBounds { .. }));
    }

    #[test]
    fn overwrite_kills_target_creates_garbage() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(10, 1);
        b.root_add(root);
        let child = b.create_unlinked(50, 0);
        b.slot_write(root, SlotIdx::new(0), Some(child));
        replay(&mut s, &b.finish());
        assert_eq!(s.garbage_bytes(), 0);
        assert_eq!(s.overwrite_clock(), 0); // initial store into null slot

        let out = s
            .apply(&Event::SlotWrite {
                src: root,
                slot: SlotIdx::new(0),
                new: None,
            })
            .unwrap();
        assert_eq!(out.overwrites, 1);
        assert_eq!(out.garbage_created, 50);
        assert_eq!(s.garbage_bytes(), 50);
        assert_eq!(s.overwrite_clock(), 1);
        assert!(!s.is_live(child));
        assert!(s.is_present(child)); // still occupies storage
        s.assert_garbage_exact();
    }

    #[test]
    fn cascade_frees_chain() {
        let mut s = tiny();
        let t = odbgc_trace::synthetic::linear_chain(5, 20, Some(1));
        replay(&mut s, &t);
        // Nodes 2, 3, 4 are detached (the cut cleared node 1's next link).
        assert_eq!(s.garbage_bytes(), 3 * 20);
        s.assert_garbage_exact();
    }

    #[test]
    fn self_assignment_is_safe() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(10, 1);
        b.root_add(root);
        let child = b.create_unlinked(10, 0);
        b.slot_write(root, SlotIdx::new(0), Some(child));
        replay(&mut s, &b.finish());
        // Overwrite the slot with the same pointer: counted as an
        // overwrite, but no garbage.
        let out = s
            .apply(&Event::SlotWrite {
                src: root,
                slot: SlotIdx::new(0),
                new: Some(child),
            })
            .unwrap();
        assert_eq!(out.overwrites, 1);
        assert_eq!(out.garbage_created, 0);
        assert!(s.is_live(child));
        s.assert_garbage_exact();
    }

    #[test]
    fn detached_cycle_is_invisible_to_cascade_but_found_by_recompute() {
        let mut s = tiny();
        replay(&mut s, &odbgc_trace::synthetic::detached_cycle(30));
        // The cascade cannot see the dead 2-cycle.
        assert_eq!(s.garbage_bytes(), 0);
        let exact = s.recompute_garbage_exact();
        assert_eq!(exact, 60);
        s.assert_garbage_exact();
    }

    #[test]
    fn root_remove_frees_subtree() {
        let mut s = tiny();
        let (t, n) = odbgc_trace::synthetic::wide_tree(2, 2, 10);
        replay(&mut s, &t);
        assert_eq!(s.live_bytes(), n as u64 * 10);
        s.apply(&Event::RootRemove {
            id: ObjectId::new(0),
        })
        .unwrap();
        assert_eq!(s.live_bytes(), 0);
        assert_eq!(s.garbage_bytes(), n as u64 * 10);
        s.assert_garbage_exact();
    }

    #[test]
    fn duplicate_root_and_not_a_root_errors() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let a = b.create_unlinked(10, 0);
        b.root_add(a);
        // A second root keeps `a` reachable after its root pin is removed,
        // so the follow-up RootRemove exercises the NotARoot path rather
        // than TouchedGarbage.
        let holder = b.create(10, vec![Some(a)]);
        b.root_add(holder);
        replay(&mut s, &b.finish());
        assert_eq!(
            s.apply(&Event::RootAdd { id: a }).unwrap_err(),
            StoreError::DuplicateRoot(a)
        );
        s.apply(&Event::RootRemove { id: a }).unwrap();
        assert!(s.is_live(a));
        assert_eq!(
            s.apply(&Event::RootRemove { id: a }).unwrap_err(),
            StoreError::NotARoot(a)
        );
    }

    #[test]
    fn touching_garbage_errors() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(10, 1);
        b.root_add(root);
        let child = b.create_unlinked(10, 0);
        b.slot_write(root, SlotIdx::new(0), Some(child));
        b.slot_clear(root, SlotIdx::new(0));
        replay(&mut s, &b.finish());
        assert_eq!(
            s.apply(&Event::Access { id: child }).unwrap_err(),
            StoreError::TouchedGarbage(child)
        );
    }

    #[test]
    fn overwrites_counted_per_old_target_partition() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(10, 2);
        b.root_add(root);
        // Fill partition 0 so the next object lands in partition 1.
        let filler = b.create_unlinked(240, 0);
        let far = b.create_unlinked(100, 0);
        b.slot_write(root, SlotIdx::new(0), Some(filler));
        b.slot_write(root, SlotIdx::new(1), Some(far));
        replay(&mut s, &b.finish());
        let p_far = s.partition_of(far).unwrap();
        assert_ne!(p_far, s.partition_of(root).unwrap());

        s.apply(&Event::SlotWrite {
            src: root,
            slot: SlotIdx::new(1),
            new: None,
        })
        .unwrap();
        assert_eq!(s.partition_overwrites(p_far), 1);
        assert_eq!(s.total_outstanding_overwrites(), 1);
    }

    #[test]
    fn remsets_track_cross_partition_roots() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(10, 1);
        b.root_add(root);
        let _filler = b.create_unlinked(240, 0);
        let far = b.create_unlinked(100, 0);
        b.slot_write(root, SlotIdx::new(0), Some(far));
        replay(&mut s, &b.finish());
        let p_far = s.partition_of(far).unwrap();
        assert_eq!(s.partition_roots(p_far), vec![far]);
        // Root object's own partition has the global root.
        let p_root = s.partition_of(root).unwrap();
        assert!(s.partition_roots(p_root).contains(&root));
    }

    #[test]
    fn reattaching_detached_object_is_an_error() {
        // Once an overwrite detaches an object, the application cannot
        // name it again: re-installing a pointer to garbage must fail.
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(10, 1);
        b.root_add(root);
        let a = b.create_unlinked(50, 0);
        b.slot_write(root, SlotIdx::new(0), Some(a));
        b.slot_clear(root, SlotIdx::new(0)); // a is now garbage
        replay(&mut s, &b.finish());
        assert_eq!(
            s.apply(&Event::SlotWrite {
                src: root,
                slot: SlotIdx::new(0),
                new: Some(a),
            })
            .unwrap_err(),
            StoreError::TouchedGarbage(a)
        );
    }

    #[test]
    fn collection_reclaims_and_charges_gc_io() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(10, 2);
        b.root_add(root);
        let keep = b.create_unlinked(50, 0);
        let dead = b.create_unlinked(60, 0);
        b.slot_write(root, SlotIdx::new(0), Some(keep));
        b.slot_write(root, SlotIdx::new(1), Some(dead));
        b.slot_clear(root, SlotIdx::new(1)); // dead becomes garbage
        replay(&mut s, &b.finish());
        let p = s.partition_of(dead).unwrap();
        assert_eq!(p, s.partition_of(keep).unwrap());
        let occupied_before = s.occupied_bytes();
        assert_eq!(occupied_before, 120);

        // Survivors: root and keep (layout order), dead is doomed.
        let survivors = vec![root, keep];
        let gc_io_before = s.io().gc_total();
        let outcome = s.apply_collection(p, &survivors);

        assert_eq!(outcome.bytes_reclaimed, 60);
        assert_eq!(outcome.objects_destroyed, 1);
        assert_eq!(outcome.objects_survived, 2);
        assert_eq!(outcome.overwrites_at_collection, 1);
        // 120 bytes occupied = 2 pages read; 60 live bytes = 1 page write.
        assert_eq!(outcome.gc_reads, 2);
        assert_eq!(outcome.gc_writes, 1);
        assert_eq!(s.io().gc_total(), gc_io_before + 3);

        assert!(!s.is_present(dead));
        assert_eq!(s.garbage_bytes(), 0);
        assert_eq!(s.total_garbage_collected(), 60);
        assert_eq!(s.occupied_bytes(), 60);
        assert_eq!(s.partition_overwrites(p), 0);
        s.assert_garbage_exact();

        // Survivors were compacted in the given order.
        assert_eq!(s.residents_of(p), &[root, keep]);
        assert_eq!(s.slots_of(root).unwrap().next(), Some(Some(keep)));
    }

    #[test]
    fn collection_destroys_cyclic_garbage_when_collector_says_so() {
        let mut s = tiny();
        replay(&mut s, &odbgc_trace::synthetic::detached_cycle(30));
        // Tracker hasn't noticed the dead cycle.
        assert_eq!(s.garbage_bytes(), 0);
        let anchor = ObjectId::new(0);
        let p = s.partition_of(anchor).unwrap();
        // A real collector tracing from roots would keep only the anchor.
        let outcome = s.apply_collection(p, &[anchor]);
        assert_eq!(outcome.bytes_reclaimed, 60);
        assert_eq!(s.total_garbage_generated(), 60);
        assert_eq!(s.total_garbage_collected(), 60);
        s.assert_garbage_exact();
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn collection_with_foreign_survivor_panics() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let a = b.create_unlinked(10, 0);
        b.root_add(a);
        let _big = b.create_unlinked(250, 0); // forces partition 1
        replay(&mut s, &b.finish());
        let p1 = PartitionId::new(1);
        s.apply_collection(p1, &[a]); // `a` lives in partition 0
    }

    #[test]
    fn use_after_free_detected() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(10, 1);
        b.root_add(root);
        let dead = b.create_unlinked(20, 0);
        b.slot_write(root, SlotIdx::new(0), Some(dead));
        b.slot_clear(root, SlotIdx::new(0));
        replay(&mut s, &b.finish());
        let p = s.partition_of(dead).unwrap();
        s.apply_collection(p, &[root]);
        assert_eq!(
            s.apply(&Event::Access { id: dead }).unwrap_err(),
            StoreError::UseAfterFree(dead)
        );
    }

    #[test]
    fn db_size_counts_allocated_partitions() {
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        b.create_unlinked(200, 0);
        b.create_unlinked(200, 0);
        replay(&mut s, &b.finish());
        assert_eq!(s.partition_count(), 2);
        assert_eq!(s.db_size_bytes(), 512);
        s.assert_counters_match();
    }

    #[test]
    fn db_size_tracks_capacity_change_without_partition_count_change() {
        // Regression: the simulator used to cache DBSize and refresh it
        // only when the *partition count* changed, so an in-place capacity
        // change was invisible between collections. The store-maintained
        // counter must observe it immediately.
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        b.create_unlinked(200, 0);
        replay(&mut s, &b.finish());
        assert_eq!(s.partition_count(), 1);
        assert_eq!(s.db_size_bytes(), 256);

        s.grow_partition(PartitionId::new(0), 2);
        assert_eq!(s.partition_count(), 1); // count unchanged…
        assert_eq!(s.db_size_bytes(), 384); // …but DBSize grew
        s.assert_counters_match();
        s.assert_consistent();
    }

    #[test]
    fn maintained_counters_match_scans_through_full_lifecycle() {
        // Counter == fresh-scan equivalence across create, overwrite,
        // cascade, collection, and growth.
        let mut s = tiny();
        let mut b = TraceBuilder::new();
        let root = b.create_unlinked(10, 2);
        b.root_add(root);
        let filler = b.create_unlinked(240, 0);
        let far = b.create_unlinked(100, 0);
        b.slot_write(root, SlotIdx::new(0), Some(filler));
        b.slot_write(root, SlotIdx::new(1), Some(far));
        let trace = b.finish();
        for ev in trace.iter() {
            s.apply(ev).expect("replay");
            s.assert_counters_match();
        }

        s.apply(&Event::SlotWrite {
            src: root,
            slot: SlotIdx::new(1),
            new: None,
        })
        .unwrap();
        s.assert_counters_match();
        assert_eq!(s.total_outstanding_overwrites(), 1);

        let p_far = s.partition_of(far).unwrap();
        let outcome = s.apply_collection(p_far, &[]);
        assert_eq!(outcome.overwrites_at_collection, 1);
        s.assert_counters_match();
        assert_eq!(s.total_outstanding_overwrites(), 0);

        s.grow_partition(p_far, 1);
        s.assert_counters_match();
    }
}
