//! Partitioned object store with page-level I/O accounting.
//!
//! This crate is the storage substrate of the SIGMOD'96 collection-rate
//! reproduction: a database of logical objects placed in fixed-size
//! *partitions* (12 × 8 KiB pages by default, §3.1 of the paper), accessed
//! through an LRU *buffer pool* the same size as one partition, with every
//! page transfer charged to either the application or the garbage collector.
//!
//! The store replays [`odbgc_trace::Event`]s. It additionally maintains:
//!
//! * **remembered sets** — per-partition records of incoming cross-partition
//!   references, which provide the root set for partitioned collection;
//! * **pointer-overwrite counters** — per-partition counts of overwritten
//!   pointers whose old target lived in that partition (the fine-grain
//!   state of the FGS/HB estimator and the input to the UPDATEDPOINTER
//!   partition-selection policy), plus the global overwrite clock that the
//!   SAGA policy uses as its time base;
//! * **exact garbage accounting** — an incremental reference-count cascade
//!   (exact whenever dying structures are acyclic at death, which the OO7
//!   workload guarantees) plus a full-reachability recomputation used by the
//!   oracle estimator and by validation tests.
//!
//! Allocation never triggers collection: when no partition has room, a new
//! partition is appended (§3.1).

#![warn(missing_docs)]

pub mod alloc;
pub mod buffer;
pub mod config;
pub mod error;
pub mod gcapi;
pub mod ids;
pub mod io;
pub mod object;
pub mod partition;
pub mod remset;
#[allow(clippy::module_inception)]
pub mod store;
pub mod tracker;

pub use config::{AllocPolicy, OverwriteSemantics, StoreConfig};
pub use error::StoreError;
pub use gcapi::{CollectionApplied, PartitionSnapshot, PendingSweep};
pub use ids::{PageKey, PartitionId};
pub use io::{IoClass, IoLedger, IoSnapshot};
pub use store::{ApplyOutcome, ReachSet, Store, StoreView};

pub use odbgc_trace::{Event, ObjectId, SlotIdx};
