//! Partition bookkeeping.
//!
//! A partition is a fixed extent of pages. Objects are appended at the
//! high-water mark; only a collection compacts the partition and lowers the
//! mark. Oversized objects (larger than a regular partition, e.g. the OO7
//! manual) get a dedicated partition sized to fit.

use odbgc_trace::ObjectId;

/// Bookkeeping for one partition.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Capacity in bytes (pages × page size; oversized partitions are
    /// larger than the regular size).
    pub capacity: u32,
    /// Capacity in pages.
    pub pages: u32,
    /// Append point: bytes in use (live + garbage).
    pub high_water: u32,
    /// Bytes of live objects resident here (per the incremental tracker).
    pub live_bytes: u64,
    /// Bytes of garbage objects resident here (oracle knowledge; *not*
    /// visible to estimators, which must guess).
    pub garbage_bytes: u64,
    /// Objects resident in this partition in layout (offset) order.
    /// Includes garbage until it is collected; never includes destroyed
    /// objects.
    pub residents: Vec<ObjectId>,
    /// Ids registered as global roots whose object resides here. Mirrors
    /// the store's root set restricted to this partition — including ids
    /// whose object has since been destroyed, matching the legacy
    /// behavior where `partition_roots` consulted the full root set.
    /// Maintained on root add/remove; collections leave it alone (roots
    /// always survive).
    pub root_residents: Vec<ObjectId>,
    /// Resident objects currently holding a birth pin. Maintained on
    /// create, on first incoming reference (pin drop), and on collection
    /// (doomed objects lose their pin). Lets `partition_roots` skip the
    /// full resident scan.
    pub pinned_residents: Vec<ObjectId>,
    /// Pointer overwrites whose old target lived in this partition since
    /// the partition was last collected (the FGS state; also drives the
    /// UPDATEDPOINTER selection policy).
    pub overwrites: u64,
    /// Number of times this partition has been collected.
    pub collections: u64,
}

impl Partition {
    /// An empty partition with the given page geometry.
    pub fn new(pages: u32, page_size: u32) -> Self {
        Partition {
            capacity: pages * page_size,
            pages,
            high_water: 0,
            live_bytes: 0,
            garbage_bytes: 0,
            residents: Vec::new(),
            root_residents: Vec::new(),
            pinned_residents: Vec::new(),
            overwrites: 0,
            collections: 0,
        }
    }

    /// Free bytes at the tail.
    pub fn free_bytes(&self) -> u32 {
        self.capacity - self.high_water
    }

    /// Can an object of `size` bytes be appended?
    pub fn fits(&self, size: u32) -> bool {
        size <= self.free_bytes()
    }

    /// Appends `size` bytes, returning the allocated offset.
    /// Panics if it does not fit — callers must check [`Partition::fits`].
    pub fn append(&mut self, size: u32) -> u32 {
        assert!(self.fits(size), "allocation beyond partition capacity");
        let offset = self.high_water;
        self.high_water += size;
        offset
    }

    /// Pages currently occupied (touched by any resident data).
    pub fn occupied_pages(&self, page_size: u32) -> u32 {
        self.high_water.div_ceil(page_size)
    }

    /// Extends the partition by `extra_pages` pages, returning the number
    /// of capacity bytes added (so callers can maintain global tallies).
    pub fn grow(&mut self, extra_pages: u32, page_size: u32) -> u64 {
        let added = extra_pages * page_size;
        self.pages += extra_pages;
        self.capacity += added;
        u64::from(added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_advances_high_water() {
        let mut p = Partition::new(4, 64);
        assert_eq!(p.capacity, 256);
        let a = p.append(100);
        let b = p.append(50);
        assert_eq!((a, b), (0, 100));
        assert_eq!(p.high_water, 150);
        assert_eq!(p.free_bytes(), 106);
        assert!(p.fits(106));
        assert!(!p.fits(107));
    }

    #[test]
    #[should_panic(expected = "beyond partition capacity")]
    fn overfull_append_panics() {
        let mut p = Partition::new(1, 64);
        p.append(65);
    }

    #[test]
    fn grow_extends_capacity_in_place() {
        let mut p = Partition::new(1, 64);
        p.append(60);
        assert!(!p.fits(10));
        assert_eq!(p.grow(2, 64), 128);
        assert_eq!((p.pages, p.capacity), (3, 192));
        assert!(p.fits(10));
        assert_eq!(p.append(10), 60);
    }

    #[test]
    fn occupied_pages_rounds_up() {
        let mut p = Partition::new(4, 64);
        assert_eq!(p.occupied_pages(64), 0);
        p.append(1);
        assert_eq!(p.occupied_pages(64), 1);
        p.append(63);
        assert_eq!(p.occupied_pages(64), 1);
        p.append(1);
        assert_eq!(p.occupied_pages(64), 2);
    }
}
