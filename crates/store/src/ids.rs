//! Storage-level identifiers: partitions and pages.

use std::fmt;

/// Identifier of a partition. Dense: partitions are numbered in creation
/// order and never disappear (an emptied partition stays allocated and is
/// reused by the allocator).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(u32);

impl PartitionId {
    /// Wraps a raw partition number.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        PartitionId(raw)
    }

    /// The raw partition number.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The partition number as a `usize`, for indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Global page address: a page index within a partition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// The partition the page belongs to.
    pub partition: PartitionId,
    /// Page index within the partition.
    pub page: u32,
}

impl PageKey {
    /// A page address from its parts.
    #[inline]
    pub const fn new(partition: PartitionId, page: u32) -> Self {
        PageKey { partition, page }
    }
}

impl fmt::Debug for PageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/pg{}", self.partition, self.page)
    }
}

/// The inclusive page range `[first, last]` covered by a byte extent
/// `[offset, offset + size)` under the given page size. `size` must be ≥ 1.
pub fn page_span(offset: u32, size: u32, page_size: u32) -> (u32, u32) {
    debug_assert!(size >= 1);
    let first = offset / page_size;
    let last = (offset + size - 1) / page_size;
    (first, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_id_formats() {
        assert_eq!(format!("{}", PartitionId::new(3)), "P3");
        assert_eq!(
            format!("{:?}", PageKey::new(PartitionId::new(3), 1)),
            "P3/pg1"
        );
    }

    #[test]
    fn page_span_single_page() {
        assert_eq!(page_span(0, 64, 64), (0, 0));
        assert_eq!(page_span(63, 1, 64), (0, 0));
    }

    #[test]
    fn page_span_straddles_boundary() {
        assert_eq!(page_span(60, 8, 64), (0, 1));
        assert_eq!(page_span(64, 64, 64), (1, 1));
        assert_eq!(page_span(0, 129, 64), (0, 2));
    }

    #[test]
    fn page_span_large_object() {
        // 100 KiB object on 8 KiB pages: 13 pages.
        let (first, last) = page_span(0, 100 * 1024, 8192);
        assert_eq!(first, 0);
        assert_eq!(last, 12);
    }
}
