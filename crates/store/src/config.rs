//! Store configuration.

/// What counts as a *pointer overwrite* for the overwrite clock.
///
/// The paper uses pointer overwrites — "modifications of pointers between
/// objects" — as the indicator that garbage is being created, because only
/// killing an existing pointer can disconnect objects. Initial stores into
/// null slots therefore do not advance the clock under the default
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverwriteSemantics {
    /// Only slot writes whose *old* value was a non-null pointer advance the
    /// overwrite clock (the paper's semantics; default).
    #[default]
    NonNullOld,
    /// Every slot write advances the clock (ablation mode). Per-partition
    /// overwrite counters still require a non-null old target, since the
    /// counter is keyed by the old target's partition.
    AllStores,
}

/// Where newly created objects are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// First partition (in id order) with enough free tail space; append a
    /// new partition if none fits (the paper's model; default).
    #[default]
    FirstFit,
    /// Only the most recently added partition is considered; append a new
    /// partition when it is full. Keeps creation order perfectly clustered
    /// (ablation mode).
    AppendOnly,
}

/// Static configuration of a [`crate::Store`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Page size in bytes (paper: 8 KiB).
    pub page_size: u32,
    /// Pages per partition (paper: 12, i.e. 96 KiB partitions).
    pub pages_per_partition: u32,
    /// Buffer-pool capacity in pages (paper: equal to one partition).
    pub buffer_pages: u32,
    /// Overwrite-clock semantics.
    pub overwrite_semantics: OverwriteSemantics,
    /// Object placement policy.
    pub alloc_policy: AllocPolicy,
}

impl Default for StoreConfig {
    /// The paper's configuration: 8 KiB pages, 12-page partitions, 12-page
    /// buffer.
    fn default() -> Self {
        StoreConfig {
            page_size: 8 * 1024,
            pages_per_partition: 12,
            buffer_pages: 12,
            overwrite_semantics: OverwriteSemantics::default(),
            alloc_policy: AllocPolicy::default(),
        }
    }
}

impl StoreConfig {
    /// A small configuration convenient for unit tests: 64-byte pages,
    /// 4-page partitions, 4-page buffer.
    pub fn tiny() -> Self {
        StoreConfig {
            page_size: 64,
            pages_per_partition: 4,
            buffer_pages: 4,
            ..StoreConfig::default()
        }
    }

    /// Capacity of a regular partition in bytes.
    pub fn partition_bytes(&self) -> u32 {
        self.page_size * self.pages_per_partition
    }

    /// Panics if the configuration is unusable.
    pub fn validate(&self) {
        assert!(self.page_size > 0, "page_size must be positive");
        assert!(
            self.pages_per_partition > 0,
            "pages_per_partition must be positive"
        );
        assert!(self.buffer_pages > 0, "buffer_pages must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = StoreConfig::default();
        assert_eq!(c.page_size, 8192);
        assert_eq!(c.pages_per_partition, 12);
        assert_eq!(c.buffer_pages, 12);
        assert_eq!(c.partition_bytes(), 96 * 1024);
        assert_eq!(c.overwrite_semantics, OverwriteSemantics::NonNullOld);
        assert_eq!(c.alloc_policy, AllocPolicy::FirstFit);
        c.validate();
    }

    #[test]
    fn tiny_is_valid() {
        let c = StoreConfig::tiny();
        c.validate();
        assert_eq!(c.partition_bytes(), 256);
    }

    #[test]
    #[should_panic(expected = "page_size")]
    fn zero_page_size_rejected() {
        StoreConfig {
            page_size: 0,
            ..StoreConfig::default()
        }
        .validate();
    }
}
