//! Cumulative garbage accounting.
//!
//! The paper's SAGA formulation uses three quantities: `TotGarb(t)` (total
//! garbage ever generated), `TotColl(t)` (total garbage ever collected) and
//! `ActGarb(t) = TotGarb(t) − TotColl(t)` (garbage currently occupying
//! storage). This module holds the cumulative ledger; the incremental
//! detection of *when* an object becomes garbage (the reference-count
//! cascade) lives in [`crate::store`], which owns the object table.

/// Cumulative garbage ledger (bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GarbageLedger {
    total_generated: u64,
    total_collected: u64,
}

impl GarbageLedger {
    /// A zeroed ledger.
    pub fn new() -> Self {
        GarbageLedger::default()
    }

    /// Records `bytes` of newly unreachable storage (`TotGarb` grows).
    #[inline]
    pub fn record_generated(&mut self, bytes: u64) {
        self.total_generated += bytes;
    }

    /// Records `bytes` physically reclaimed by a collection (`TotColl`
    /// grows).
    #[inline]
    pub fn record_collected(&mut self, bytes: u64) {
        self.total_collected += bytes;
        debug_assert!(
            self.total_collected <= self.total_generated,
            "collected more than was ever generated"
        );
    }

    /// `TotGarb(t)`: bytes of garbage ever generated.
    pub fn total_generated(&self) -> u64 {
        self.total_generated
    }

    /// `TotColl(t)`: bytes of garbage ever collected.
    pub fn total_collected(&self) -> u64 {
        self.total_collected
    }

    /// `ActGarb(t)`: garbage currently occupying storage.
    pub fn actual(&self) -> u64 {
        self.total_generated - self.total_collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_generated_minus_collected() {
        let mut l = GarbageLedger::new();
        assert_eq!(l.actual(), 0);
        l.record_generated(100);
        l.record_generated(50);
        assert_eq!(l.total_generated(), 150);
        assert_eq!(l.actual(), 150);
        l.record_collected(120);
        assert_eq!(l.total_collected(), 120);
        assert_eq!(l.actual(), 30);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "collected more")]
    fn over_collection_is_a_bug() {
        let mut l = GarbageLedger::new();
        l.record_generated(10);
        l.record_collected(11);
    }
}
