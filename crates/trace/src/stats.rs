//! Summary statistics over a trace.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::trace::Trace;

/// Census of a trace: event counts per kind, overall and per phase, plus
/// allocation volume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events per kind.
    pub by_kind: BTreeMap<EventKind, u64>,
    /// Per-phase `(phase name, per-kind counts)` in order of first
    /// occurrence. Events before the first phase marker fall into a
    /// synthetic `"<pre>"` phase.
    pub by_phase: Vec<(String, BTreeMap<EventKind, u64>)>,
    /// Total bytes allocated by `Create` events.
    pub bytes_allocated: u64,
    /// Number of distinct objects created.
    pub objects_created: u64,
    /// Total slot-write events (upper bound on pointer overwrites; the true
    /// overwrite count depends on replay state).
    pub slot_writes: u64,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn of(trace: &Trace) -> TraceStats {
        let mut stats = TraceStats::default();
        let mut current_phase: Option<usize> = None;
        for ev in trace.iter() {
            if let Event::Phase { id } = ev {
                let name = trace.phase_name(*id).unwrap_or("<unknown>").to_owned();
                stats.by_phase.push((name, BTreeMap::new()));
                current_phase = Some(stats.by_phase.len() - 1);
            }
            *stats.by_kind.entry(ev.kind()).or_insert(0) += 1;
            let phase_map = match current_phase {
                Some(i) => &mut stats.by_phase[i].1,
                None => {
                    if stats.by_phase.is_empty() {
                        stats.by_phase.push(("<pre>".to_owned(), BTreeMap::new()));
                    }
                    &mut stats.by_phase[0].1
                }
            };
            *phase_map.entry(ev.kind()).or_insert(0) += 1;
            match ev {
                Event::Create { size, .. } => {
                    stats.bytes_allocated += u64::from(*size);
                    stats.objects_created += 1;
                }
                Event::SlotWrite { .. } => stats.slot_writes += 1,
                _ => {}
            }
        }
        stats
    }

    /// Count of events of one kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Total number of events.
    pub fn total(&self) -> u64 {
        self.by_kind.values().sum()
    }

    /// Mean created-object size in bytes, or 0 if nothing was created.
    pub fn mean_object_size(&self) -> f64 {
        if self.objects_created == 0 {
            0.0
        } else {
            self.bytes_allocated as f64 / self.objects_created as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SlotIdx;
    use crate::trace::TraceBuilder;

    #[test]
    fn counts_by_kind_and_phase() {
        let mut b = TraceBuilder::new();
        let pre = b.create_unlinked(100, 1); // before any phase
        b.phase("GenDB");
        let a = b.create_unlinked(50, 1);
        b.slot_write(a, SlotIdx::new(0), Some(pre));
        b.phase("Reorg1");
        b.access(a);
        b.access(pre);
        let t = b.finish();
        let s = t.stats();

        assert_eq!(s.count(EventKind::Create), 2);
        assert_eq!(s.count(EventKind::Access), 2);
        assert_eq!(s.count(EventKind::SlotWrite), 1);
        assert_eq!(s.count(EventKind::Phase), 2);
        assert_eq!(s.total(), 7);
        assert_eq!(s.objects_created, 2);
        assert_eq!(s.bytes_allocated, 150);
        assert!((s.mean_object_size() - 75.0).abs() < 1e-9);

        assert_eq!(s.by_phase.len(), 3);
        assert_eq!(s.by_phase[0].0, "<pre>");
        assert_eq!(s.by_phase[1].0, "GenDB");
        assert_eq!(s.by_phase[2].0, "Reorg1");
        assert_eq!(s.by_phase[0].1[&EventKind::Create], 1);
        assert_eq!(s.by_phase[1].1[&EventKind::SlotWrite], 1);
        assert_eq!(s.by_phase[2].1[&EventKind::Access], 2);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::default().stats();
        assert_eq!(s.total(), 0);
        assert_eq!(s.mean_object_size(), 0.0);
        assert!(s.by_phase.is_empty());
    }
}
