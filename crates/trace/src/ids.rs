//! Identifier newtypes shared by the trace and every layer above it.

use std::fmt;

/// Logical identifier of a database object.
///
/// Object identity is *logical*: relocating an object inside a partition
/// (compaction) never changes its id, so inter-object pointers recorded in a
/// trace stay valid across collections.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Wraps a raw id. Ids are dense and allocated by [`IdGen`] in practice,
    /// but any value is a valid identity.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// The raw id value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Index of a pointer slot within an object.
///
/// Objects expose a fixed number of slots determined at creation; a slot
/// holds either a pointer to another object or null.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotIdx(u32);

impl SlotIdx {
    /// Wraps a raw slot index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        SlotIdx(raw)
    }

    /// The raw index value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The slot index as a `usize`, for indexing slot arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SlotIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for SlotIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of an application phase within a trace.
///
/// Phase names live in a side table on [`crate::Trace`]; events carry only
/// the compact id so the hot replay loop stays allocation-free.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhaseId(u16);

impl PhaseId {
    /// Wraps a raw phase id.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        PhaseId(raw)
    }

    /// The raw id value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The id as a `usize`, for indexing the phase-name table.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Monotonic generator of fresh [`ObjectId`]s.
///
/// Trace generators use one `IdGen` per trace so ids are dense and
/// deterministic for a given generation seed.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// An empty generator starting at id 0.
    pub fn new() -> Self {
        IdGen::default()
    }

    /// Returns a fresh, never-before-returned id.
    #[inline]
    pub fn fresh(&mut self) -> ObjectId {
        let id = ObjectId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn issued(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_round_trips_raw_value() {
        let id = ObjectId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(format!("{id}"), "o42");
        assert_eq!(format!("{id:?}"), "o42");
    }

    #[test]
    fn slot_idx_indexes_arrays() {
        let s = SlotIdx::new(3);
        let arr = [0u8, 1, 2, 3, 4];
        assert_eq!(arr[s.index()], 3);
    }

    #[test]
    fn id_gen_is_dense_and_monotonic() {
        let mut g = IdGen::new();
        let a = g.fresh();
        let b = g.fresh();
        let c = g.fresh();
        assert_eq!((a.raw(), b.raw(), c.raw()), (0, 1, 2));
        assert_eq!(g.issued(), 3);
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ObjectId::new(1));
        set.insert(ObjectId::new(1));
        set.insert(ObjectId::new(2));
        assert_eq!(set.len(), 2);
        assert!(ObjectId::new(1) < ObjectId::new(2));
    }

    #[test]
    fn phase_id_compact() {
        assert_eq!(std::mem::size_of::<PhaseId>(), 2);
        assert_eq!(PhaseId::new(7).index(), 7);
    }
}
