//! The trace container and its builder.

use crate::event::Event;
use crate::ids::{IdGen, ObjectId, PhaseId, SlotIdx};
use crate::stats::TraceStats;

/// An immutable, replayable sequence of database events plus the phase-name
/// side table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
    phase_names: Vec<String>,
}

impl Trace {
    /// The event sequence.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name of a phase id, if registered.
    pub fn phase_name(&self, id: PhaseId) -> Option<&str> {
        self.phase_names.get(id.index()).map(String::as_str)
    }

    /// All registered phase names in id order.
    pub fn phase_names(&self) -> &[String] {
        &self.phase_names
    }

    /// Iterates events.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Computes summary statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Assembles a trace from parts. The codec uses this; generators should
    /// prefer [`TraceBuilder`].
    pub fn from_parts(events: Vec<Event>, phase_names: Vec<String>) -> Self {
        Trace {
            events,
            phase_names,
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Incrementally records events into a [`Trace`].
///
/// The builder owns the trace's [`IdGen`] so generated object ids are dense
/// and deterministic, and offers one convenience method per event kind.
///
/// ```
/// use odbgc_trace::{SlotIdx, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// b.phase("setup");
/// let root = b.create_unlinked(64, 1); // 64 bytes, one pointer slot
/// b.root_add(root);
/// let child = b.create_unlinked(32, 0);
/// b.slot_write(root, SlotIdx::new(0), Some(child));
/// b.slot_clear(root, SlotIdx::new(0)); // detaches child
/// let trace = b.finish();
/// assert_eq!(trace.len(), 6);
/// assert_eq!(trace.phase_names(), &["setup"]);
/// ```
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Event>,
    phase_names: Vec<String>,
    ids: IdGen,
}

impl TraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Pre-allocates capacity for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        TraceBuilder {
            events: Vec::with_capacity(n),
            ..TraceBuilder::default()
        }
    }

    /// Creates an object with the given size and slot contents, returning
    /// its fresh id.
    pub fn create(&mut self, size: u32, slots: Vec<Option<ObjectId>>) -> ObjectId {
        let id = self.ids.fresh();
        self.events.push(Event::Create {
            id,
            size,
            slots: slots.into_boxed_slice(),
        });
        id
    }

    /// Creates an object whose `n` slots are all initially null.
    pub fn create_unlinked(&mut self, size: u32, n_slots: usize) -> ObjectId {
        self.create(size, vec![None; n_slots])
    }

    /// Records a read-only access.
    pub fn access(&mut self, id: ObjectId) {
        self.events.push(Event::Access { id });
    }

    /// Records a pointer store `src.slots[slot] = new`.
    pub fn slot_write(&mut self, src: ObjectId, slot: SlotIdx, new: Option<ObjectId>) {
        self.events.push(Event::SlotWrite { src, slot, new });
    }

    /// Records a pointer kill `src.slots[slot] = null`.
    pub fn slot_clear(&mut self, src: ObjectId, slot: SlotIdx) {
        self.slot_write(src, slot, None);
    }

    /// Adds an object to the root set.
    pub fn root_add(&mut self, id: ObjectId) {
        self.events.push(Event::RootAdd { id });
    }

    /// Removes an object from the root set.
    pub fn root_remove(&mut self, id: ObjectId) {
        self.events.push(Event::RootRemove { id });
    }

    /// Starts a named phase, registering the name if new, and returns its id.
    pub fn phase(&mut self, name: &str) -> PhaseId {
        let id = match self.phase_names.iter().position(|n| n == name) {
            Some(i) => PhaseId::new(i as u16),
            None => {
                assert!(
                    self.phase_names.len() < u16::MAX as usize,
                    "too many phases"
                );
                self.phase_names.push(name.to_owned());
                PhaseId::new((self.phase_names.len() - 1) as u16)
            }
        };
        self.events.push(Event::Phase { id });
        id
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Direct access to the id generator, for generators that must mint ids
    /// before emitting the creation event.
    pub fn ids_mut(&mut self) -> &mut IdGen {
        &mut self.ids
    }

    /// Finishes recording.
    pub fn finish(self) -> Trace {
        Trace {
            events: self.events,
            phase_names: self.phase_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = TraceBuilder::new();
        let a = b.create_unlinked(16, 0);
        let c = b.create(8, vec![Some(a)]);
        assert_eq!(a.raw(), 0);
        assert_eq!(c.raw(), 1);
        let t = b.finish();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn phase_names_are_interned() {
        let mut b = TraceBuilder::new();
        let p1 = b.phase("GenDB");
        let p2 = b.phase("Reorg1");
        let p1_again = b.phase("GenDB");
        assert_eq!(p1, p1_again);
        assert_ne!(p1, p2);
        let t = b.finish();
        assert_eq!(t.phase_name(p1), Some("GenDB"));
        assert_eq!(t.phase_name(p2), Some("Reorg1"));
        assert_eq!(t.phase_names().len(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn events_replay_in_order() {
        let mut b = TraceBuilder::new();
        let a = b.create_unlinked(10, 2);
        b.root_add(a);
        b.access(a);
        b.slot_clear(a, SlotIdx::new(0));
        b.root_remove(a);
        let t = b.finish();
        let kinds: Vec<_> = t.iter().map(Event::kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Create,
                EventKind::RootAdd,
                EventKind::Access,
                EventKind::SlotWrite,
                EventKind::RootRemove,
            ]
        );
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn into_iterator_for_ref() {
        let mut b = TraceBuilder::new();
        b.create_unlinked(1, 0);
        let t = b.finish();
        let mut n = 0;
        for _e in &t {
            n += 1;
        }
        assert_eq!(n, 1);
    }
}
