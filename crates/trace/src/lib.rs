//! Database event-trace model for trace-driven ODBMS simulation.
//!
//! A *trace* is an ordered sequence of logical database events — object
//! creations, accesses, slot (pointer) writes, and root-set changes —
//! recorded or generated independently of any storage-management decisions.
//! The simulator replays a trace against a concrete store while the garbage
//! collector interleaves collections according to a rate policy, following
//! the methodology of Cook/Wolf/Zorn's persistent-storage simulator (CWZ93)
//! used in the SIGMOD'96 collection-rate paper.
//!
//! The crate deliberately knows nothing about pages, partitions, or I/O:
//! those are properties of the store that replays the trace.

#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod ids;
pub mod merge;
pub mod stats;
pub mod synthetic;
#[allow(clippy::module_inception)]
pub mod trace;

pub use event::{Event, EventKind};
pub use ids::{ObjectId, PhaseId, SlotIdx};
pub use stats::TraceStats;
pub use trace::{Trace, TraceBuilder};
