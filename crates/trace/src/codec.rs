//! A compact line-oriented text codec for traces.
//!
//! One event per line; phase names are declared up front. The format exists
//! so traces can be written to disk, diffed, and replayed without pulling a
//! serialization dependency into the workspace:
//!
//! ```text
//! odbgc-trace v1
//! phases GenDB Reorg1
//! c 0 128 3 _ _ _        # Create id=0 size=128 slots=[null,null,null]
//! c 1 64 1 0              # Create id=1 size=64 slots=[o0]
//! w 1 0 _                 # SlotWrite src=1 slot=0 new=null
//! a 0                     # Access id=0
//! r+ 0                    # RootAdd
//! r- 0                    # RootRemove
//! ph 1                    # Phase Reorg1
//! ```

use std::fmt::Write as _;

use crate::event::Event;
use crate::ids::{ObjectId, PhaseId, SlotIdx};
use crate::trace::Trace;

/// Codec failure: a line that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace decode error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a trace to the text format.
///
/// ```
/// use odbgc_trace::{codec, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let a = b.create_unlinked(16, 0);
/// b.root_add(a);
/// let trace = b.finish();
/// let text = codec::encode(&trace);
/// assert_eq!(codec::decode(&text).unwrap(), trace);
/// ```
pub fn encode(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 12 + 64);
    out.push_str(&encode_header(trace.phase_names()));
    for ev in trace.iter() {
        encode_event(&mut out, ev);
    }
    out
}

/// The text-format preamble: the version line plus the `phases`
/// declaration (omitted when there are no phases). Streaming writers
/// emit this once, then [`encode_event`] per event; the concatenation is
/// byte-identical to [`encode`].
pub fn encode_header(phase_names: &[String]) -> String {
    let mut out = String::from("odbgc-trace v1\n");
    if !phase_names.is_empty() {
        out.push_str("phases");
        for name in phase_names {
            debug_assert!(
                !name.contains(char::is_whitespace),
                "phase names must be whitespace-free"
            );
            out.push(' ');
            out.push_str(name);
        }
        out.push('\n');
    }
    out
}

/// Appends one event as its text-format line (including the newline).
pub fn encode_event(out: &mut String, ev: &Event) {
    match ev {
        Event::Create { id, size, slots } => {
            let _ = write!(out, "c {} {} {}", id.raw(), size, slots.len());
            for s in slots.iter() {
                match s {
                    Some(t) => {
                        let _ = write!(out, " {}", t.raw());
                    }
                    None => out.push_str(" _"),
                }
            }
            out.push('\n');
        }
        Event::Access { id } => {
            let _ = writeln!(out, "a {}", id.raw());
        }
        Event::SlotWrite { src, slot, new } => match new {
            Some(t) => {
                let _ = writeln!(out, "w {} {} {}", src.raw(), slot.raw(), t.raw());
            }
            None => {
                let _ = writeln!(out, "w {} {} _", src.raw(), slot.raw());
            }
        },
        Event::RootAdd { id } => {
            let _ = writeln!(out, "r+ {}", id.raw());
        }
        Event::RootRemove { id } => {
            let _ = writeln!(out, "r- {}", id.raw());
        }
        Event::Phase { id } => {
            let _ = writeln!(out, "ph {}", id.raw());
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> DecodeError {
    DecodeError {
        line,
        message: message.into(),
    }
}

fn parse_obj(tok: &str, line: usize) -> Result<ObjectId, DecodeError> {
    tok.parse::<u64>()
        .map(ObjectId::new)
        .map_err(|_| err(line, format!("bad object id {tok:?}")))
}

fn parse_opt_obj(tok: &str, line: usize) -> Result<Option<ObjectId>, DecodeError> {
    if tok == "_" {
        Ok(None)
    } else {
        parse_obj(tok, line).map(Some)
    }
}

/// Parses the text format back into a trace.
pub fn decode(text: &str) -> Result<Trace, DecodeError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if header.trim() != "odbgc-trace v1" {
        return Err(err(1, format!("unrecognized header {header:?}")));
    }

    let mut events = Vec::new();
    let mut phase_names: Vec<String> = Vec::new();

    for (i, line) in lines {
        let lineno = i + 1;
        let line = match line.split('#').next() {
            Some(l) => l.trim(),
            None => "",
        };
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_ascii_whitespace();
        let tag = toks.next().expect("non-empty line has a token");
        match tag {
            "phases" => {
                phase_names = toks.map(str::to_owned).collect();
            }
            "c" => {
                let id = parse_obj(
                    toks.next().ok_or_else(|| err(lineno, "missing id"))?,
                    lineno,
                )?;
                let size: u32 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing/bad size"))?;
                let n: usize = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing/bad slot count"))?;
                let mut slots = Vec::with_capacity(n);
                for _ in 0..n {
                    let tok = toks
                        .next()
                        .ok_or_else(|| err(lineno, "too few slot tokens"))?;
                    slots.push(parse_opt_obj(tok, lineno)?);
                }
                if toks.next().is_some() {
                    return Err(err(lineno, "trailing tokens after create"));
                }
                events.push(Event::Create {
                    id,
                    size,
                    slots: slots.into_boxed_slice(),
                });
            }
            "a" => {
                let id = parse_obj(
                    toks.next().ok_or_else(|| err(lineno, "missing id"))?,
                    lineno,
                )?;
                events.push(Event::Access { id });
            }
            "w" => {
                let src = parse_obj(
                    toks.next().ok_or_else(|| err(lineno, "missing src"))?,
                    lineno,
                )?;
                let slot: u32 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing/bad slot"))?;
                let new = parse_opt_obj(
                    toks.next().ok_or_else(|| err(lineno, "missing target"))?,
                    lineno,
                )?;
                events.push(Event::SlotWrite {
                    src,
                    slot: SlotIdx::new(slot),
                    new,
                });
            }
            "r+" => {
                let id = parse_obj(
                    toks.next().ok_or_else(|| err(lineno, "missing id"))?,
                    lineno,
                )?;
                events.push(Event::RootAdd { id });
            }
            "r-" => {
                let id = parse_obj(
                    toks.next().ok_or_else(|| err(lineno, "missing id"))?,
                    lineno,
                )?;
                events.push(Event::RootRemove { id });
            }
            "ph" => {
                let id: u16 = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "missing/bad phase id"))?;
                events.push(Event::Phase {
                    id: PhaseId::new(id),
                });
            }
            other => return Err(err(lineno, format!("unknown event tag {other:?}"))),
        }
    }
    Ok(Trace::from_parts(events, phase_names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.phase("GenDB");
        let a = b.create_unlinked(128, 3);
        let c = b.create(64, vec![Some(a), None]);
        b.root_add(a);
        b.access(c);
        b.slot_write(c, SlotIdx::new(1), Some(a));
        b.slot_clear(c, SlotIdx::new(0));
        b.phase("Reorg1");
        b.root_remove(a);
        b.finish()
    }

    #[test]
    fn round_trip() {
        let t = sample_trace();
        let text = encode(&t);
        let back = decode(&text).expect("decode");
        assert_eq!(t, back);
    }

    #[test]
    fn round_trip_empty() {
        let t = Trace::default();
        let back = decode(&encode(&t)).expect("decode");
        assert_eq!(t, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "odbgc-trace v1\n\n# a comment\na 5   # trailing comment\n";
        let t = decode(text).expect("decode");
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.events()[0],
            Event::Access {
                id: ObjectId::new(5)
            }
        );
    }

    #[test]
    fn bad_header_rejected() {
        assert!(decode("nope\n").is_err());
        assert!(decode("").is_err());
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let text = "odbgc-trace v1\na 1\nz 9\n";
        let e = decode(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn truncated_create_rejected() {
        let text = "odbgc-trace v1\nc 0 10 3 _ _\n";
        assert!(decode(text).is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        let text = "odbgc-trace v1\nc 0 10 1 _ 5\n";
        assert!(decode(text).is_err());
    }
}
