//! Synthetic workload generators for testing stores and collectors.
//!
//! These are *not* the OO7 application (that lives in `odbgc-oo7`); they are
//! small, well-understood graph workloads used by unit, integration, and
//! property tests across the workspace.
//!
//! Every generator maintains the invariant that a trace only ever references
//! objects that are reachable from the root set at that point — a real
//! application cannot name an unreachable object. Targets of new pointers
//! are found by random walks from root anchors, which guarantees
//! reachability by construction.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::ids::{ObjectId, SlotIdx};
use crate::trace::{Trace, TraceBuilder};

/// Configuration for [`churn`].
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of root "anchor" objects.
    pub anchors: usize,
    /// Pointer slots per object.
    pub slots_per_object: usize,
    /// Number of workload steps after setup.
    pub steps: usize,
    /// Inclusive object-size range in bytes.
    pub size_range: (u32, u32),
    /// Relative weights of (create, relink, clear, access) actions.
    pub weights: (u32, u32, u32, u32),
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            anchors: 4,
            slots_per_object: 3,
            steps: 500,
            size_range: (32, 256),
            weights: (4, 3, 2, 4),
        }
    }
}

/// Random graph-churn workload: objects are created, linked, unlinked, and
/// accessed underneath a fixed set of root anchors. Unlinking creates
/// garbage; creating extends the live graph.
pub fn churn(config: &ChurnConfig, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::with_capacity(config.steps + config.anchors + 8);
    let slots = config.slots_per_object.max(1);

    // Mirror of the object graph so random walks can find reachable targets.
    let mut graph: Vec<Vec<Option<ObjectId>>> = Vec::new();
    let mut anchors = Vec::with_capacity(config.anchors);
    for _ in 0..config.anchors.max(1) {
        let id = b.create_unlinked(
            rng.random_range(config.size_range.0..=config.size_range.1),
            slots,
        );
        b.root_add(id);
        graph.push(vec![None; slots]);
        anchors.push(id);
    }

    // Random walk from a random anchor; every visited object is reachable.
    let walk = |rng: &mut StdRng, graph: &[Vec<Option<ObjectId>>], anchors: &[ObjectId]| {
        let mut at = *anchors.choose(rng).expect("at least one anchor");
        for _ in 0..rng.random_range(0..6usize) {
            let out = &graph[at.raw() as usize];
            let children: Vec<ObjectId> = out.iter().flatten().copied().collect();
            match children.choose(rng) {
                Some(&c) => at = c,
                None => break,
            }
        }
        at
    };

    let (w_create, w_relink, w_clear, w_access) = config.weights;
    let total_w = (w_create + w_relink + w_clear + w_access).max(1);

    for _ in 0..config.steps {
        let pick = rng.random_range(0..total_w);
        if pick < w_create {
            // Create a new object and hook it into the reachable graph.
            let parent = walk(&mut rng, &graph, &anchors);
            let size = rng.random_range(config.size_range.0..=config.size_range.1);
            let id = b.create_unlinked(size, slots);
            graph.push(vec![None; slots]);
            let slot = SlotIdx::new(rng.random_range(0..slots as u32));
            b.slot_write(parent, slot, Some(id));
            graph[parent.raw() as usize][slot.index()] = Some(id);
        } else if pick < w_create + w_relink {
            // Point a reachable object's slot at another reachable object.
            let src = walk(&mut rng, &graph, &anchors);
            let dst = walk(&mut rng, &graph, &anchors);
            let slot = SlotIdx::new(rng.random_range(0..slots as u32));
            b.slot_write(src, slot, Some(dst));
            graph[src.raw() as usize][slot.index()] = Some(dst);
        } else if pick < w_create + w_relink + w_clear {
            // Kill a pointer, possibly detaching a subgraph.
            let src = walk(&mut rng, &graph, &anchors);
            let slot = SlotIdx::new(rng.random_range(0..slots as u32));
            b.slot_clear(src, slot);
            graph[src.raw() as usize][slot.index()] = None;
        } else {
            let id = walk(&mut rng, &graph, &anchors);
            b.access(id);
        }
    }
    b.finish()
}

/// A rooted singly linked list of `n` objects of `size` bytes each, followed
/// by a cut at `cut_after` links (if given), which makes the tail garbage.
pub fn linear_chain(n: usize, size: u32, cut_after: Option<usize>) -> Trace {
    assert!(n >= 1);
    let mut b = TraceBuilder::new();
    let head = b.create_unlinked(size, 1);
    b.root_add(head);
    let mut prev = head;
    let mut nodes = vec![head];
    for _ in 1..n {
        let next = b.create_unlinked(size, 1);
        b.slot_write(prev, SlotIdx::new(0), Some(next));
        prev = next;
        nodes.push(next);
    }
    if let Some(k) = cut_after {
        assert!(k < n, "cut_after must leave at least the head");
        b.slot_clear(nodes[k], SlotIdx::new(0));
    }
    b.finish()
}

/// A rooted complete `fanout`-ary tree of the given `depth` (depth 0 = just
/// the root). Returns the trace and the total node count.
pub fn wide_tree(depth: u32, fanout: usize, size: u32) -> (Trace, usize) {
    let mut b = TraceBuilder::new();
    let root = b.create_unlinked(size, fanout);
    b.root_add(root);
    let mut frontier = vec![root];
    let mut count = 1usize;
    for _ in 0..depth {
        let mut next_frontier = Vec::with_capacity(frontier.len() * fanout);
        for parent in frontier {
            for slot in 0..fanout {
                let child = b.create_unlinked(size, fanout);
                b.slot_write(parent, SlotIdx::new(slot as u32), Some(child));
                next_frontier.push(child);
                count += 1;
            }
        }
        frontier = next_frontier;
    }
    (b.finish(), count)
}

/// A two-object cycle hanging off a rooted anchor, then detached in one
/// overwrite. Exercises cyclic-garbage handling: after the final event both
/// cycle members are unreachable even though they reference each other.
pub fn detached_cycle(size: u32) -> Trace {
    let mut b = TraceBuilder::new();
    let anchor = b.create_unlinked(size, 1);
    b.root_add(anchor);
    let x = b.create_unlinked(size, 1);
    let y = b.create(size, vec![Some(x)]);
    b.slot_write(x, SlotIdx::new(0), Some(y));
    b.slot_write(anchor, SlotIdx::new(0), Some(x));
    // Detach the cycle {x, y} with a single overwrite.
    b.slot_clear(anchor, SlotIdx::new(0));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use std::collections::HashSet;

    #[test]
    fn churn_is_deterministic_per_seed() {
        let cfg = ChurnConfig::default();
        let a = churn(&cfg, 7);
        let b = churn(&cfg, 7);
        let c = churn(&cfg, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn churn_references_only_created_objects() {
        let t = churn(&ChurnConfig::default(), 3);
        let mut created = HashSet::new();
        for ev in t.iter() {
            match ev {
                Event::Create { id, slots, .. } => {
                    for s in slots.iter().flatten() {
                        assert!(created.contains(s), "create referenced unknown {s:?}");
                    }
                    created.insert(*id);
                }
                Event::SlotWrite { src, new, .. } => {
                    assert!(created.contains(src));
                    if let Some(n) = new {
                        assert!(created.contains(n));
                    }
                }
                Event::Access { id } | Event::RootAdd { id } | Event::RootRemove { id } => {
                    assert!(created.contains(id));
                }
                Event::Phase { .. } => {}
            }
        }
    }

    #[test]
    fn churn_slot_indexes_in_bounds() {
        let cfg = ChurnConfig {
            slots_per_object: 2,
            ..ChurnConfig::default()
        };
        let t = churn(&cfg, 11);
        for ev in t.iter() {
            if let Event::SlotWrite { slot, .. } = ev {
                assert!(slot.index() < 2);
            }
        }
    }

    #[test]
    fn linear_chain_shape() {
        let t = linear_chain(5, 64, Some(2));
        let s = t.stats();
        assert_eq!(s.objects_created, 5);
        // 4 link stores + 1 cut
        assert_eq!(s.count(EventKind::SlotWrite), 5);
        assert_eq!(s.count(EventKind::RootAdd), 1);
    }

    #[test]
    fn wide_tree_counts_nodes() {
        let (t, n) = wide_tree(3, 2, 32);
        assert_eq!(n, 1 + 2 + 4 + 8);
        assert_eq!(t.stats().objects_created as usize, n);
    }

    #[test]
    fn detached_cycle_ends_with_cut() {
        let t = detached_cycle(16);
        let last = t.events().last().unwrap();
        assert!(matches!(last, Event::SlotWrite { new: None, .. }));
    }
}
