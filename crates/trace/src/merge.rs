//! Interleaving multiple traces into one mixed workload.
//!
//! §1 of the paper notes that a collection rate tuned from one
//! application's profile "may be in conflict with other applications
//! manipulating the same database" — a key argument for self-adaptive
//! control. This module builds such mixed workloads: the object ids of
//! each input trace are remapped into a disjoint range and the event
//! streams are interleaved deterministically (seeded), preserving each
//! trace's internal event order (so per-trace causality — create before
//! use — survives).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::Event;
use crate::ids::{ObjectId, PhaseId};
use crate::trace::Trace;

fn remap(id: ObjectId, offset: u64) -> ObjectId {
    ObjectId::new(id.raw() + offset)
}

fn remap_event(ev: &Event, id_offset: u64, phase_offset: u16) -> Event {
    match ev {
        Event::Create { id, size, slots } => Event::Create {
            id: remap(*id, id_offset),
            size: *size,
            slots: slots
                .iter()
                .map(|s| s.map(|t| remap(t, id_offset)))
                .collect(),
        },
        Event::Access { id } => Event::Access {
            id: remap(*id, id_offset),
        },
        Event::SlotWrite { src, slot, new } => Event::SlotWrite {
            src: remap(*src, id_offset),
            slot: *slot,
            new: new.map(|t| remap(t, id_offset)),
        },
        Event::RootAdd { id } => Event::RootAdd {
            id: remap(*id, id_offset),
        },
        Event::RootRemove { id } => Event::RootRemove {
            id: remap(*id, id_offset),
        },
        Event::Phase { id } => Event::Phase {
            id: PhaseId::new(id.raw() + phase_offset),
        },
    }
}

/// Interleaves `traces` into one mixed workload.
///
/// Ids are remapped into disjoint ranges; phase names are prefixed with
/// the trace index (`app0:GenDB`, `app1:GenDB`, …). At each step the next
/// event is drawn from a randomly chosen (seeded) input trace, weighted by
/// how many events that trace still has — an unbiased interleaving that
/// finishes all inputs together.
pub fn interleave(traces: &[Trace], seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);

    // Disjoint id ranges: offset by each trace's max id + 1.
    let mut id_offsets = Vec::with_capacity(traces.len());
    let mut next_offset = 0u64;
    for t in traces {
        id_offsets.push(next_offset);
        let max_id = t
            .iter()
            .filter_map(|e| match e {
                Event::Create { id, .. } => Some(id.raw()),
                _ => None,
            })
            .max();
        next_offset += max_id.map_or(0, |m| m + 1);
    }

    // Phase-name table: concatenated, prefixed.
    let mut phase_names = Vec::new();
    let mut phase_offsets = Vec::with_capacity(traces.len());
    for (i, t) in traces.iter().enumerate() {
        phase_offsets.push(phase_names.len() as u16);
        for name in t.phase_names() {
            phase_names.push(format!("app{i}:{name}"));
        }
    }

    let mut cursors: Vec<usize> = vec![0; traces.len()];
    let total: usize = traces.iter().map(Trace::len).sum();
    let mut events = Vec::with_capacity(total);
    let mut remaining = total;
    while remaining > 0 {
        // Weighted choice by remaining events per trace.
        let mut pick = rng.random_range(0..remaining);
        let ti = cursors
            .iter()
            .enumerate()
            .find_map(|(ti, &c)| {
                let left = traces[ti].len() - c;
                if pick < left {
                    Some(ti)
                } else {
                    pick -= left;
                    None
                }
            })
            .expect("remaining > 0 implies a trace has events left");
        let ev = &traces[ti].events()[cursors[ti]];
        events.push(remap_event(ev, id_offsets[ti], phase_offsets[ti]));
        cursors[ti] += 1;
        remaining -= 1;
    }
    Trace::from_parts(events, phase_names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{churn, ChurnConfig};
    use std::collections::HashSet;

    fn two_traces() -> (Trace, Trace) {
        let cfg = ChurnConfig {
            steps: 60,
            ..ChurnConfig::default()
        };
        (churn(&cfg, 1), churn(&cfg, 2))
    }

    #[test]
    fn interleave_preserves_all_events() {
        let (a, b) = two_traces();
        let merged = interleave(&[a.clone(), b.clone()], 7);
        assert_eq!(merged.len(), a.len() + b.len());
    }

    #[test]
    fn ids_are_disjoint_across_inputs() {
        let (a, b) = two_traces();
        let a_created: HashSet<u64> = a
            .iter()
            .filter_map(|e| match e {
                Event::Create { id, .. } => Some(id.raw()),
                _ => None,
            })
            .collect();
        let merged = interleave(&[a.clone(), b.clone()], 7);
        let merged_created: Vec<u64> = merged
            .iter()
            .filter_map(|e| match e {
                Event::Create { id, .. } => Some(id.raw()),
                _ => None,
            })
            .collect();
        // No duplicate creations after remapping, and at least as many
        // distinct ids as either input alone.
        let unique: HashSet<u64> = merged_created.iter().copied().collect();
        assert_eq!(unique.len(), merged_created.len());
        assert!(unique.len() > a_created.len());
    }

    #[test]
    fn per_trace_order_is_preserved() {
        let (a, b) = two_traces();
        let merged = interleave(&[a.clone(), b.clone()], 9);
        // Project the merged trace back onto trace a's id range: the
        // subsequence must equal a's remapped event sequence.
        let a_ids: u64 = a
            .iter()
            .filter_map(|e| match e {
                Event::Create { id, .. } => Some(id.raw() + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let from_a: Vec<&Event> = merged
            .iter()
            .filter(|e| match e.subject() {
                Some(id) => id.raw() < a_ids,
                None => false,
            })
            .collect();
        let expected: Vec<Event> = a
            .iter()
            .filter(|e| e.subject().is_some())
            .map(|e| remap_event(e, 0, 0))
            .collect();
        assert_eq!(from_a.len(), expected.len());
        for (got, want) in from_a.iter().zip(&expected) {
            assert_eq!(**got, *want);
        }
    }

    #[test]
    fn phase_names_are_prefixed() {
        let mut b1 = crate::trace::TraceBuilder::new();
        b1.phase("GenDB");
        let t1 = b1.finish();
        let mut b2 = crate::trace::TraceBuilder::new();
        b2.phase("GenDB");
        let t2 = b2.finish();
        let merged = interleave(&[t1, t2], 1);
        let names: HashSet<&str> = merged.phase_names().iter().map(String::as_str).collect();
        assert!(names.contains("app0:GenDB"));
        assert!(names.contains("app1:GenDB"));
    }

    #[test]
    fn interleave_is_deterministic_per_seed() {
        let (a, b) = two_traces();
        let x = interleave(&[a.clone(), b.clone()], 5);
        let y = interleave(&[a.clone(), b.clone()], 5);
        let z = interleave(&[a, b], 6);
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn single_trace_interleave_is_identity_modulo_phases() {
        let cfg = ChurnConfig::default();
        let t = churn(&cfg, 3);
        let merged = interleave(std::slice::from_ref(&t), 1);
        assert_eq!(merged.events(), t.events());
    }

    #[test]
    fn empty_input_yields_empty_trace() {
        assert_eq!(interleave(&[], 1).len(), 0);
    }
}
