//! The database event alphabet.

use crate::ids::{ObjectId, PhaseId, SlotIdx};

/// One logical database event.
///
/// Events describe what the *application* did, never what the storage
/// manager did: there is no "collect" event because collection scheduling
/// is exactly the decision under study. The alphabet matches the event
/// classes of the paper's simulator (object creations, accesses,
/// modifications) plus explicit root-set management and phase markers used
/// for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A new object of `size` bytes with the given initial slot contents.
    ///
    /// Initial slot stores are *not* pointer overwrites: no pointer existed
    /// before, so no garbage can be created.
    Create {
        /// The fresh object's id.
        id: ObjectId,
        /// Object size in bytes.
        size: u32,
        /// Initial slot contents (`None` = null pointer).
        slots: Box<[Option<ObjectId>]>,
    },
    /// A read-only access (navigation) to an existing object.
    Access {
        /// The object read.
        id: ObjectId,
    },
    /// A pointer store: `src.slots[slot] = new`.
    ///
    /// Whether this counts as a *pointer overwrite* (the paper's unit of
    /// collection-rate time) depends on the old slot value, which the store
    /// knows at replay time: overwriting a non-null pointer is the event
    /// that can create garbage.
    SlotWrite {
        /// The object whose slot is written.
        src: ObjectId,
        /// Which slot.
        slot: SlotIdx,
        /// The new pointer (`None` = null).
        new: Option<ObjectId>,
    },
    /// Adds an object to the persistent root set.
    RootAdd {
        /// The object pinned as a root.
        id: ObjectId,
    },
    /// Removes an object from the persistent root set.
    RootRemove {
        /// The object unpinned.
        id: ObjectId,
    },
    /// Marks the start of an application phase (reporting only).
    Phase {
        /// Phase id (name lives in the trace's side table).
        id: PhaseId,
    },
}

impl Event {
    /// True for events that mutate database state (creations, slot writes,
    /// root changes); accesses and phase marks are not mutations.
    pub fn is_mutation(&self) -> bool {
        !matches!(self, Event::Access { .. } | Event::Phase { .. })
    }

    /// True for events a page server must perform I/O for (everything the
    /// application does to objects; phase marks are free).
    pub fn touches_storage(&self) -> bool {
        !matches!(self, Event::Phase { .. })
    }

    /// The primary object this event concerns, if any.
    pub fn subject(&self) -> Option<ObjectId> {
        match self {
            Event::Create { id, .. }
            | Event::Access { id }
            | Event::RootAdd { id }
            | Event::RootRemove { id } => Some(*id),
            Event::SlotWrite { src, .. } => Some(*src),
            Event::Phase { .. } => None,
        }
    }

    /// Short lowercase tag used by the codec and statistics.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Create { .. } => EventKind::Create,
            Event::Access { .. } => EventKind::Access,
            Event::SlotWrite { .. } => EventKind::SlotWrite,
            Event::RootAdd { .. } => EventKind::RootAdd,
            Event::RootRemove { .. } => EventKind::RootRemove,
            Event::Phase { .. } => EventKind::Phase,
        }
    }
}

/// Discriminant-only view of [`Event`], used for counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Object creation.
    Create,
    /// Read-only access.
    Access,
    /// Pointer store.
    SlotWrite,
    /// Root-set addition.
    RootAdd,
    /// Root-set removal.
    RootRemove,
    /// Phase marker.
    Phase,
}

impl EventKind {
    /// Every kind, in a stable order.
    pub const ALL: [EventKind; 6] = [
        EventKind::Create,
        EventKind::Access,
        EventKind::SlotWrite,
        EventKind::RootAdd,
        EventKind::RootRemove,
        EventKind::Phase,
    ];

    /// Stable tag used by the text codec.
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::Create => "c",
            EventKind::Access => "a",
            EventKind::SlotWrite => "w",
            EventKind::RootAdd => "r+",
            EventKind::RootRemove => "r-",
            EventKind::Phase => "ph",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    #[test]
    fn mutation_classification() {
        assert!(Event::Create {
            id: oid(1),
            size: 10,
            slots: Box::new([]),
        }
        .is_mutation());
        assert!(Event::SlotWrite {
            src: oid(1),
            slot: SlotIdx::new(0),
            new: None,
        }
        .is_mutation());
        assert!(Event::RootAdd { id: oid(1) }.is_mutation());
        assert!(!Event::Access { id: oid(1) }.is_mutation());
        assert!(!Event::Phase {
            id: PhaseId::new(0)
        }
        .is_mutation());
    }

    #[test]
    fn storage_classification() {
        assert!(Event::Access { id: oid(1) }.touches_storage());
        assert!(!Event::Phase {
            id: PhaseId::new(1)
        }
        .touches_storage());
    }

    #[test]
    fn subjects() {
        assert_eq!(Event::Access { id: oid(7) }.subject(), Some(oid(7)));
        assert_eq!(
            Event::SlotWrite {
                src: oid(3),
                slot: SlotIdx::new(1),
                new: Some(oid(9)),
            }
            .subject(),
            Some(oid(3))
        );
        assert_eq!(
            Event::Phase {
                id: PhaseId::new(0)
            }
            .subject(),
            None
        );
    }

    #[test]
    fn kind_tags_are_unique() {
        use std::collections::HashSet;
        let tags: HashSet<_> = EventKind::ALL.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), EventKind::ALL.len());
    }
}
