//! Failure injection for the trace codec: arbitrary and corrupted inputs
//! must produce errors, never panics, and valid-looking errors carry line
//! numbers.

use proptest::prelude::*;

use odbgc_trace::codec::{decode, encode};
use odbgc_trace::synthetic::{churn, ChurnConfig};

proptest! {
    #[test]
    fn decode_never_panics_on_arbitrary_text(text in ".*") {
        let _ = decode(&text);
    }

    #[test]
    fn decode_never_panics_on_header_plus_noise(body in "[ -~\\n]{0,400}") {
        let text = format!("odbgc-trace v1\n{body}");
        let _ = decode(&text);
    }

    #[test]
    fn truncated_encodings_fail_cleanly(seed in any::<u64>(), cut in 0.0f64..1.0) {
        let cfg = ChurnConfig { steps: 80, ..ChurnConfig::default() };
        let text = encode(&churn(&cfg, seed));
        // Cut at a byte boundary that keeps the string valid UTF-8 (the
        // format is ASCII, so any boundary works).
        let at = ((text.len() as f64) * cut) as usize;
        let truncated = &text[..at.min(text.len())];
        // Must not panic; may succeed only if the cut landed on a line
        // boundary (the format is line-delimited).
        let _ = decode(truncated);
    }

    #[test]
    fn single_byte_corruption_fails_cleanly(seed in any::<u64>(), pos_frac in 0.0f64..1.0, junk in 0u8..128) {
        let cfg = ChurnConfig { steps: 40, ..ChurnConfig::default() };
        let text = encode(&churn(&cfg, seed));
        let mut bytes = text.into_bytes();
        if bytes.is_empty() {
            return Ok(());
        }
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] = junk;
        if let Ok(corrupted) = String::from_utf8(bytes) {
            // Decoding either fails with a line-numbered error or — when
            // the corruption happens to be benign (e.g. it hit a digit and
            // produced another digit, or hit a comment) — succeeds. Both
            // are fine; panicking is not.
            if let Err(e) = decode(&corrupted) {
                prop_assert!(e.line >= 1);
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    #[test]
    fn line_deletion_is_detected_or_harmless(seed in any::<u64>(), victim_frac in 0.0f64..1.0) {
        let cfg = ChurnConfig { steps: 60, ..ChurnConfig::default() };
        let trace = churn(&cfg, seed);
        let text = encode(&trace);
        let lines: Vec<&str> = text.lines().collect();
        if lines.len() <= 2 {
            return Ok(());
        }
        let victim = 1 + ((lines.len() - 1) as f64 * victim_frac) as usize % (lines.len() - 1);
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        // Event-level framing means a deleted line decodes to a shorter
        // trace (the codec cannot know an event is missing), never a panic.
        if let Ok(back) = decode(&mutated) {
            prop_assert_eq!(back.len() + 1, trace.len());
        }
    }
}
