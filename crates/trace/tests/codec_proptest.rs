//! Property tests: the text codec is a lossless round-trip for any trace.

use proptest::prelude::*;

use odbgc_trace::codec::{decode, encode};
use odbgc_trace::synthetic::{churn, ChurnConfig};
use odbgc_trace::{Event, ObjectId, PhaseId, SlotIdx, Trace};

/// Strategy for an arbitrary (not necessarily semantically valid) event.
/// The codec must round-trip anything the type can represent.
fn arb_event() -> impl Strategy<Value = Event> {
    let obj = (0u64..1000).prop_map(ObjectId::new);
    let opt_obj = proptest::option::of((0u64..1000).prop_map(ObjectId::new));
    prop_oneof![
        (
            obj.clone(),
            1u32..10_000,
            proptest::collection::vec(opt_obj.clone(), 0..8)
        )
            .prop_map(|(id, size, slots)| Event::Create {
                id,
                size,
                slots: slots.into_boxed_slice(),
            }),
        obj.clone().prop_map(|id| Event::Access { id }),
        (obj.clone(), 0u32..8, opt_obj).prop_map(|(src, slot, new)| Event::SlotWrite {
            src,
            slot: SlotIdx::new(slot),
            new,
        }),
        obj.clone().prop_map(|id| Event::RootAdd { id }),
        obj.prop_map(|id| Event::RootRemove { id }),
        (0u16..4).prop_map(|id| Event::Phase {
            id: PhaseId::new(id)
        }),
    ]
}

proptest! {
    #[test]
    fn arbitrary_traces_round_trip(events in proptest::collection::vec(arb_event(), 0..200)) {
        let n_phases = events
            .iter()
            .filter_map(|e| match e {
                Event::Phase { id } => Some(id.index() + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let phase_names: Vec<String> = (0..n_phases).map(|i| format!("phase{i}")).collect();
        let trace = Trace::from_parts(events, phase_names);
        let text = encode(&trace);
        let back = decode(&text).expect("decode");
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn churn_traces_round_trip(seed in any::<u64>(), steps in 1usize..300) {
        let cfg = ChurnConfig { steps, ..ChurnConfig::default() };
        let trace = churn(&cfg, seed);
        let back = decode(&encode(&trace)).expect("decode");
        prop_assert_eq!(trace, back);
    }

    #[test]
    fn churn_is_deterministic(seed in any::<u64>()) {
        let cfg = ChurnConfig::default();
        prop_assert_eq!(churn(&cfg, seed), churn(&cfg, seed));
    }

    #[test]
    fn encoded_form_is_line_per_event_plus_header(seed in any::<u64>()) {
        let cfg = ChurnConfig { steps: 50, ..ChurnConfig::default() };
        let trace = churn(&cfg, seed);
        let text = encode(&trace);
        // Header + (optional phases line) + one line per event.
        let expected = 1 + trace.len() + usize::from(!trace.phase_names().is_empty());
        prop_assert_eq!(text.lines().count(), expected);
    }
}
