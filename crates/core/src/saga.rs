//! SAGA: the Semi-Automatic GArbage percentage policy (§2.3).
//!
//! The user requests that garbage occupy `SAGA_Frac` of the database.
//! Time is measured in pointer overwrites — the events that create
//! garbage; a read-only phase does not advance SAGA time because no
//! garbage can appear. After each collection the policy solves for the
//! interval `Δt` (in overwrites) until the next one:
//!
//! ```text
//! Δt = (CurrColl − GarbDiff(t)) / TotGarb'(t)
//! GarbDiff(t) = ActGarb(t) − TargetGarb(t)
//! TargetGarb(t) = DBSize(t) · SAGA_Frac
//! ```
//!
//! under the assumptions that the next collection reclaims about as much
//! as the current one (`CurrColl`) and that the database does not grow
//! appreciably between collections. `TotGarb'(t)` — the garbage creation
//! rate — is estimated by an exponentially weighted slope with
//! `Weight = 0.7` (§2.3). Because `Δt` blows up when the slope approaches
//! zero (or goes negative), it is clamped to `[Δt_min, Δt_max] = [2, 1000]`
//! overwrites; §2.3 notes the clamps are rarely hit in practice.
//!
//! `ActGarb(t)` is unobservable without a database scan, so it comes from
//! a pluggable [`GarbageEstimator`] (§2.4).

use crate::estimator::GarbageEstimator;
use crate::policy::{ClampHit, CollectionObservation, RatePolicy, Trigger};
use crate::slope::WeightedSlope;

/// SAGA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SagaConfig {
    /// Requested garbage share of database size, in `[0, 1)`.
    pub frac: f64,
    /// Slope-smoothing weight (paper: 0.7).
    pub weight: f64,
    /// Lower clamp on `Δt` in overwrites (paper: 2).
    pub dt_min: u64,
    /// Upper clamp on `Δt` in overwrites (paper: 1000).
    pub dt_max: u64,
}

impl SagaConfig {
    /// The paper's parameters for a requested garbage fraction.
    pub fn new(frac: f64) -> Self {
        SagaConfig {
            frac,
            weight: WeightedSlope::PAPER_WEIGHT,
            dt_min: 2,
            dt_max: 1000,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.frac),
            "SAGA_Frac must be in [0, 1)"
        );
        assert!(self.dt_min >= 1 && self.dt_max >= self.dt_min);
    }
}

/// The SAGA rate policy.
///
/// ```
/// use odbgc_core::{CollectionObservation, Oracle, RatePolicy, SagaConfig, SagaPolicy};
///
/// // "At most 10% of the database may be garbage."
/// let mut policy = SagaPolicy::new(SagaConfig::new(0.10), Box::new(Oracle));
/// // Cold start: collect as soon as garbage can exist (Δt_min = 2).
/// assert_eq!(policy.initial_trigger().overwrites, Some(2));
/// // After observing a collection, the interval adapts to the measured
/// // garbage-creation rate, clamped to [2, 1000] overwrites.
/// let obs = CollectionObservation {
///     bytes_reclaimed: 60_000,
///     total_collected: 60_000,
///     overwrite_clock: 700,
///     db_size: 2_000_000,
///     exact_garbage: 150_000,
///     ..CollectionObservation::zero()
/// };
/// let dt = policy.after_collection(&obs).overwrites.unwrap();
/// assert!((2..=1000).contains(&dt));
/// ```
pub struct SagaPolicy {
    config: SagaConfig,
    slope: WeightedSlope,
    estimator: Box<dyn GarbageEstimator + Send>,
    /// Whether the last `Δt` computation hit `dt_min` or `dt_max`.
    last_clamp: ClampHit,
}

impl std::fmt::Debug for SagaPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SagaPolicy")
            .field("config", &self.config)
            .field("estimator", &self.estimator.name())
            .finish()
    }
}

impl SagaPolicy {
    /// A policy with the given configuration and garbage estimator.
    pub fn new(config: SagaConfig, estimator: Box<dyn GarbageEstimator + Send>) -> Self {
        config.validate();
        SagaPolicy {
            slope: WeightedSlope::new(config.weight),
            config,
            estimator,
            last_clamp: ClampHit::None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SagaConfig {
        &self.config
    }

    /// Current estimate of the garbage-creation rate (bytes/overwrite).
    pub fn garbage_rate(&self) -> f64 {
        self.slope.slope()
    }

    /// The most recent `ActGarb` estimate is produced inside
    /// [`RatePolicy::after_collection`]; this exposes the estimator for
    /// series reporting.
    pub fn estimator_name(&self) -> String {
        self.estimator.name()
    }
}

impl RatePolicy for SagaPolicy {
    fn initial_trigger(&mut self) -> Trigger {
        // Cold start: collect as soon as the first garbage can exist.
        // Figure 7b's "initially high rates" come from exactly this.
        Trigger::after_overwrites(self.config.dt_min)
    }

    fn after_collection(&mut self, obs: &CollectionObservation) -> Trigger {
        let act_garb = self.estimator.estimate(obs);
        // TotGarb(t) = TotColl(t) + ActGarb(t): cumulative garbage ever
        // generated, reconstructed from the estimate.
        let tot_garb = obs.total_collected as f64 + act_garb;
        let rate = self.slope.update(obs.overwrite_clock as f64, tot_garb);

        let target = obs.db_size as f64 * self.config.frac;
        let garb_diff = act_garb - target;
        let numer = obs.bytes_reclaimed as f64 - garb_diff;

        let dt = if numer <= 0.0 {
            // Already over target even after assuming the next collection
            // reclaims CurrColl: collect as soon as possible.
            self.last_clamp = ClampHit::Min;
            self.config.dt_min
        } else if rate > f64::EPSILON {
            let raw = numer / rate;
            if raw.is_finite() && raw >= 0.0 {
                let rounded = raw.round() as u64;
                self.last_clamp = if rounded < self.config.dt_min {
                    ClampHit::Min
                } else if rounded > self.config.dt_max {
                    ClampHit::Max
                } else {
                    ClampHit::None
                };
                rounded.clamp(self.config.dt_min, self.config.dt_max)
            } else {
                self.last_clamp = ClampHit::Max;
                self.config.dt_max
            }
        } else {
            // No measured garbage growth: back off to the maximum.
            self.last_clamp = ClampHit::Max;
            self.config.dt_max
        };
        Trigger::after_overwrites(dt)
    }

    fn last_clamp(&self) -> ClampHit {
        self.last_clamp
    }

    fn name(&self) -> String {
        format!(
            "saga({:.1}%, {})",
            self.config.frac * 100.0,
            self.estimator.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::oracle::Oracle;

    fn oracle_saga(frac: f64) -> SagaPolicy {
        SagaPolicy::new(SagaConfig::new(frac), Box::new(Oracle))
    }

    /// Closed-loop miniature world: garbage grows at `g` bytes/overwrite,
    /// each collection reclaims up to `reclaim` bytes, database size is
    /// fixed. Returns the garbage level observed at each collection.
    fn run_closed_loop(
        policy: &mut SagaPolicy,
        g: f64,
        reclaim: f64,
        db_size: u64,
        steps: usize,
    ) -> Vec<f64> {
        let mut clock = 0u64;
        let mut garbage = 0.0f64;
        let mut total_collected = 0.0f64;
        let mut trigger = policy.initial_trigger();
        let mut levels = Vec::new();
        for i in 0..steps {
            let dt = trigger.overwrites.expect("SAGA triggers on overwrites");
            clock += dt;
            garbage += g * dt as f64;
            let collected = garbage.min(reclaim);
            garbage -= collected;
            total_collected += collected;
            levels.push(garbage);
            let obs = CollectionObservation {
                collection_index: i as u64,
                bytes_reclaimed: collected.round() as u64,
                total_collected: total_collected.round() as u64,
                overwrite_clock: clock,
                db_size,
                exact_garbage: garbage.round() as u64,
                ..CollectionObservation::zero()
            };
            trigger = policy.after_collection(&obs);
        }
        levels
    }

    #[test]
    fn oracle_closed_loop_converges_to_target() {
        let db = 1_000_000u64;
        let frac = 0.10;
        let mut p = oracle_saga(frac);
        let levels = run_closed_loop(&mut p, 200.0, 50_000.0, db, 60);
        let target = db as f64 * frac;
        // Post-collection garbage settles at the target level.
        let tail = &levels[40..];
        for &l in tail {
            assert!(
                (l - target).abs() / target < 0.05,
                "level {l} far from target {target}"
            );
        }
    }

    #[test]
    fn higher_requested_fraction_means_longer_intervals() {
        let db = 1_000_000u64;
        let mut p5 = oracle_saga(0.05);
        let mut p20 = oracle_saga(0.20);
        run_closed_loop(&mut p5, 200.0, 50_000.0, db, 40);
        run_closed_loop(&mut p20, 200.0, 50_000.0, db, 40);
        // Both converge; at steady state garbage sits at target, so the
        // 20% policy tolerates more garbage. Compare steady-state Δt via
        // one more decision at identical observations.
        let obs = |garb: u64| CollectionObservation {
            bytes_reclaimed: 10_000,
            total_collected: 1_000_000,
            overwrite_clock: 10_000_000,
            db_size: db,
            exact_garbage: garb,
            ..CollectionObservation::zero()
        };
        let t5 = p5.after_collection(&obs(50_000));
        let t20 = p20.after_collection(&obs(50_000));
        // 5%: at target → Δt = CurrColl/rate; 20%: far under target →
        // much longer wait.
        assert!(t20.overwrites.unwrap() > t5.overwrites.unwrap());
    }

    #[test]
    fn over_target_collects_at_dt_min() {
        let mut p = oracle_saga(0.05);
        // Prime the slope with two points.
        p.after_collection(&CollectionObservation {
            overwrite_clock: 100,
            exact_garbage: 10_000,
            db_size: 100_000,
            bytes_reclaimed: 100,
            ..CollectionObservation::zero()
        });
        let t = p.after_collection(&CollectionObservation {
            overwrite_clock: 200,
            exact_garbage: 50_000, // 50% garbage vs 5% target
            db_size: 100_000,
            bytes_reclaimed: 100, // reclaiming almost nothing
            ..CollectionObservation::zero()
        });
        assert_eq!(t, Trigger::after_overwrites(2));
    }

    #[test]
    fn zero_growth_backs_off_to_dt_max() {
        let mut p = oracle_saga(0.10);
        // Two observations with no garbage growth at all.
        for clock in [100, 200] {
            let t = p.after_collection(&CollectionObservation {
                overwrite_clock: clock,
                exact_garbage: 0,
                db_size: 100_000,
                bytes_reclaimed: 0,
                ..CollectionObservation::zero()
            });
            assert_eq!(t, Trigger::after_overwrites(1000));
        }
    }

    #[test]
    fn read_only_phase_does_not_advance_time() {
        let mut p = oracle_saga(0.10);
        let base = CollectionObservation {
            overwrite_clock: 500,
            exact_garbage: 5_000,
            db_size: 100_000,
            bytes_reclaimed: 2_000,
            total_collected: 2_000,
            ..CollectionObservation::zero()
        };
        p.after_collection(&base);
        let rate_before = p.garbage_rate();
        // Same clock (no overwrites happened): slope must not change.
        p.after_collection(&CollectionObservation {
            total_collected: 4_000,
            exact_garbage: 3_000,
            ..base
        });
        assert_eq!(p.garbage_rate(), rate_before);
    }

    #[test]
    fn dt_respects_clamps() {
        let mut p = SagaPolicy::new(
            SagaConfig {
                frac: 0.10,
                weight: 0.7,
                dt_min: 5,
                dt_max: 50,
            },
            Box::new(Oracle),
        );
        assert_eq!(p.initial_trigger(), Trigger::after_overwrites(5));
        // Huge reclaim + tiny rate → raw Δt enormous → clamp to 50.
        p.after_collection(&CollectionObservation {
            overwrite_clock: 100,
            exact_garbage: 100,
            db_size: 1_000_000,
            bytes_reclaimed: 1,
            ..CollectionObservation::zero()
        });
        let t = p.after_collection(&CollectionObservation {
            overwrite_clock: 200,
            exact_garbage: 200,
            db_size: 1_000_000,
            bytes_reclaimed: 1_000_000,
            total_collected: 1_000_000,
            ..CollectionObservation::zero()
        });
        assert_eq!(t, Trigger::after_overwrites(50));
    }

    #[test]
    fn clamp_hits_are_recorded_per_decision() {
        let mut p = oracle_saga(0.05);
        assert_eq!(p.last_clamp(), ClampHit::None);
        // Prime the slope, then push far over target: dt_min decision.
        p.after_collection(&CollectionObservation {
            overwrite_clock: 100,
            exact_garbage: 10_000,
            db_size: 100_000,
            bytes_reclaimed: 100,
            ..CollectionObservation::zero()
        });
        p.after_collection(&CollectionObservation {
            overwrite_clock: 200,
            exact_garbage: 50_000,
            db_size: 100_000,
            bytes_reclaimed: 100,
            ..CollectionObservation::zero()
        });
        assert_eq!(p.last_clamp(), ClampHit::Min);
        // No measured growth at all backs off to dt_max.
        let mut q = oracle_saga(0.10);
        for clock in [100, 200] {
            q.after_collection(&CollectionObservation {
                overwrite_clock: clock,
                exact_garbage: 0,
                db_size: 100_000,
                ..CollectionObservation::zero()
            });
        }
        assert_eq!(q.last_clamp(), ClampHit::Max);
    }

    #[test]
    #[should_panic(expected = "SAGA_Frac")]
    fn full_garbage_fraction_rejected() {
        oracle_saga(1.0);
    }

    #[test]
    fn name_reports_fraction_and_estimator() {
        assert_eq!(oracle_saga(0.10).name(), "saga(10.0%, oracle)");
    }
}
