//! SAIO: the Semi-Automatic I/O percentage policy (§2.2).
//!
//! The user requests that garbage collection consume `SAIO_Frac` of all
//! I/O operations. Counting I/O operations as the time base (it is exactly
//! the controlled quantity), the policy solves, after each collection, for
//! the application-I/O interval `ΔAppIO` to wait before collecting again:
//!
//! ```text
//! SAIO_Frac = GCIO|c−chist..c+1 / (GCIO + AppIO)|c−chist..c+1
//! ```
//!
//! under the assumption `ΔGCIO = CurrGCIO` — the next collection will cost
//! about as much I/O as the current one did. Solving:
//!
//! ```text
//! ΔAppIO = (Σ GCIO_hist + CurrGCIO) · (1 − SAIO_Frac) / SAIO_Frac − Σ AppIO_hist
//! ```
//!
//! With `c_hist = 0` (the paper's default) the history sums vanish and the
//! policy reacts instantly to changes in collection cost; §4.1.1 shows
//! history mainly helps at extreme requested fractions, where the
//! cost-constancy assumption's errors do not cancel.

use std::collections::VecDeque;

use crate::policy::{ClampHit, CollectionObservation, HistoryLen, RatePolicy, Trigger};

/// SAIO configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaioConfig {
    /// Requested collector share of total I/O, in `(0, 1]`.
    pub frac: f64,
    /// `c_hist`: how many observed inter-collection intervals to include.
    pub history: HistoryLen,
    /// Application I/O operations before the very first collection.
    pub initial_interval: u64,
    /// Lower clamp on the computed interval.
    pub min_interval: u64,
    /// Upper clamp on the computed interval.
    pub max_interval: u64,
}

impl SaioConfig {
    /// The paper's setup for a requested fraction: no history, modest cold
    /// start, effectively unclamped.
    pub fn new(frac: f64) -> Self {
        SaioConfig {
            frac,
            history: HistoryLen::None,
            initial_interval: 100,
            min_interval: 1,
            max_interval: u64::MAX / 2,
        }
    }

    /// Sets the `c_hist` history window.
    pub fn with_history(mut self, history: HistoryLen) -> Self {
        self.history = history;
        self
    }

    fn validate(&self) {
        assert!(
            self.frac > 0.0 && self.frac <= 1.0,
            "SAIO_Frac must be in (0, 1]"
        );
        assert!(self.min_interval >= 1);
        assert!(self.max_interval >= self.min_interval);
    }
}

/// The SAIO rate policy.
///
/// ```
/// use odbgc_core::{CollectionObservation, RatePolicy, SaioPolicy, Trigger};
///
/// // "GC may use 10% of all I/O."
/// let mut policy = SaioPolicy::with_frac(0.10);
/// // The last collection cost 90 page transfers…
/// let obs = CollectionObservation {
///     gc_io: 90,
///     app_io_since_prev: 500,
///     ..CollectionObservation::zero()
/// };
/// // …so wait 810 application transfers: 90 / (90 + 810) = 10%.
/// assert_eq!(policy.after_collection(&obs), Trigger::after_app_io(810));
/// ```
#[derive(Debug, Clone)]
pub struct SaioPolicy {
    config: SaioConfig,
    /// Observed (app_io, gc_io) intervals, newest at the back, trimmed to
    /// the history limit.
    intervals: VecDeque<(u64, u64)>,
    /// Running totals over `intervals`, maintained on push/pop so each
    /// decision is O(1) in the history length instead of a re-fold.
    hist_sums: (u64, u64),
    /// Whether the last computed interval hit a configured clamp.
    last_clamp: ClampHit,
}

impl SaioPolicy {
    /// A policy with the given configuration.
    pub fn new(config: SaioConfig) -> Self {
        config.validate();
        SaioPolicy {
            config,
            intervals: VecDeque::new(),
            hist_sums: (0, 0),
            last_clamp: ClampHit::None,
        }
    }

    /// Convenience constructor from a requested fraction with defaults.
    pub fn with_frac(frac: f64) -> Self {
        SaioPolicy::new(SaioConfig::new(frac))
    }

    /// The configuration in force.
    pub fn config(&self) -> &SaioConfig {
        &self.config
    }

    fn history_sums(&self) -> (u64, u64) {
        debug_assert_eq!(
            self.hist_sums,
            self.intervals
                .iter()
                .fold((0, 0), |(a, g), &(app, gc)| (a + app, g + gc)),
            "running history sums out of sync with the interval window"
        );
        self.hist_sums
    }

    fn push_interval(&mut self, app: u64, gc: u64) {
        self.intervals.push_back((app, gc));
        self.hist_sums.0 += app;
        self.hist_sums.1 += gc;
    }

    fn pop_interval(&mut self) {
        if let Some((app, gc)) = self.intervals.pop_front() {
            self.hist_sums.0 -= app;
            self.hist_sums.1 -= gc;
        }
    }
}

impl RatePolicy for SaioPolicy {
    fn initial_trigger(&mut self) -> Trigger {
        Trigger::after_app_io(self.config.initial_interval)
    }

    fn after_collection(&mut self, obs: &CollectionObservation) -> Trigger {
        // The interval that just ended enters the history window; with
        // c_hist = 0 nothing is retained and only the cost assumption
        // (ΔGCIO = CurrGCIO) drives the next interval.
        if let Some(limit) = self.config.history.limit() {
            while self.intervals.len() >= limit.max(1) {
                self.pop_interval();
            }
            if limit > 0 {
                self.push_interval(obs.app_io_since_prev, obs.gc_io);
            }
        } else {
            self.push_interval(obs.app_io_since_prev, obs.gc_io);
        }

        let (app_hist, gc_hist) = self.history_sums();
        let predicted_gc = (gc_hist + obs.gc_io) as f64;
        let raw = predicted_gc * (1.0 - self.config.frac) / self.config.frac - app_hist as f64;
        let interval = if raw.is_finite() && raw > 0.0 {
            let rounded = raw.round() as u64;
            self.last_clamp = if rounded < self.config.min_interval {
                ClampHit::Min
            } else if rounded > self.config.max_interval {
                ClampHit::Max
            } else {
                ClampHit::None
            };
            rounded.clamp(self.config.min_interval, self.config.max_interval)
        } else {
            // A non-positive solution means the budget is already spent:
            // collecting at the minimum interval is a lower-clamp decision.
            self.last_clamp = ClampHit::Min;
            self.config.min_interval
        };
        Trigger::after_app_io(interval)
    }

    fn last_clamp(&self) -> ClampHit {
        self.last_clamp
    }

    fn name(&self) -> String {
        let hist = match self.config.history {
            HistoryLen::None => "0".to_owned(),
            HistoryLen::Fixed(n) => n.to_string(),
            HistoryLen::Infinite => "inf".to_owned(),
        };
        format!("saio({:.1}%, c_hist={hist})", self.config.frac * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(app: u64, gc: u64) -> CollectionObservation {
        CollectionObservation {
            app_io_since_prev: app,
            gc_io: gc,
            ..CollectionObservation::zero()
        }
    }

    #[test]
    fn no_history_interval_matches_closed_form() {
        // frac 10%, collection costs 90 I/Os → wait 810 app I/Os so that
        // 90 / (90 + 810) = 10%.
        let mut p = SaioPolicy::with_frac(0.10);
        let t = p.after_collection(&obs(0, 90));
        assert_eq!(t, Trigger::after_app_io(810));
    }

    #[test]
    fn closed_loop_converges_exactly_with_constant_gc_cost() {
        let frac = 0.05;
        let mut p = SaioPolicy::with_frac(frac);
        let gc_cost = 24;
        let mut interval = match p.initial_trigger().app_io {
            Some(n) => n,
            None => panic!("SAIO triggers on app I/O"),
        };
        let (mut tot_app, mut tot_gc) = (0u64, 0u64);
        for _ in 0..50 {
            tot_app += interval;
            tot_gc += gc_cost;
            let t = p.after_collection(&obs(interval, gc_cost));
            interval = t.app_io.expect("SAIO triggers on app I/O");
        }
        // Discard the cold-start interval's effect: the achieved fraction
        // over the whole run is within a whisker of the request.
        let achieved = tot_gc as f64 / (tot_gc + tot_app) as f64;
        assert!(
            (achieved - frac).abs() < 0.005,
            "achieved {achieved} vs requested {frac}"
        );
    }

    #[test]
    fn adapts_when_collection_cost_changes() {
        let mut p = SaioPolicy::with_frac(0.10);
        let t1 = p.after_collection(&obs(0, 90));
        let t2 = p.after_collection(&obs(t1.app_io.unwrap(), 180));
        // Cost doubled → interval doubles.
        assert_eq!(t2.app_io.unwrap(), 2 * t1.app_io.unwrap());
    }

    #[test]
    fn history_exposes_accumulated_error() {
        // Two on-target intervals, then a one-off cheap collection. The
        // no-history policy just scales proportionally (81); the history
        // policy sees the whole window is now *under* the requested GC
        // share and collects again immediately to make up the shortfall —
        // this is why §4.1.1 says history reduces the drift error at high
        // requested percentages.
        let cfg = SaioConfig::new(0.10).with_history(HistoryLen::Fixed(2));
        let mut p = SaioPolicy::new(cfg);
        p.after_collection(&obs(810, 90));
        p.after_collection(&obs(810, 90));
        let with_hist = p.after_collection(&obs(810, 9)).app_io.unwrap();
        let mut p0 = SaioPolicy::with_frac(0.10);
        p0.after_collection(&obs(810, 90));
        p0.after_collection(&obs(810, 90));
        let without = p0.after_collection(&obs(810, 9)).app_io.unwrap();
        assert_eq!(without, 81);
        assert_eq!(with_hist, 1);
        assert!(with_hist < without);
    }

    #[test]
    fn infinite_history_retains_everything() {
        let cfg = SaioConfig::new(0.5).with_history(HistoryLen::Infinite);
        let mut p = SaioPolicy::new(cfg);
        for _ in 0..100 {
            p.after_collection(&obs(10, 10));
        }
        assert_eq!(p.intervals.len(), 100);
    }

    #[test]
    fn over_budget_history_clamps_to_min() {
        // History says the app already did far more GC I/O than the budget
        // allows; the solved interval is negative → clamp to min.
        let cfg = SaioConfig::new(0.5).with_history(HistoryLen::Fixed(4));
        let mut p = SaioPolicy::new(cfg);
        p.after_collection(&obs(1_000, 1));
        let t = p.after_collection(&obs(1_000, 1));
        assert_eq!(t, Trigger::after_app_io(1));
    }

    #[test]
    fn full_budget_collects_continuously() {
        let mut p = SaioPolicy::with_frac(1.0);
        let t = p.after_collection(&obs(100, 50));
        assert_eq!(t, Trigger::after_app_io(1));
    }

    #[test]
    fn zero_cost_collection_collects_again_immediately() {
        let mut p = SaioPolicy::with_frac(0.10);
        let t = p.after_collection(&obs(500, 0));
        assert_eq!(t, Trigger::after_app_io(1));
    }

    #[test]
    #[should_panic(expected = "SAIO_Frac")]
    fn zero_frac_rejected() {
        SaioPolicy::with_frac(0.0);
    }

    #[test]
    fn clamp_hits_are_recorded_per_decision() {
        let cfg = SaioConfig {
            min_interval: 10,
            max_interval: 100,
            ..SaioConfig::new(0.10)
        };
        let mut p = SaioPolicy::new(cfg);
        assert_eq!(p.last_clamp(), ClampHit::None);
        // 90 gc I/O → raw 810, above max 100 → upper clamp.
        assert_eq!(p.after_collection(&obs(0, 90)), Trigger::after_app_io(100));
        assert_eq!(p.last_clamp(), ClampHit::Max);
        // 1 gc I/O → raw 9, below min 10 → lower clamp.
        assert_eq!(p.after_collection(&obs(0, 1)), Trigger::after_app_io(10));
        assert_eq!(p.last_clamp(), ClampHit::Min);
        // 5 gc I/O → raw 45, inside [10, 100] → no clamp.
        assert_eq!(p.after_collection(&obs(0, 5)), Trigger::after_app_io(45));
        assert_eq!(p.last_clamp(), ClampHit::None);
        // Zero-cost collection → degenerate raw → lower clamp.
        p.after_collection(&obs(500, 0));
        assert_eq!(p.last_clamp(), ClampHit::Min);
    }

    #[test]
    fn name_reports_parameters() {
        assert_eq!(SaioPolicy::with_frac(0.05).name(), "saio(5.0%, c_hist=0)");
        let p = SaioPolicy::new(SaioConfig::new(0.1).with_history(HistoryLen::Infinite));
        assert_eq!(p.name(), "saio(10.0%, c_hist=inf)");
    }
}
