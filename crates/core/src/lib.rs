//! Semi-automatic, self-adaptive collection-rate policies.
//!
//! This crate is the primary contribution of *Cook, Klauser, Zorn & Wolf,
//! "Semi-automatic, Self-adaptive Control of Garbage Collection Rates in
//! Object Databases" (SIGMOD 1996)*: deciding **how often** a partitioned
//! object-database garbage collector should run.
//!
//! Collecting too often wastes I/O on reclamation; collecting too rarely
//! lets garbage accumulate. There is no global optimum — it is a
//! time/space trade-off — so the policies here are *semi-automatic*: the
//! user states a goal, and the policy adapts the collection rate to the
//! observed application behavior to meet it.
//!
//! * [`SaioPolicy`] — "Semi-Automatic I/O": hold garbage-collection I/O at
//!   a requested fraction of total I/O operations.
//! * [`SagaPolicy`] — "Semi-Automatic GArbage": hold database garbage at a
//!   requested fraction of database size. SAGA cannot observe garbage
//!   directly, so it consults a [`GarbageEstimator`]: the exact [`Oracle`]
//!   (simulator-only), [`CgsCb`] (coarse-grain state / current behavior),
//!   or [`FgsHb`] (fine-grain state / history behavior) heuristics (§2.4).
//! * [`FixedRatePolicy`] and [`connectivity_heuristic_rate`] — the
//!   non-adaptive baselines §2.1 shows to be inadequate.
//! * [`OpportunisticPolicy`] and [`CoupledSaioPolicy`] — the paper's §5
//!   future-work directions, implemented as composable wrappers.
//!
//! The crate is pure control logic: it depends on nothing but the
//! [`CollectionObservation`] fed to it after every collection, and returns
//! a [`Trigger`] saying when the next collection should run. This keeps
//! the policies testable in closed-loop unit tests without a store.

#![warn(missing_docs)]

pub mod env;
pub mod estimator;
pub mod estimators;
pub mod ewma;
pub mod extensions;
pub mod fixed;
pub mod policy;
pub mod saga;
pub mod saio;
pub mod slope;
pub mod spec;

pub use env::parse_worker_env;
pub use estimator::{EstimatorKind, GarbageEstimator};
pub use estimators::cgs_cb::CgsCb;
pub use estimators::fgs_hb::FgsHb;
pub use estimators::oracle::Oracle;
pub use ewma::Ewma;
pub use extensions::coupled::{CoupledConfig, CoupledSaioPolicy};
pub use extensions::opportunistic::{OpportunisticConfig, OpportunisticPolicy};
pub use fixed::{connectivity_heuristic_rate, AllocationRatePolicy, FixedRatePolicy};
pub use policy::{
    ClampHit, CollectionObservation, HistoryLen, RatePolicy, Trigger, TriggerElapsed,
};
pub use saga::{SagaConfig, SagaPolicy};
pub use saio::{SaioConfig, SaioPolicy};
pub use slope::WeightedSlope;
pub use spec::{PolicySpec, SpecError};
