//! Declarative policy specifications.
//!
//! A [`PolicySpec`] is the data form of a rate policy: a plain value that
//! can be parsed from a CLI spec string, printed back canonically, cloned
//! into every cell of an experiment grid, compared, and finally
//! instantiated with [`PolicySpec::build`]. Experiment drivers pass specs
//! around instead of `Box<dyn RatePolicy>` factory closures, so a plan is
//! inspectable and serialisable rather than opaque.
//!
//! # Grammar
//!
//! ```text
//! fixed:<rate>                      overwrites between collections
//! alloc:<bytes>                     allocated bytes between collections
//! saio:<pct>[:hist=<n|inf>]         GC share of I/O, optional c_hist
//! saga:<pct>[:<estimator>][:dtmax=<n>]
//!                                   garbage share of DB; estimator is
//!                                   oracle | cgs-cb | fgs-hb[@h]
//! coupled:<pct>:floor=<pct>[:stretch=<x>]
//!                                   SAIO stretched when garbage < floor
//! quiescent:idle=<n>:<inner spec>   collect after n idle app I/Os
//! ```
//!
//! Percentages accept `10%`, `10`, or `0.1` (values ≥ 1 are read as
//! percent, values < 1 as the fraction itself). [`Display`] prints the
//! canonical form, and `spec.to_string().parse()` always returns the same
//! spec (round-trip property, tested in `tests/spec_proptest.rs`).
//!
//! [`Display`]: std::fmt::Display

use std::fmt;
use std::str::FromStr;

use crate::estimator::EstimatorKind;
use crate::extensions::coupled::{CoupledConfig, CoupledSaioPolicy};
use crate::extensions::opportunistic::{OpportunisticConfig, OpportunisticPolicy};
use crate::fixed::{AllocationRatePolicy, FixedRatePolicy};
use crate::policy::{HistoryLen, RatePolicy};
use crate::saga::{SagaConfig, SagaPolicy};
use crate::saio::{SaioConfig, SaioPolicy};

/// A malformed or out-of-range policy spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// A rate policy as data: everything needed to construct the policy, and
/// nothing else.
///
/// Specs are the unit of an experiment grid — each cell of an
/// `ExperimentPlan` holds one — and double as report labels via
/// [`Display`](fmt::Display).
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Collect every `rate` pointer overwrites (§2.1 baseline).
    Fixed {
        /// Overwrites between collections (≥ 1).
        rate: u64,
    },
    /// Collect every `bytes` allocated bytes (§2.1 baseline).
    Allocation {
        /// Allocated bytes between collections (≥ 1).
        bytes: u64,
    },
    /// SAIO: hold GC I/O at `frac` of total I/O (§2.2).
    Saio {
        /// Requested collector share of total I/O, in `(0, 1]`.
        frac: f64,
        /// The `c_hist` averaging window.
        history: HistoryLen,
    },
    /// SAGA: hold garbage at `frac` of database size (§2.3).
    Saga {
        /// Requested garbage share of database size, in `[0, 1)`.
        frac: f64,
        /// How `ActGarb` is estimated (§2.4).
        estimator: EstimatorKind,
        /// Override of the `Δt` upper clamp; `None` keeps the paper's
        /// 1000 overwrites. Small traces use a tighter clamp.
        dt_max: Option<u64>,
    },
    /// Coupled SAIO × SAGA cost-effectiveness policy (§5).
    Coupled {
        /// Requested collector share of total I/O, in `(0, 1]`.
        io_frac: f64,
        /// Below this estimated-garbage fraction, collections are judged
        /// cost-ineffective; in `[0, 1)`.
        garbage_floor: f64,
        /// Interval stretch factor applied under the floor (> 1).
        stretch: f64,
    },
    /// Opportunistic quiescence wrapper around another policy (§5).
    Quiescent {
        /// Application I/Os without an inner firing after which a
        /// collection runs opportunistically (≥ 1).
        idle: u64,
        /// The wrapped policy.
        inner: Box<PolicySpec>,
    },
}

impl PolicySpec {
    /// A fixed overwrite-rate policy.
    pub fn fixed(rate: u64) -> Self {
        PolicySpec::Fixed { rate }
    }

    /// A fixed allocation-rate policy.
    pub fn alloc(bytes: u64) -> Self {
        PolicySpec::Allocation { bytes }
    }

    /// SAIO with the paper's default (no history).
    pub fn saio(frac: f64) -> Self {
        PolicySpec::Saio {
            frac,
            history: HistoryLen::None,
        }
    }

    /// SAIO with an explicit `c_hist` window.
    pub fn saio_hist(frac: f64, history: HistoryLen) -> Self {
        PolicySpec::Saio { frac, history }
    }

    /// SAGA with the given estimator and the paper's clamps.
    pub fn saga(frac: f64, estimator: EstimatorKind) -> Self {
        PolicySpec::Saga {
            frac,
            estimator,
            dt_max: None,
        }
    }

    /// SAGA with a tightened `Δt_max` clamp (for small traces).
    pub fn saga_dt_max(frac: f64, estimator: EstimatorKind, dt_max: u64) -> Self {
        PolicySpec::Saga {
            frac,
            estimator,
            dt_max: Some(dt_max),
        }
    }

    /// Instantiates the policy this spec describes.
    ///
    /// Specs constructed through [`FromStr`] are already validated; specs
    /// built in code with out-of-range values panic here, exactly like
    /// constructing the underlying policy directly.
    pub fn build(&self) -> Box<dyn RatePolicy + Send> {
        match self {
            PolicySpec::Fixed { rate } => Box::new(FixedRatePolicy::new(*rate)),
            PolicySpec::Allocation { bytes } => Box::new(AllocationRatePolicy::new(*bytes)),
            PolicySpec::Saio { frac, history } => Box::new(SaioPolicy::new(
                SaioConfig::new(*frac).with_history(*history),
            )),
            PolicySpec::Saga {
                frac,
                estimator,
                dt_max,
            } => {
                let mut config = SagaConfig::new(*frac);
                if let Some(m) = dt_max {
                    config.dt_max = *m;
                }
                Box::new(SagaPolicy::new(config, estimator.build()))
            }
            PolicySpec::Coupled {
                io_frac,
                garbage_floor,
                stretch,
            } => {
                let mut config = CoupledConfig::new(*io_frac, *garbage_floor);
                config.stretch = *stretch;
                Box::new(CoupledSaioPolicy::new(config))
            }
            PolicySpec::Quiescent { idle, inner } => Box::new(OpportunisticPolicy::new(
                inner.build(),
                OpportunisticConfig {
                    quiescence_io: *idle,
                },
            )),
        }
    }
}

/// Renders a fraction the way specs write it: integral percents as
/// `10%`, everything else as the bare fraction (both forms re-parse to
/// the identical `f64`).
fn fmt_fraction(frac: f64) -> String {
    let pct = (frac * 100.0).round();
    if pct >= 1.0 && pct / 100.0 == frac {
        format!("{pct}%")
    } else {
        format!("{frac}")
    }
}

/// A percentage token: `10%`, `10`, or `0.1` — values ≥ 1 (or with a `%`
/// suffix) are percent, values < 1 are the fraction itself.
pub fn parse_fraction(tok: &str) -> Result<f64, SpecError> {
    let raw = tok.strip_suffix('%').unwrap_or(tok);
    let v: f64 = match raw.parse() {
        Ok(v) => v,
        Err(_) => return err(format!("bad percentage {tok:?}")),
    };
    let frac = if tok.ends_with('%') || v >= 1.0 {
        v / 100.0
    } else {
        v
    };
    if !(0.0..1.0).contains(&frac) && frac != 1.0 {
        return err(format!("percentage {tok:?} out of range"));
    }
    Ok(frac)
}

/// Parses an estimator token: `oracle`, `cgs-cb`, `fgs-hb`, `fgs-hb@0.5`.
pub fn parse_estimator(tok: &str) -> Result<EstimatorKind, SpecError> {
    if tok == "oracle" {
        return Ok(EstimatorKind::Oracle);
    }
    if tok == "cgs-cb" {
        return Ok(EstimatorKind::CgsCb);
    }
    if let Some(rest) = tok.strip_prefix("fgs-hb") {
        let h = match rest.strip_prefix('@') {
            None if rest.is_empty() => crate::estimators::fgs_hb::FgsHb::PAPER_H,
            Some(h) => match h.parse() {
                Ok(h) => h,
                Err(_) => return err(format!("bad history factor in {tok:?}")),
            },
            _ => return err(format!("bad estimator {tok:?}")),
        };
        if !(0.0..=1.0).contains(&h) {
            return err(format!("history factor {h} out of [0,1]"));
        }
        return Ok(EstimatorKind::FgsHb { h });
    }
    err(format!(
        "unknown estimator {tok:?} (oracle | cgs-cb | fgs-hb[@h])"
    ))
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpec::Fixed { rate } => write!(f, "fixed:{rate}"),
            PolicySpec::Allocation { bytes } => write!(f, "alloc:{bytes}"),
            PolicySpec::Saio { frac, history } => {
                write!(f, "saio:{}", fmt_fraction(*frac))?;
                match history {
                    HistoryLen::None => Ok(()),
                    HistoryLen::Fixed(n) => write!(f, ":hist={n}"),
                    HistoryLen::Infinite => write!(f, ":hist=inf"),
                }
            }
            PolicySpec::Saga {
                frac,
                estimator,
                dt_max,
            } => {
                write!(f, "saga:{}", fmt_fraction(*frac))?;
                match estimator {
                    EstimatorKind::Oracle => {}
                    EstimatorKind::CgsCb => write!(f, ":cgs-cb")?,
                    EstimatorKind::FgsHb { h } => write!(f, ":fgs-hb@{h}")?,
                }
                if let Some(m) = dt_max {
                    write!(f, ":dtmax={m}")?;
                }
                Ok(())
            }
            PolicySpec::Coupled {
                io_frac,
                garbage_floor,
                stretch,
            } => {
                write!(
                    f,
                    "coupled:{}:floor={}",
                    fmt_fraction(*io_frac),
                    fmt_fraction(*garbage_floor)
                )?;
                if *stretch != 4.0 {
                    write!(f, ":stretch={stretch}")?;
                }
                Ok(())
            }
            PolicySpec::Quiescent { idle, inner } => {
                write!(f, "quiescent:idle={idle}:{inner}")
            }
        }
    }
}

impl FromStr for PolicySpec {
    type Err = SpecError;

    fn from_str(spec: &str) -> Result<Self, SpecError> {
        let (head, rest) = match spec.split_once(':') {
            Some((h, r)) => (h, Some(r)),
            None => (spec, None),
        };
        match head {
            "fixed" => {
                let rate: u64 = match rest.and_then(|t| t.parse().ok()) {
                    Some(r) => r,
                    None => return err("fixed needs a rate: fixed:200"),
                };
                if rate == 0 {
                    return err("fixed rate must be >= 1");
                }
                Ok(PolicySpec::Fixed { rate })
            }
            "alloc" => {
                let bytes: u64 = match rest.and_then(|t| t.parse().ok()) {
                    Some(b) => b,
                    None => return err("alloc needs bytes: alloc:98304"),
                };
                if bytes == 0 {
                    return err("alloc bytes must be >= 1");
                }
                Ok(PolicySpec::Allocation { bytes })
            }
            "saio" => {
                let mut parts = match rest {
                    Some(r) => r.split(':'),
                    None => return err("saio needs a percentage: saio:10%"),
                };
                let frac = parse_fraction(parts.next().unwrap_or_default())?;
                if frac <= 0.0 {
                    return err("SAIO fraction must be > 0");
                }
                let mut history = HistoryLen::None;
                if let Some(opt) = parts.next() {
                    let hist = match opt.strip_prefix("hist=") {
                        Some(h) => h,
                        None => return err(format!("bad saio option {opt:?}")),
                    };
                    history = if hist == "inf" {
                        HistoryLen::Infinite
                    } else {
                        match hist.parse() {
                            Ok(n) => HistoryLen::Fixed(n),
                            Err(_) => return err(format!("bad history length {hist:?}")),
                        }
                    };
                }
                if let Some(extra) = parts.next() {
                    return err(format!("unexpected saio option {extra:?}"));
                }
                Ok(PolicySpec::Saio { frac, history })
            }
            "saga" => {
                let mut parts = match rest {
                    Some(r) => r.split(':').peekable(),
                    None => return err("saga needs a percentage: saga:5%"),
                };
                let frac = parse_fraction(parts.next().unwrap_or_default())?;
                if frac >= 1.0 {
                    return err("SAGA fraction must be < 1");
                }
                let estimator = match parts.peek() {
                    Some(tok) if !tok.starts_with("dtmax=") => {
                        let tok = parts.next().unwrap();
                        parse_estimator(tok)?
                    }
                    _ => EstimatorKind::Oracle,
                };
                let mut dt_max = None;
                if let Some(opt) = parts.next() {
                    let m = match opt.strip_prefix("dtmax=").and_then(|m| m.parse().ok()) {
                        Some(m) => m,
                        None => return err(format!("bad saga option {opt:?}")),
                    };
                    if m < 2 {
                        return err("dtmax must be >= 2");
                    }
                    dt_max = Some(m);
                }
                if let Some(extra) = parts.next() {
                    return err(format!("unexpected saga option {extra:?}"));
                }
                Ok(PolicySpec::Saga {
                    frac,
                    estimator,
                    dt_max,
                })
            }
            "coupled" => {
                let mut parts = match rest {
                    Some(r) => r.split(':'),
                    None => return err("coupled needs percentages: coupled:10%:floor=5%"),
                };
                let io_frac = parse_fraction(parts.next().unwrap_or_default())?;
                if io_frac <= 0.0 {
                    return err("coupled I/O fraction must be > 0");
                }
                let floor_tok = match parts.next().and_then(|t| t.strip_prefix("floor=")) {
                    Some(t) => t,
                    None => return err("coupled needs floor=<pct>: coupled:10%:floor=5%"),
                };
                let garbage_floor = parse_fraction(floor_tok)?;
                if garbage_floor >= 1.0 {
                    return err("coupled floor must be < 1");
                }
                let mut stretch = 4.0;
                if let Some(opt) = parts.next() {
                    stretch = match opt.strip_prefix("stretch=").and_then(|s| s.parse().ok()) {
                        Some(s) => s,
                        None => return err(format!("bad coupled option {opt:?}")),
                    };
                    if stretch <= 1.0 {
                        return err("stretch must exceed 1");
                    }
                }
                if let Some(extra) = parts.next() {
                    return err(format!("unexpected coupled option {extra:?}"));
                }
                Ok(PolicySpec::Coupled {
                    io_frac,
                    garbage_floor,
                    stretch,
                })
            }
            "quiescent" => {
                let rest = match rest {
                    Some(r) => r,
                    None => return err("quiescent needs idle=<n>:<inner spec>"),
                };
                let (idle_tok, inner_spec) = match rest.split_once(':') {
                    Some(pair) => pair,
                    None => return err("quiescent needs an inner spec after idle=<n>"),
                };
                let idle: u64 = match idle_tok.strip_prefix("idle=").and_then(|n| n.parse().ok()) {
                    Some(n) => n,
                    None => return err(format!("bad quiescent option {idle_tok:?}")),
                };
                if idle == 0 {
                    return err("idle must be >= 1");
                }
                let inner = inner_spec.parse::<PolicySpec>()?;
                Ok(PolicySpec::Quiescent {
                    idle,
                    inner: Box::new(inner),
                })
            }
            other => err(format!(
                "unknown policy {other:?} (saio | saga | fixed | alloc | coupled | quiescent)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_forms() {
        assert_eq!(parse_fraction("10%").unwrap(), 0.10);
        assert_eq!(parse_fraction("10").unwrap(), 0.10);
        assert_eq!(parse_fraction("0.1").unwrap(), 0.10);
        assert!(parse_fraction("x").is_err());
        assert!(parse_fraction("150%").is_err());
    }

    #[test]
    fn specs_build_the_named_policies() {
        let spec: PolicySpec = "saio:10%".parse().unwrap();
        assert_eq!(spec.build().name(), "saio(10.0%, c_hist=0)");
        let spec: PolicySpec = "saio:10%:hist=inf".parse().unwrap();
        assert_eq!(spec.build().name(), "saio(10.0%, c_hist=inf)");
        let spec: PolicySpec = "saga:5%:fgs-hb@0.5".parse().unwrap();
        assert_eq!(spec.build().name(), "saga(5.0%, fgs-hb(h=0.50))");
        let spec: PolicySpec = "fixed:200".parse().unwrap();
        assert_eq!(spec.build().name(), "fixed(200)");
        let spec: PolicySpec = "alloc:98304".parse().unwrap();
        assert_eq!(spec.build().name(), "alloc-fixed(98304B)");
    }

    #[test]
    fn display_is_canonical() {
        assert_eq!(PolicySpec::saio(0.10).to_string(), "saio:10%");
        assert_eq!(
            PolicySpec::saio_hist(0.10, HistoryLen::Fixed(4)).to_string(),
            "saio:10%:hist=4"
        );
        assert_eq!(
            PolicySpec::saga(0.05, EstimatorKind::Oracle).to_string(),
            "saga:5%"
        );
        assert_eq!(
            PolicySpec::saga_dt_max(0.05, EstimatorKind::CgsCb, 20).to_string(),
            "saga:5%:cgs-cb:dtmax=20"
        );
        assert_eq!(PolicySpec::fixed(200).to_string(), "fixed:200");
        assert_eq!(PolicySpec::alloc(98304).to_string(), "alloc:98304");
        assert_eq!(
            PolicySpec::Coupled {
                io_frac: 0.10,
                garbage_floor: 0.05,
                stretch: 4.0,
            }
            .to_string(),
            "coupled:10%:floor=5%"
        );
        assert_eq!(
            PolicySpec::Quiescent {
                idle: 2000,
                inner: Box::new(PolicySpec::saga(0.05, EstimatorKind::Oracle)),
            }
            .to_string(),
            "quiescent:idle=2000:saga:5%"
        );
    }

    #[test]
    fn display_round_trips() {
        for spec in [
            "saio:10%",
            "saio:0.123",
            "saio:10%:hist=4",
            "saio:100%",
            "saga:5%",
            "saga:5%:cgs-cb",
            "saga:5%:fgs-hb@0.5",
            "saga:5%:fgs-hb@0.8:dtmax=20",
            "fixed:200",
            "alloc:98304",
            "coupled:10%:floor=5%",
            "coupled:10%:floor=5%:stretch=8",
            "quiescent:idle=2000:saga:5%",
            "quiescent:idle=500:coupled:10%:floor=5%",
        ] {
            let parsed: PolicySpec = spec.parse().unwrap();
            let printed = parsed.to_string();
            let reparsed: PolicySpec = printed.parse().unwrap();
            assert_eq!(parsed, reparsed, "round-trip through {printed:?}");
        }
    }

    #[test]
    fn non_canonical_forms_normalise() {
        let a: PolicySpec = "saio:10".parse().unwrap();
        let b: PolicySpec = "saio:0.1".parse().unwrap();
        let c: PolicySpec = "saio:10%".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(c.to_string(), "saio:10%");
        let d: PolicySpec = "saga:5%:fgs-hb".parse().unwrap();
        assert_eq!(d, PolicySpec::saga(0.05, EstimatorKind::FgsHb { h: 0.8 }));
    }

    #[test]
    fn bad_specs_error() {
        for bad in [
            "saio",
            "saga:5%:psychic",
            "warp:9",
            "fixed:x",
            "fixed:0",
            "saio:10%:window=4",
            "saga:5%:fgs-hb@1.5",
            "saio:0%",
            "saga:100%",
            "coupled:10%",
            "coupled:10%:floor=5%:stretch=0.5",
            "quiescent:idle=0:fixed:200",
            "quiescent:idle=5",
            "saio:10%:hist=4:extra",
        ] {
            assert!(bad.parse::<PolicySpec>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn quiescent_builds_wrapped_policy() {
        let spec: PolicySpec = "quiescent:idle=1500:saga:5%".parse().unwrap();
        let name = spec.build().name();
        assert!(name.contains("saga"), "wrapper keeps inner name: {name}");
    }
}
