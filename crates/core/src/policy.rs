//! The rate-policy interface.

/// When the next collection should run, measured from the moment the
/// trigger is issued. Whichever armed bound is reached first fires.
///
/// The two time bases match the paper's policies: SAIO measures time in
/// application I/O operations (the quantity it controls), SAGA in pointer
/// overwrites (the events that create garbage). Composite policies (e.g.
/// the opportunistic extension) may arm both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trigger {
    /// Fire after this many further application I/O operations.
    pub app_io: Option<u64>,
    /// Fire after this many further pointer overwrites.
    pub overwrites: Option<u64>,
    /// Fire after this many further allocated bytes (the programming-
    /// language heuristic §2 argues against; used by the
    /// allocation-triggered baseline).
    pub alloc_bytes: Option<u64>,
}

impl Trigger {
    /// A trigger with no bounds armed (never fires on its own).
    pub const fn unarmed() -> Self {
        Trigger {
            app_io: None,
            overwrites: None,
            alloc_bytes: None,
        }
    }

    /// Fire after `n` application I/O operations (n ≥ 1 enforced: a zero
    /// trigger would collect in a busy loop).
    pub fn after_app_io(n: u64) -> Self {
        Trigger {
            app_io: Some(n.max(1)),
            ..Trigger::unarmed()
        }
    }

    /// Fire after `n` pointer overwrites (n ≥ 1 enforced).
    pub fn after_overwrites(n: u64) -> Self {
        Trigger {
            overwrites: Some(n.max(1)),
            ..Trigger::unarmed()
        }
    }

    /// Fire after `n` allocated bytes (n ≥ 1 enforced).
    pub fn after_alloc_bytes(n: u64) -> Self {
        Trigger {
            alloc_bytes: Some(n.max(1)),
            ..Trigger::unarmed()
        }
    }

    /// Arms app-I/O and overwrite bounds; whichever is reached first
    /// fires.
    pub fn either(app_io: u64, overwrites: u64) -> Self {
        Trigger {
            app_io: Some(app_io.max(1)),
            overwrites: Some(overwrites.max(1)),
            alloc_bytes: None,
        }
    }

    /// Is the trigger satisfied by the elapsed interval?
    pub fn is_due(&self, elapsed: TriggerElapsed) -> bool {
        self.app_io.is_some_and(|n| elapsed.app_io >= n)
            || self.overwrites.is_some_and(|n| elapsed.overwrites >= n)
            || self.alloc_bytes.is_some_and(|n| elapsed.alloc_bytes >= n)
    }
}

/// The interval elapsed since the last collection, on every time base a
/// trigger can arm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriggerElapsed {
    /// Application page I/O since the last collection.
    pub app_io: u64,
    /// Pointer overwrites since the last collection.
    pub overwrites: u64,
    /// Bytes allocated since the last collection.
    pub alloc_bytes: u64,
}

impl TriggerElapsed {
    /// Bundles the three elapsed counters.
    pub fn new(app_io: u64, overwrites: u64, alloc_bytes: u64) -> Self {
        TriggerElapsed {
            app_io,
            overwrites,
            alloc_bytes,
        }
    }
}

/// Everything a rate policy may observe, delivered right after each
/// collection completes. All byte quantities are exact store-side facts
/// except `exact_garbage`, which is oracle knowledge that only the oracle
/// estimator may consult.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionObservation {
    /// 0-based index of the collection that just finished.
    pub collection_index: u64,
    /// Page I/O the collection itself performed (`CurrGCIO`).
    pub gc_io: u64,
    /// Application page I/O since the previous collection (`ΔAppIO`
    /// realized).
    pub app_io_since_prev: u64,
    /// Bytes the collection reclaimed (`CurrColl`).
    pub bytes_reclaimed: u64,
    /// Pointer-overwrite count of the collected partition at collection
    /// time (denominator of the GPPO behavior sample).
    pub overwrites_of_collected: u64,
    /// Σ outstanding per-partition overwrite counters after the collection
    /// (the FGS state).
    pub total_outstanding_overwrites: u64,
    /// Number of allocated partitions (the CGS state).
    pub partition_count: u64,
    /// `DBSize(t)` in bytes.
    pub db_size: u64,
    /// `TotColl(t)`: cumulative bytes ever collected.
    pub total_collected: u64,
    /// The overwrite clock (cumulative pointer overwrites — SAGA's time
    /// base).
    pub overwrite_clock: u64,
    /// The allocation clock (cumulative bytes allocated).
    pub alloc_clock: u64,
    /// Exact current garbage bytes (oracle only).
    pub exact_garbage: u64,
}

impl CollectionObservation {
    /// A zeroed observation, convenient as a baseline in tests.
    pub fn zero() -> Self {
        CollectionObservation {
            collection_index: 0,
            gc_io: 0,
            app_io_since_prev: 0,
            bytes_reclaimed: 0,
            overwrites_of_collected: 0,
            total_outstanding_overwrites: 0,
            partition_count: 0,
            db_size: 0,
            total_collected: 0,
            overwrite_clock: 0,
            alloc_clock: 0,
            exact_garbage: 0,
        }
    }
}

/// How many past inter-collection intervals a policy remembers
/// (the paper's `c_hist`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryLen {
    /// No history: decide from the current collection only (`c_hist = 0`,
    /// the paper's default — maximally responsive).
    #[default]
    None,
    /// Remember the last `n` intervals.
    Fixed(usize),
    /// Remember everything (`c_hist = ∞`).
    Infinite,
}

impl HistoryLen {
    /// The retention limit as an optional count.
    pub fn limit(self) -> Option<usize> {
        match self {
            HistoryLen::None => Some(0),
            HistoryLen::Fixed(n) => Some(n),
            HistoryLen::Infinite => None,
        }
    }
}

/// Whether a policy's most recent interval computation was limited by a
/// configured clamp rather than landing inside the open interval.
///
/// Telemetry records this per decision: §2.3 claims the SAGA clamps
/// `[Δt_min, Δt_max]` are "rarely hit in practice", and the decision log
/// is how that claim becomes checkable on a given workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClampHit {
    /// The computed interval was used as-is.
    #[default]
    None,
    /// The computation hit the lower clamp (collect as soon as allowed).
    Min,
    /// The computation hit the upper clamp (back off as far as allowed).
    Max,
}

impl ClampHit {
    /// Stable lower-case label for reports and JSON export.
    pub fn as_str(self) -> &'static str {
        match self {
            ClampHit::None => "none",
            ClampHit::Min => "min",
            ClampHit::Max => "max",
        }
    }
}

impl std::fmt::Display for ClampHit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A collection-rate policy: decides when the next collection runs.
pub trait RatePolicy {
    /// Trigger for the first collection of a run (cold start).
    fn initial_trigger(&mut self) -> Trigger;

    /// Observes a finished collection and schedules the next one.
    fn after_collection(&mut self, obs: &CollectionObservation) -> Trigger;

    /// Policy name (with parameters) for reports.
    fn name(&self) -> String;

    /// Whether the most recent [`RatePolicy::after_collection`] decision
    /// hit a configured clamp. Policies without clamps (or wrappers that
    /// do not delegate) report [`ClampHit::None`].
    fn last_clamp(&self) -> ClampHit {
        ClampHit::None
    }
}

impl<P: RatePolicy + ?Sized> RatePolicy for &mut P {
    fn initial_trigger(&mut self) -> Trigger {
        (**self).initial_trigger()
    }

    fn after_collection(&mut self, obs: &CollectionObservation) -> Trigger {
        (**self).after_collection(obs)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn last_clamp(&self) -> ClampHit {
        (**self).last_clamp()
    }
}

impl<P: RatePolicy + ?Sized> RatePolicy for Box<P> {
    fn initial_trigger(&mut self) -> Trigger {
        (**self).initial_trigger()
    }

    fn after_collection(&mut self, obs: &CollectionObservation) -> Trigger {
        (**self).after_collection(obs)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn last_clamp(&self) -> ClampHit {
        (**self).last_clamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn el(app_io: u64, overwrites: u64) -> TriggerElapsed {
        TriggerElapsed::new(app_io, overwrites, 0)
    }

    #[test]
    fn trigger_due_logic() {
        let t = Trigger::after_app_io(10);
        assert!(!t.is_due(el(9, 1_000)));
        assert!(t.is_due(el(10, 0)));
        let t = Trigger::after_overwrites(5);
        assert!(!t.is_due(el(1_000, 4)));
        assert!(t.is_due(el(0, 5)));
        let t = Trigger::either(10, 5);
        assert!(t.is_due(el(10, 0)));
        assert!(t.is_due(el(0, 5)));
        assert!(!t.is_due(el(9, 4)));
    }

    #[test]
    fn alloc_trigger_fires_on_allocation() {
        let t = Trigger::after_alloc_bytes(4_096);
        assert!(!t.is_due(TriggerElapsed::new(1_000_000, 1_000_000, 4_095)));
        assert!(t.is_due(TriggerElapsed::new(0, 0, 4_096)));
    }

    #[test]
    fn unarmed_trigger_never_fires() {
        let t = Trigger::unarmed();
        assert!(!t.is_due(TriggerElapsed::new(u64::MAX, u64::MAX, u64::MAX)));
    }

    #[test]
    fn zero_triggers_are_clamped_to_one() {
        assert_eq!(Trigger::after_app_io(0).app_io, Some(1));
        assert_eq!(Trigger::after_overwrites(0).overwrites, Some(1));
        assert_eq!(Trigger::after_alloc_bytes(0).alloc_bytes, Some(1));
        let t = Trigger::either(0, 0);
        assert_eq!((t.app_io, t.overwrites), (Some(1), Some(1)));
    }

    #[test]
    fn history_limits() {
        assert_eq!(HistoryLen::None.limit(), Some(0));
        assert_eq!(HistoryLen::Fixed(3).limit(), Some(3));
        assert_eq!(HistoryLen::Infinite.limit(), None);
    }

    #[test]
    fn clamp_hit_labels_are_stable() {
        assert_eq!(ClampHit::None.as_str(), "none");
        assert_eq!(ClampHit::Min.to_string(), "min");
        assert_eq!(ClampHit::Max.to_string(), "max");
        assert_eq!(ClampHit::default(), ClampHit::None);
    }

    #[test]
    fn last_clamp_defaults_to_none() {
        struct Plain;
        impl RatePolicy for Plain {
            fn initial_trigger(&mut self) -> Trigger {
                Trigger::after_overwrites(1)
            }
            fn after_collection(&mut self, _: &CollectionObservation) -> Trigger {
                Trigger::after_overwrites(1)
            }
            fn name(&self) -> String {
                "plain".into()
            }
        }
        assert_eq!(Plain.last_clamp(), ClampHit::None);
    }
}
