//! Implementations of the paper's §5 future-work directions.
//!
//! * [`opportunistic`] — collect ahead of schedule when the workload goes
//!   quiescent ("if it appears advantageous to perform collection before
//!   the interval expires … such opportunism can be considered").
//! * [`coupled`] — couple SAIO with the SAGA garbage estimate to judge the
//!   cost-effectiveness of collector I/O ("the SAIO policy could use
//!   information provided by the SAGA heuristics to determine the
//!   cost-effectiveness of the I/O operations being performed").

pub mod coupled;
pub mod opportunistic;
