//! Opportunistic quiescence collection (§5).
//!
//! The SAGA policy measures time in pointer overwrites, so during a
//! read-only phase (e.g. OO7's Traverse) its trigger never fires even
//! though the collector could work "for free" relative to the user's
//! stated limits. This wrapper arms an *additional* application-I/O bound:
//! if that much application I/O passes without the inner trigger firing,
//! the workload is treated as quiescent (mutation-free) and a collection
//! runs early.

use crate::policy::{ClampHit, CollectionObservation, RatePolicy, Trigger};

/// Configuration for [`OpportunisticPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpportunisticConfig {
    /// Application I/O operations without an inner-policy firing after
    /// which the workload is considered quiescent and a collection runs
    /// opportunistically.
    pub quiescence_io: u64,
}

impl Default for OpportunisticConfig {
    fn default() -> Self {
        OpportunisticConfig {
            quiescence_io: 2_000,
        }
    }
}

/// Wraps any rate policy with an opportunistic quiescence bound.
pub struct OpportunisticPolicy {
    inner: Box<dyn RatePolicy + Send>,
    config: OpportunisticConfig,
}

impl std::fmt::Debug for OpportunisticPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpportunisticPolicy")
            .field("inner", &self.inner.name())
            .field("config", &self.config)
            .finish()
    }
}

impl OpportunisticPolicy {
    /// Wraps `inner` with the quiescence bound in `config`.
    pub fn new(inner: Box<dyn RatePolicy + Send>, config: OpportunisticConfig) -> Self {
        assert!(config.quiescence_io >= 1);
        OpportunisticPolicy { inner, config }
    }

    fn augment(&self, t: Trigger) -> Trigger {
        Trigger {
            // Keep the tighter of the inner app-I/O bound (if any) and the
            // quiescence bound.
            app_io: Some(t.app_io.map_or(self.config.quiescence_io, |n| {
                n.min(self.config.quiescence_io)
            })),
            ..t
        }
    }
}

impl RatePolicy for OpportunisticPolicy {
    fn initial_trigger(&mut self) -> Trigger {
        let t = self.inner.initial_trigger();
        self.augment(t)
    }

    fn after_collection(&mut self, obs: &CollectionObservation) -> Trigger {
        let t = self.inner.after_collection(obs);
        self.augment(t)
    }

    fn name(&self) -> String {
        format!(
            "opportunistic({}, idle={})",
            self.inner.name(),
            self.config.quiescence_io
        )
    }

    fn last_clamp(&self) -> ClampHit {
        self.inner.last_clamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::oracle::Oracle;
    use crate::fixed::FixedRatePolicy;
    use crate::saga::{SagaConfig, SagaPolicy};

    #[test]
    fn adds_quiescence_bound_to_overwrite_trigger() {
        let saga = SagaPolicy::new(SagaConfig::new(0.1), Box::new(Oracle));
        let mut p =
            OpportunisticPolicy::new(Box::new(saga), OpportunisticConfig { quiescence_io: 500 });
        let t = p.initial_trigger();
        assert_eq!(t.overwrites, Some(2)); // SAGA dt_min
        assert_eq!(t.app_io, Some(500));
        // During a read-only phase the overwrite bound never fires, but
        // 500 application I/Os do.
        use crate::policy::TriggerElapsed;
        assert!(t.is_due(TriggerElapsed::new(500, 0, 0)));
        assert!(!t.is_due(TriggerElapsed::new(499, 1, 0)));
    }

    #[test]
    fn keeps_tighter_existing_app_io_bound() {
        struct Fake;
        impl RatePolicy for Fake {
            fn initial_trigger(&mut self) -> Trigger {
                Trigger::after_app_io(100)
            }
            fn after_collection(&mut self, _: &CollectionObservation) -> Trigger {
                Trigger::after_app_io(100)
            }
            fn name(&self) -> String {
                "fake".into()
            }
        }
        let mut p =
            OpportunisticPolicy::new(Box::new(Fake), OpportunisticConfig { quiescence_io: 500 });
        assert_eq!(p.initial_trigger().app_io, Some(100));
        let mut p =
            OpportunisticPolicy::new(Box::new(Fake), OpportunisticConfig { quiescence_io: 50 });
        assert_eq!(p.initial_trigger().app_io, Some(50));
    }

    #[test]
    fn after_collection_also_augmented() {
        let mut p = OpportunisticPolicy::new(
            Box::new(FixedRatePolicy::new(200)),
            OpportunisticConfig::default(),
        );
        let t = p.after_collection(&CollectionObservation::zero());
        assert_eq!(t.overwrites, Some(200));
        assert_eq!(t.app_io, Some(2_000));
    }

    #[test]
    fn name_nests_inner_policy() {
        let p = OpportunisticPolicy::new(
            Box::new(FixedRatePolicy::new(7)),
            OpportunisticConfig { quiescence_io: 9 },
        );
        assert_eq!(p.name(), "opportunistic(fixed(7), idle=9)");
    }
}
