//! Coupled SAIO × SAGA cost-effectiveness policy (§5).
//!
//! Plain SAIO spends its I/O budget unconditionally — even when the
//! database holds almost no garbage and collections reclaim nothing. The
//! paper suggests coupling: "the SAIO policy could use information
//! provided by the SAGA heuristics to determine the cost-effectiveness of
//! the I/O operations being performed, and adjusting itself accordingly."
//!
//! This policy computes the regular SAIO interval, then consults an
//! FGS/HB-style garbage estimate: when the estimated garbage is below a
//! floor fraction of the database, each further collection is judged
//! cost-ineffective and the interval is stretched by a configurable
//! factor, returning the saved I/O to the application.

use crate::estimator::GarbageEstimator;
use crate::estimators::fgs_hb::FgsHb;
use crate::policy::{ClampHit, CollectionObservation, RatePolicy, Trigger};
use crate::saio::{SaioConfig, SaioPolicy};

/// Configuration for [`CoupledSaioPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupledConfig {
    /// The underlying SAIO configuration.
    pub saio: SaioConfig,
    /// Below this estimated-garbage fraction of the database, collections
    /// are considered cost-ineffective.
    pub garbage_floor: f64,
    /// Interval stretch factor applied while under the floor (> 1).
    pub stretch: f64,
    /// History factor of the internal FGS/HB estimate.
    pub estimator_h: f64,
}

impl CoupledConfig {
    /// Defaults (stretch 4, FGS/HB h = 0.8) around the given fractions.
    pub fn new(io_frac: f64, garbage_floor: f64) -> Self {
        CoupledConfig {
            saio: SaioConfig::new(io_frac),
            garbage_floor,
            stretch: 4.0,
            estimator_h: FgsHb::PAPER_H,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.garbage_floor),
            "garbage floor must be in [0,1)"
        );
        assert!(self.stretch > 1.0, "stretch must exceed 1");
    }
}

/// SAIO with a garbage-aware cost-effectiveness brake.
#[derive(Debug)]
pub struct CoupledSaioPolicy {
    saio: SaioPolicy,
    estimator: FgsHb,
    config: CoupledConfig,
    /// Last decision's view, for diagnostics.
    last_estimate: f64,
}

impl CoupledSaioPolicy {
    /// A policy with the given configuration.
    pub fn new(config: CoupledConfig) -> Self {
        config.validate();
        CoupledSaioPolicy {
            saio: SaioPolicy::new(config.saio),
            estimator: FgsHb::new(config.estimator_h),
            config,
            last_estimate: 0.0,
        }
    }

    /// The garbage estimate used by the most recent decision (bytes).
    pub fn last_estimate(&self) -> f64 {
        self.last_estimate
    }
}

impl RatePolicy for CoupledSaioPolicy {
    fn initial_trigger(&mut self) -> Trigger {
        self.saio.initial_trigger()
    }

    fn after_collection(&mut self, obs: &CollectionObservation) -> Trigger {
        let base = self.saio.after_collection(obs);
        self.last_estimate = self.estimator.estimate(obs);
        let floor = obs.db_size as f64 * self.config.garbage_floor;
        if self.last_estimate < floor {
            let stretched = base
                .app_io
                .map(|n| ((n as f64) * self.config.stretch).round() as u64);
            Trigger {
                app_io: stretched,
                ..base
            }
        } else {
            base
        }
    }

    fn name(&self) -> String {
        format!(
            "coupled({}, floor={:.1}%, stretch={:.1})",
            self.saio.name(),
            self.config.garbage_floor * 100.0,
            self.config.stretch
        )
    }

    fn last_clamp(&self) -> ClampHit {
        self.saio.last_clamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(
        app: u64,
        gc: u64,
        reclaimed: u64,
        po: u64,
        outstanding: u64,
        db: u64,
    ) -> CollectionObservation {
        CollectionObservation {
            app_io_since_prev: app,
            gc_io: gc,
            bytes_reclaimed: reclaimed,
            overwrites_of_collected: po,
            total_outstanding_overwrites: outstanding,
            db_size: db,
            ..CollectionObservation::zero()
        }
    }

    #[test]
    fn stretches_when_garbage_is_scarce() {
        let mut p = CoupledSaioPolicy::new(CoupledConfig::new(0.10, 0.05));
        // Estimator learns GPPO = 100 B/overwrite; almost nothing is
        // outstanding → estimated garbage ≈ 100 B of a 1 MB database.
        let t = p.after_collection(&obs(0, 90, 600, 6, 1, 1_000_000));
        // Plain SAIO would say 810; the brake stretches by 4.
        assert_eq!(t.app_io, Some(3_240));
        assert!((p.last_estimate() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn no_stretch_when_garbage_is_plentiful() {
        let mut p = CoupledSaioPolicy::new(CoupledConfig::new(0.10, 0.05));
        // 600 bytes / 6 overwrites, with 10 000 outstanding overwrites →
        // estimate 1 MB garbage in a 1 MB database: way over the floor.
        let t = p.after_collection(&obs(0, 90, 600, 6, 10_000, 1_000_000));
        assert_eq!(t.app_io, Some(810));
    }

    #[test]
    fn stretching_spends_less_io_in_closed_loop() {
        // When the workload makes no garbage, the coupled policy performs
        // fewer collections per unit of application work.
        let run = |coupled: bool| -> u64 {
            let mut plain = SaioPolicy::with_frac(0.10);
            let mut brake = CoupledSaioPolicy::new(CoupledConfig::new(0.10, 0.05));
            let mut total_app = 0u64;
            let mut collections = 0u64;
            let mut trig = if coupled {
                brake.initial_trigger()
            } else {
                plain.initial_trigger()
            };
            while total_app < 100_000 {
                let interval = trig.app_io.unwrap();
                total_app += interval;
                collections += 1;
                // Every collection costs 90 I/Os and reclaims nothing.
                let o = obs(interval, 90, 0, 0, 0, 1_000_000);
                trig = if coupled {
                    brake.after_collection(&o)
                } else {
                    plain.after_collection(&o)
                };
            }
            collections
        };
        let with_brake = run(true);
        let without = run(false);
        assert!(
            with_brake < without,
            "coupled {with_brake} !< plain {without}"
        );
    }

    #[test]
    #[should_panic(expected = "stretch")]
    fn stretch_must_exceed_one() {
        CoupledSaioPolicy::new(CoupledConfig {
            stretch: 1.0,
            ..CoupledConfig::new(0.1, 0.05)
        });
    }

    #[test]
    fn name_reports_all_parameters() {
        let p = CoupledSaioPolicy::new(CoupledConfig::new(0.10, 0.05));
        assert_eq!(
            p.name(),
            "coupled(saio(10.0%, c_hist=0), floor=5.0%, stretch=4.0)"
        );
    }
}
