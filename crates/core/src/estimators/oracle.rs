//! The perfect garbage "estimator".
//!
//! §2.4: "we have implemented in our simulator a perfect garbage estimator
//! that knows exactly how much garbage exists in the database." It exists
//! to evaluate the SAGA control algorithm independent of estimation error
//! (Figure 5's near-perfect line); a real ODBMS cannot implement it
//! without scanning the whole database.

use crate::estimator::GarbageEstimator;
use crate::policy::CollectionObservation;

/// Exact garbage knowledge, read from the simulator's oracle field.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle;

impl GarbageEstimator for Oracle {
    fn estimate(&mut self, obs: &CollectionObservation) -> f64 {
        obs.exact_garbage as f64
    }

    fn name(&self) -> String {
        "oracle".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_exact_garbage() {
        let mut o = Oracle;
        let obs = CollectionObservation {
            exact_garbage: 12_345,
            ..CollectionObservation::zero()
        };
        assert_eq!(o.estimate(&obs), 12_345.0);
    }
}
