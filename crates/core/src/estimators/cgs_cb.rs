//! Coarse-grain state / current behavior (§2.4.1).
//!
//! State: the database is just `p` allocated partitions. Behavior: the
//! last collection reclaimed `C` bytes. Estimate: `ActGarb = C · p`,
//! i.e. assume every partition holds as much garbage as the one just
//! collected.
//!
//! The paper shows this heuristic is poor (Figures 5, 6a): the
//! UPDATEDPOINTER selection policy deliberately picks a partition with
//! *more* than average garbage, so extrapolating its yield to all
//! partitions systematically overestimates — and using only the current
//! collection makes the estimate noisy.

use crate::estimator::GarbageEstimator;
use crate::policy::CollectionObservation;

/// `ActGarb ≈ bytes reclaimed by last collection × partition count`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CgsCb;

impl GarbageEstimator for CgsCb {
    fn estimate(&mut self, obs: &CollectionObservation) -> f64 {
        obs.bytes_reclaimed as f64 * obs.partition_count as f64
    }

    fn name(&self) -> String {
        "cgs-cb".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(reclaimed: u64, partitions: u64) -> CollectionObservation {
        CollectionObservation {
            bytes_reclaimed: reclaimed,
            partition_count: partitions,
            ..CollectionObservation::zero()
        }
    }

    #[test]
    fn multiplies_yield_by_partition_count() {
        let mut e = CgsCb;
        assert_eq!(e.estimate(&obs(500, 8)), 4_000.0);
    }

    #[test]
    fn empty_collection_estimates_zero() {
        let mut e = CgsCb;
        assert_eq!(e.estimate(&obs(0, 8)), 0.0);
    }

    #[test]
    fn is_memoryless() {
        // CB = current behavior only: a big yield followed by a tiny one
        // swings the estimate wildly — exactly the noise Figure 6a shows.
        let mut e = CgsCb;
        assert_eq!(e.estimate(&obs(10_000, 10)), 100_000.0);
        assert_eq!(e.estimate(&obs(10, 10)), 100.0);
    }
}
