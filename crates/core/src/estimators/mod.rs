//! Concrete garbage estimators (§2.4 of the paper).

pub mod cgs_cb;
pub mod fgs_hb;
pub mod oracle;
