//! Fine-grain state / history behavior (§2.4.2).
//!
//! State: the per-partition pointer-overwrite counters `PO(p)` — pointer
//! overwrites correlate strongly with garbage creation, and a partition's
//! counter resets to zero when it is collected (all its potential garbage
//! reclaimed). Behavior: bytes reclaimed per pointer overwrite (`GPPO`),
//! smoothed over recent collections by an exponential mean with history
//! factor `h`:
//!
//! ```text
//! GPPO_h = h · GPPO_h + (1 − h) · GPPO
//! ActGarb = GPPO_h · Σ_p PO(p)
//! ```
//!
//! Varying `h` from 1.0 to 0.0 moves the heuristic from FGS/HB to FGS/CB.
//! The estimator is very cheap: one smoothed scalar plus counters the
//! UPDATEDPOINTER selection policy maintains anyway.

use crate::estimator::GarbageEstimator;
use crate::ewma::Ewma;
use crate::policy::CollectionObservation;

/// `ActGarb ≈ smoothed garbage-per-overwrite × outstanding overwrites`.
#[derive(Debug, Clone)]
pub struct FgsHb {
    gppo: Ewma,
}

impl FgsHb {
    /// The history factor the paper uses in practice (§4.1.2).
    pub const PAPER_H: f64 = 0.8;

    /// Creates the estimator with history factor `h ∈ [0, 1]`.
    pub fn new(h: f64) -> Self {
        FgsHb { gppo: Ewma::new(h) }
    }

    /// Current smoothed garbage-per-pointer-overwrite, if any collection
    /// with a nonzero overwrite count has been observed.
    pub fn gppo(&self) -> Option<f64> {
        self.gppo.value()
    }
}

impl GarbageEstimator for FgsHb {
    fn estimate(&mut self, obs: &CollectionObservation) -> f64 {
        // A collection of a partition with no recorded overwrites carries
        // no behavior signal (GPPO undefined); keep the current history.
        if obs.overwrites_of_collected > 0 {
            let sample = obs.bytes_reclaimed as f64 / obs.overwrites_of_collected as f64;
            self.gppo.update(sample);
        }
        let gppo = self.gppo.value().unwrap_or(0.0);
        gppo * obs.total_outstanding_overwrites as f64
    }

    fn name(&self) -> String {
        format!("fgs-hb(h={:.2})", self.gppo.h())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(reclaimed: u64, po_collected: u64, po_outstanding: u64) -> CollectionObservation {
        CollectionObservation {
            bytes_reclaimed: reclaimed,
            overwrites_of_collected: po_collected,
            total_outstanding_overwrites: po_outstanding,
            ..CollectionObservation::zero()
        }
    }

    #[test]
    fn first_sample_sets_gppo_directly() {
        let mut e = FgsHb::new(0.8);
        // 600 bytes over 6 overwrites → GPPO 100; 50 outstanding → 5000.
        assert_eq!(e.estimate(&obs(600, 6, 50)), 5_000.0);
        assert_eq!(e.gppo(), Some(100.0));
    }

    #[test]
    fn history_smooths_behavior() {
        let mut e = FgsHb::new(0.8);
        e.estimate(&obs(600, 6, 50)); // GPPO 100
        e.estimate(&obs(400, 2, 50)); // sample 200 → 0.8·100 + 0.2·200 = 120
        assert!((e.gppo().unwrap() - 120.0).abs() < 1e-12);
    }

    #[test]
    fn zero_overwrite_collection_keeps_history() {
        let mut e = FgsHb::new(0.8);
        e.estimate(&obs(600, 6, 50));
        let est = e.estimate(&obs(123, 0, 30));
        assert_eq!(e.gppo(), Some(100.0));
        assert_eq!(est, 3_000.0);
    }

    #[test]
    fn no_signal_yet_estimates_zero() {
        let mut e = FgsHb::new(0.8);
        assert_eq!(e.estimate(&obs(0, 0, 1_000)), 0.0);
    }

    #[test]
    fn h_zero_is_current_behavior() {
        let mut e = FgsHb::new(0.0);
        e.estimate(&obs(600, 6, 50));
        e.estimate(&obs(400, 2, 50)); // sample 200 replaces history
        assert_eq!(e.gppo(), Some(200.0));
    }

    #[test]
    fn estimate_scales_with_outstanding_overwrites() {
        let mut e = FgsHb::new(0.8);
        e.estimate(&obs(600, 6, 50));
        // After more application overwrites accumulate, the same GPPO
        // predicts proportionally more garbage.
        assert_eq!(e.estimate(&obs(0, 0, 200)), 20_000.0);
    }

    #[test]
    fn name_includes_h() {
        assert_eq!(FgsHb::new(0.5).name(), "fgs-hb(h=0.50)");
    }

    #[test]
    fn boundary_history_factors_accepted() {
        FgsHb::new(0.0);
        FgsHb::new(1.0);
    }

    #[test]
    #[should_panic(expected = "history factor")]
    fn history_factor_above_one_rejected() {
        FgsHb::new(1.5);
    }

    #[test]
    #[should_panic(expected = "history factor")]
    fn negative_history_factor_rejected() {
        FgsHb::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "history factor")]
    fn nan_history_factor_rejected() {
        FgsHb::new(f64::NAN);
    }
}
