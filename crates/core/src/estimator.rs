//! The garbage-estimator interface (§2.4).
//!
//! SAGA needs `ActGarb(t)` — the garbage currently in the database — but
//! determining it exactly would require scanning the whole database. The
//! paper decomposes estimation into a *state* component (how much potential
//! garbage each partition holds: coarse grain = partition count, fine grain
//! = per-partition pointer-overwrite counts) and a *behavior* component
//! (what recent collections revealed: current = last collection only,
//! history = smoothed over recent collections).

use crate::policy::CollectionObservation;

/// Estimates the current amount of garbage in the database, updated after
/// every collection.
pub trait GarbageEstimator {
    /// Consumes the post-collection observation and returns the estimate
    /// of `ActGarb` in bytes.
    fn estimate(&mut self, obs: &CollectionObservation) -> f64;

    /// Estimator name for reports.
    fn name(&self) -> String;
}

/// Enumerable estimator configuration for experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// Exact garbage knowledge (impractical; simulator-only, §4.1.2).
    Oracle,
    /// Coarse-grain state / current behavior.
    CgsCb,
    /// Fine-grain state / history behavior with history factor `h`.
    FgsHb {
        /// The exponential-mean history factor in `[0, 1]`.
        h: f64,
    },
}

impl EstimatorKind {
    /// Instantiates the estimator.
    pub fn build(self) -> Box<dyn GarbageEstimator + Send> {
        match self {
            EstimatorKind::Oracle => Box::new(crate::estimators::oracle::Oracle),
            EstimatorKind::CgsCb => Box::new(crate::estimators::cgs_cb::CgsCb),
            EstimatorKind::FgsHb { h } => Box::new(crate::estimators::fgs_hb::FgsHb::new(h)),
        }
    }

    /// The paper's default FGS/HB configuration (`h = 0.8`, §4.1.2: "we
    /// have used 80% history with success").
    pub fn fgs_hb_default() -> Self {
        EstimatorKind::FgsHb { h: 0.8 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_named_estimators() {
        assert_eq!(EstimatorKind::Oracle.build().name(), "oracle");
        assert_eq!(EstimatorKind::CgsCb.build().name(), "cgs-cb");
        assert_eq!(
            EstimatorKind::fgs_hb_default().build().name(),
            "fgs-hb(h=0.80)"
        );
    }
}
