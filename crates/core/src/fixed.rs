//! Fixed-rate baselines (§2.1).
//!
//! A fixed collection rate — every `n` pointer overwrites — cannot adapt
//! to application behavior, and §2.1 argues any particular choice fails
//! somewhere. These baselines exist to reproduce Figure 1 (the rate sweep
//! showing the time/space trade-off) and the connectivity-heuristic
//! strawman whose prediction misses the real garbage rate by ~5×.

use crate::policy::{CollectionObservation, RatePolicy, Trigger};

/// Collect every `rate` pointer overwrites, unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedRatePolicy {
    rate: u64,
}

impl FixedRatePolicy {
    /// `rate` = pointer overwrites per collection (≥ 1).
    pub fn new(rate: u64) -> Self {
        FixedRatePolicy { rate: rate.max(1) }
    }

    /// The configured rate.
    pub fn rate(&self) -> u64 {
        self.rate
    }
}

impl RatePolicy for FixedRatePolicy {
    fn initial_trigger(&mut self) -> Trigger {
        Trigger::after_overwrites(self.rate)
    }

    fn after_collection(&mut self, _obs: &CollectionObservation) -> Trigger {
        Trigger::after_overwrites(self.rate)
    }

    fn name(&self) -> String {
        format!("fixed({})", self.rate)
    }
}

/// Collect every `bytes` of allocation — the programming-language
/// heuristic Yong–Naughton–Yu adopted ("collection is triggered … after a
/// fixed amount of storage is allocated"). §2 argues allocation and
/// garbage creation are *not* correlated in object databases: this
/// baseline collects eagerly during pure growth (GenDB, reinsertion) when
/// no garbage exists, and sluggishly during deletion bursts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationRatePolicy {
    bytes: u64,
}

impl AllocationRatePolicy {
    /// `bytes` of allocation per collection (≥ 1).
    pub fn new(bytes: u64) -> Self {
        AllocationRatePolicy {
            bytes: bytes.max(1),
        }
    }

    /// The configured allocation budget per collection.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl RatePolicy for AllocationRatePolicy {
    fn initial_trigger(&mut self) -> Trigger {
        Trigger::after_alloc_bytes(self.bytes)
    }

    fn after_collection(&mut self, _obs: &CollectionObservation) -> Trigger {
        Trigger::after_alloc_bytes(self.bytes)
    }

    fn name(&self) -> String {
        format!("alloc-fixed({}B)", self.bytes)
    }
}

/// The §2.1 "clever" fixed-rate heuristic: from average connectivity,
/// average object size, and partition size, infer how many overwrites
/// create one partition's worth of garbage.
///
/// Reasoning: `connectivity` pointers point at each object on average, so
/// every `connectivity` overwrites should free one object of
/// `avg_object_size` bytes; collect when `partition_bytes` of garbage has
/// accumulated. For the paper's numbers (connectivity 4, 133-byte objects,
/// 96 KiB partitions) this predicts a rate of ~2956 overwrites per
/// collection — about 5× too slow, because single overwrites can detach
/// whole clusters and large objects.
/// ```
/// // The paper's arithmetic: connectivity 4, 133-byte objects,
/// // 96 KiB partitions → collect every 2956 overwrites. (§2.1 then
/// // shows this underestimates the true garbage rate severalfold.)
/// let rate = odbgc_core::connectivity_heuristic_rate(4.0, 133.0, 96 * 1024);
/// assert_eq!(rate, 2956);
/// ```
pub fn connectivity_heuristic_rate(
    avg_connectivity: f64,
    avg_object_size: f64,
    partition_bytes: u64,
) -> u64 {
    assert!(avg_connectivity > 0.0 && avg_object_size > 0.0);
    let garbage_per_overwrite = avg_object_size / avg_connectivity;
    (partition_bytes as f64 / garbage_per_overwrite) as u64 // truncate, as the paper does (2956)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_is_constant() {
        let mut p = FixedRatePolicy::new(200);
        assert_eq!(p.initial_trigger(), Trigger::after_overwrites(200));
        assert_eq!(
            p.after_collection(&CollectionObservation::zero()),
            Trigger::after_overwrites(200)
        );
        assert_eq!(p.name(), "fixed(200)");
    }

    #[test]
    fn zero_rate_clamped() {
        assert_eq!(FixedRatePolicy::new(0).rate(), 1);
        assert_eq!(AllocationRatePolicy::new(0).bytes(), 1);
    }

    #[test]
    fn allocation_policy_arms_the_alloc_clock() {
        let mut p = AllocationRatePolicy::new(96 * 1024);
        let t = p.initial_trigger();
        assert_eq!(t.alloc_bytes, Some(96 * 1024));
        assert_eq!(t.overwrites, None);
        assert_eq!(t.app_io, None);
        assert_eq!(
            p.after_collection(&CollectionObservation::zero()),
            Trigger::after_alloc_bytes(96 * 1024)
        );
        assert_eq!(p.name(), "alloc-fixed(98304B)");
    }

    #[test]
    fn heuristic_reproduces_the_papers_arithmetic() {
        // §2.1: connectivity 4, 133-byte objects, 96 KiB partitions
        // → collect every 2956 pointer overwrites.
        let rate = connectivity_heuristic_rate(4.0, 133.0, 96 * 1024);
        assert_eq!(rate, 2956);
    }

    #[test]
    fn heuristic_scales_with_partition_size() {
        let small = connectivity_heuristic_rate(4.0, 133.0, 48 * 1024);
        let large = connectivity_heuristic_rate(4.0, 133.0, 96 * 1024);
        assert!(large > small);
        assert!((large as f64 / small as f64 - 2.0).abs() < 0.01);
    }
}
