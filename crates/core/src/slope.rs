//! The exponentially weighted slope estimator used by SAGA.
//!
//! §2.3 of the paper: given a previous slope estimate, a previous data
//! point and a current data point,
//!
//! ```text
//! TotGarb'(t) = Weight · TotGarb'(t_prev)
//!             + (1 − Weight) · (TotGarb(t) − TotGarb(t_prev)) / (t − t_prev)
//! ```
//!
//! `Weight` buffers the policy from rapid slope changes; the paper sets it
//! to 0.7.

/// Exponentially weighted estimate of `dy/dt` from a stream of `(t, y)`
/// points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedSlope {
    weight: f64,
    slope: f64,
    prev: Option<(f64, f64)>,
    initialized: bool,
}

impl WeightedSlope {
    /// The paper's smoothing weight.
    pub const PAPER_WEIGHT: f64 = 0.7;

    /// Creates an estimator with smoothing `weight ∈ [0, 1)`.
    pub fn new(weight: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&weight),
            "slope weight must be in [0,1)"
        );
        WeightedSlope {
            weight,
            slope: 0.0,
            prev: None,
            initialized: false,
        }
    }

    /// Feeds a data point; returns the updated slope estimate.
    ///
    /// The first point only establishes the baseline (slope stays 0); a
    /// point with `t == t_prev` (time did not advance — e.g. a collection
    /// during a read-only phase under overwrite time) leaves the estimate
    /// unchanged but refreshes the `y` baseline.
    pub fn update(&mut self, t: f64, y: f64) -> f64 {
        match self.prev {
            None => {
                self.prev = Some((t, y));
            }
            Some((tp, yp)) => {
                if t > tp {
                    let raw = (y - yp) / (t - tp);
                    self.slope = if self.initialized {
                        self.weight * self.slope + (1.0 - self.weight) * raw
                    } else {
                        self.initialized = true;
                        raw
                    };
                    self.prev = Some((t, y));
                } else {
                    self.prev = Some((tp, y));
                }
            }
        }
        self.slope
    }

    /// Current slope estimate (0 until two time-distinct points are seen).
    pub fn slope(&self) -> f64 {
        self.slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_points() {
        let mut s = WeightedSlope::new(0.7);
        assert_eq!(s.update(0.0, 0.0), 0.0);
        assert_eq!(s.update(10.0, 50.0), 5.0); // first real slope, unsmoothed
    }

    #[test]
    fn smooths_subsequent_slopes() {
        let mut s = WeightedSlope::new(0.7);
        s.update(0.0, 0.0);
        s.update(10.0, 50.0); // slope 5
        let v = s.update(20.0, 50.0); // raw slope 0
        assert!((v - 0.7 * 5.0).abs() < 1e-12);
    }

    #[test]
    fn constant_growth_converges_to_true_slope() {
        let mut s = WeightedSlope::new(0.7);
        for i in 0..200 {
            s.update(i as f64, 3.0 * i as f64);
        }
        assert!((s.slope() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn stalled_time_keeps_slope_but_refreshes_baseline() {
        let mut s = WeightedSlope::new(0.7);
        s.update(0.0, 0.0);
        s.update(10.0, 100.0); // slope 10
                               // Read-only phase: time stuck at 10, y moves down (a collection
                               // reclaimed garbage).
        let v = s.update(10.0, 40.0);
        assert_eq!(v, 10.0);
        // Next advance measures from the refreshed baseline (10, 40).
        let v = s.update(20.0, 60.0); // raw slope 2
        assert!((v - (0.7 * 10.0 + 0.3 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn negative_slopes_are_representable() {
        let mut s = WeightedSlope::new(0.0);
        s.update(0.0, 100.0);
        assert_eq!(s.update(10.0, 0.0), -10.0);
    }

    #[test]
    #[should_panic(expected = "slope weight")]
    fn invalid_weight_rejected() {
        WeightedSlope::new(1.0);
    }
}
