//! Exponential moving average with first-sample initialization.

/// `value ← h·value + (1−h)·sample`, where `h ∈ [0, 1]` is the history
/// factor: `h = 0` keeps only the newest sample, `h → 1` changes slowly.
///
/// The first sample initializes the average directly, avoiding the
/// cold-start bias a zero initial value would introduce (the paper's
/// FGS/HB heuristic needs a sensible garbage-per-overwrite estimate from
/// its very first collection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    h: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an average with history factor `h ∈ [0, 1]`.
    pub fn new(h: f64) -> Self {
        assert!((0.0..=1.0).contains(&h), "history factor must be in [0,1]");
        Ewma { h, value: None }
    }

    /// Feeds a sample; returns the updated average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            None => sample,
            Some(v) => self.h * v + (1.0 - self.h) * sample,
        };
        self.value = Some(next);
        next
    }

    /// Current average, if any sample has been seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The history factor.
    pub fn h(&self) -> f64 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(0.8);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn blends_with_history_factor() {
        let mut e = Ewma::new(0.8);
        e.update(10.0);
        let v = e.update(20.0);
        assert!((v - (0.8 * 10.0 + 0.2 * 20.0)).abs() < 1e-12);
    }

    #[test]
    fn h_zero_tracks_latest_sample() {
        let mut e = Ewma::new(0.0);
        e.update(5.0);
        assert_eq!(e.update(42.0), 42.0);
    }

    #[test]
    fn h_one_never_moves_after_first() {
        let mut e = Ewma::new(1.0);
        e.update(5.0);
        assert_eq!(e.update(1000.0), 5.0);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.9);
        e.update(0.0);
        for _ in 0..500 {
            e.update(7.0);
        }
        assert!((e.value().unwrap() - 7.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "history factor")]
    fn invalid_h_rejected() {
        Ewma::new(1.5);
    }
}
