//! Shared parsing of worker-count environment variables.
//!
//! `ODBGC_JOBS` (experiment-plan worker threads), `ODBGC_GC_WORKERS`
//! (per-engine collector pool size), and `ODBGC_NET_THREADS` (serve
//! event-loop pool size) are all "positive integer or ignored" knobs,
//! read in different crates. This helper gives every reader the same
//! validation and — critically — the same warning message shape, so an
//! invalid value is diagnosed identically whether it reaches `run`,
//! `sweep`, `serve-bench`, or `serve`.

/// Parses a worker-count environment value: a positive integer after
/// trimming.
///
/// On success returns the count. On garbage (empty, non-numeric, zero,
/// negative) returns the canonical warning line the caller should print
/// to stderr before falling back:
///
/// ```text
/// odbgc: ignoring invalid <VAR>="<value>" (want a positive integer); <fallback>
/// ```
///
/// `fallback` finishes the sentence — e.g. `"using 1"` or
/// `"using all available cores"` — so the warning names the value the
/// run will actually use.
pub fn parse_worker_env(var: &str, value: &str, fallback: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "odbgc: ignoring invalid {var}={value:?} (want a positive integer); {fallback}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_integers_parse() {
        assert_eq!(parse_worker_env("ODBGC_JOBS", "1", "using 1"), Ok(1));
        assert_eq!(parse_worker_env("ODBGC_JOBS", " 8 ", "using 1"), Ok(8));
        assert_eq!(parse_worker_env("ODBGC_GC_WORKERS", "4", "using 1"), Ok(4));
        assert_eq!(
            parse_worker_env("ODBGC_NET_THREADS", "2", "using min(4, available cores)"),
            Ok(2)
        );
    }

    #[test]
    fn garbage_yields_the_canonical_warning() {
        for bad in ["", "0", "-2", "many", "3.5"] {
            let err = parse_worker_env("ODBGC_GC_WORKERS", bad, "using 1").unwrap_err();
            assert_eq!(
                err,
                format!(
                    "odbgc: ignoring invalid ODBGC_GC_WORKERS={bad:?} \
                     (want a positive integer); using 1"
                )
            );
        }
    }

    #[test]
    fn both_variables_share_one_message_shape() {
        let jobs = parse_worker_env("ODBGC_JOBS", "x", "using all available cores").unwrap_err();
        let gc = parse_worker_env("ODBGC_GC_WORKERS", "x", "using 1").unwrap_err();
        // Identical up to the variable name and fallback clause.
        assert_eq!(
            jobs.replace("ODBGC_JOBS", "VAR")
                .replace("using all available cores", "FALLBACK"),
            gc.replace("ODBGC_GC_WORKERS", "VAR")
                .replace("using 1", "FALLBACK"),
        );
    }
}
