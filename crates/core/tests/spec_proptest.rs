//! Property tests for the [`PolicySpec`] grammar: `Display` and parsing
//! are exact inverses over the whole spec space.

use proptest::prelude::*;

use odbgc_core::{EstimatorKind, HistoryLen, PolicySpec};

fn arb_history() -> impl Strategy<Value = HistoryLen> {
    prop_oneof![
        Just(HistoryLen::None),
        (1usize..64).prop_map(HistoryLen::Fixed),
        Just(HistoryLen::Infinite),
    ]
}

fn arb_estimator() -> impl Strategy<Value = EstimatorKind> {
    prop_oneof![
        Just(EstimatorKind::Oracle),
        Just(EstimatorKind::CgsCb),
        (0.0f64..=1.0).prop_map(|h| EstimatorKind::FgsHb { h }),
    ]
}

/// Specs a sweep could reasonably contain, with fraction/parameter
/// values drawn from the policies' whole domains.
fn arb_leaf_spec() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        (1u64..100_000).prop_map(PolicySpec::fixed),
        (1u64..10_000_000).prop_map(PolicySpec::alloc),
        (0.001f64..1.0, arb_history()).prop_map(|(frac, h)| PolicySpec::saio_hist(frac, h)),
        (
            0.0f64..0.999,
            arb_estimator(),
            proptest::option::of(2u64..2_000)
        )
            .prop_map(|(frac, est, dt_max)| match dt_max {
                Some(m) => PolicySpec::saga_dt_max(frac, est, m),
                None => PolicySpec::saga(frac, est),
            }),
        (0.001f64..1.0, 0.0f64..0.999, 1.001f64..32.0).prop_map(
            |(io_frac, garbage_floor, stretch)| PolicySpec::Coupled {
                io_frac,
                garbage_floor,
                stretch,
            }
        ),
    ]
}

fn arb_spec() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        arb_leaf_spec().boxed(),
        (1u64..100_000, arb_leaf_spec())
            .prop_map(|(idle, inner)| PolicySpec::Quiescent {
                idle,
                inner: Box::new(inner),
            })
            .boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_then_parse_is_identity(spec in arb_spec()) {
        let printed = spec.to_string();
        let reparsed: PolicySpec = match printed.parse() {
            Ok(s) => s,
            Err(e) => return Err(format!("{printed:?} failed to parse: {e}")),
        };
        prop_assert_eq!(&spec, &reparsed, "through {}", printed);
        // And printing is stable: the canonical form is a fixpoint.
        prop_assert_eq!(printed, reparsed.to_string());
    }

    #[test]
    fn parsed_specs_build_without_panicking(spec in arb_spec()) {
        // Everything FromStr admits must construct a working policy.
        let reparsed: PolicySpec = spec.to_string().parse().unwrap();
        let mut policy = reparsed.build();
        let trigger = policy.initial_trigger();
        prop_assert!(
            trigger.overwrites.is_some()
                || trigger.app_io.is_some()
                || trigger.alloc_bytes.is_some(),
            "initial trigger must bound something"
        );
    }
}
