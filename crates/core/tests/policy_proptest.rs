//! Property tests: policy outputs are always well-formed and the control
//! laws converge in closed loop.

use proptest::prelude::*;

use odbgc_core::{
    CollectionObservation, Ewma, HistoryLen, RatePolicy, SagaConfig, SagaPolicy, SaioConfig,
    SaioPolicy, WeightedSlope, {EstimatorKind, Oracle},
};

fn arb_obs() -> impl Strategy<Value = CollectionObservation> {
    (
        0u64..1000,
        0u64..10_000,
        0u64..100_000,
        0u64..1_000_000,
        (0u64..5_000, 0u64..100_000),
        (1u64..500, 1_000u64..10_000_000),
        (0u64..100_000_000, 0u64..100_000_000, 0u64..10_000_000),
    )
        .prop_map(
            |(
                collection_index,
                gc_io,
                app_io_since_prev,
                bytes_reclaimed,
                (overwrites_of_collected, total_outstanding_overwrites),
                (partition_count, db_size),
                (total_collected, overwrite_clock, exact_garbage),
            )| CollectionObservation {
                collection_index,
                gc_io,
                app_io_since_prev,
                bytes_reclaimed,
                overwrites_of_collected,
                total_outstanding_overwrites,
                partition_count,
                db_size,
                total_collected,
                overwrite_clock,
                alloc_clock: overwrite_clock * 64,
                exact_garbage,
            },
        )
}

proptest! {
    #[test]
    fn saio_triggers_are_always_valid(
        frac in 0.01f64..1.0,
        observations in proptest::collection::vec(arb_obs(), 1..50),
    ) {
        let mut p = SaioPolicy::with_frac(frac);
        let t = p.initial_trigger();
        prop_assert!(t.app_io.unwrap_or(1) >= 1);
        for obs in &observations {
            let t = p.after_collection(obs);
            let n = t.app_io.expect("SAIO triggers on app I/O");
            prop_assert!(n >= 1);
        }
    }

    #[test]
    fn saio_achieves_requested_fraction_for_every_history_length(
        frac in 0.02f64..0.9,
        gc_io in 1u64..10_000,
    ) {
        // On a constant cost stream every history length realizes the
        // requested fraction *on average*. (A finite window is only
        // marginally stable: a cold-start perturbation circulates in the
        // window and the interval oscillates, but the window-sum control
        // law keeps the running fraction on target — so the assertion is
        // about the achieved fraction, not the final interval.)
        for history in [HistoryLen::None, HistoryLen::Fixed(4), HistoryLen::Infinite] {
            let mut p = SaioPolicy::new(SaioConfig::new(frac).with_history(history));
            let mut interval = p.initial_trigger().app_io.unwrap();
            let (mut app_total, mut gc_total) = (0u64, 0u64);
            for _ in 0..80 {
                app_total += interval;
                gc_total += gc_io;
                let obs = CollectionObservation {
                    gc_io,
                    app_io_since_prev: interval,
                    ..CollectionObservation::zero()
                };
                interval = p.after_collection(&obs).app_io.unwrap();
            }
            let achieved = gc_total as f64 / (gc_total + app_total) as f64;
            // Tolerance: integer rounding of small intervals plus the
            // cold-start interval's dilution.
            let steady = (gc_io as f64 * (1.0 - frac) / frac).max(1.0);
            let tol = 0.02 + 1.0 / steady + 0.05 * frac;
            prop_assert!(
                (achieved - frac).abs() < tol,
                "{:?}: achieved {} vs requested {}", history, achieved, frac
            );
        }
    }

    #[test]
    fn saio_triggers_respect_configured_clamps(
        frac in 0.01f64..1.0,
        min_interval in 1u64..1_000,
        span in 0u64..1_000_000,
        observations in proptest::collection::vec(arb_obs(), 1..50),
    ) {
        // Closed-loop invariant (satellite of the telemetry work): no
        // matter what the workload feeds back, every emitted trigger
        // stays inside the *configured* clamps, and the policy's clamp
        // diagnostic agrees with where the interval landed.
        let cfg = SaioConfig {
            min_interval,
            max_interval: min_interval + span,
            ..SaioConfig::new(frac)
        };
        let mut p = SaioPolicy::new(cfg);
        for obs in &observations {
            let t = p.after_collection(obs);
            let n = t.app_io.expect("SAIO triggers on app I/O");
            prop_assert!(
                n >= cfg.min_interval && n <= cfg.max_interval,
                "interval {} outside [{}, {}]", n, cfg.min_interval, cfg.max_interval
            );
            match p.last_clamp() {
                odbgc_core::ClampHit::Min => prop_assert_eq!(n, cfg.min_interval),
                odbgc_core::ClampHit::Max => prop_assert_eq!(n, cfg.max_interval),
                odbgc_core::ClampHit::None => {}
            }
        }
    }

    #[test]
    fn saio_achieved_share_is_monotone_in_requested_fraction(
        base in 0.02f64..0.4,
        step in 0.05f64..0.4,
        gc_io in 1u64..5_000,
    ) {
        // On a fixed synthetic workload (constant collection cost), a
        // strictly larger requested GC-I/O fraction never yields a
        // smaller achieved GC-I/O share.
        let achieved = |frac: f64| -> f64 {
            let mut p = SaioPolicy::with_frac(frac);
            let mut interval = p.initial_trigger().app_io.unwrap();
            let (mut app_total, mut gc_total) = (0u64, 0u64);
            for _ in 0..60 {
                app_total += interval;
                gc_total += gc_io;
                let obs = CollectionObservation {
                    gc_io,
                    app_io_since_prev: interval,
                    ..CollectionObservation::zero()
                };
                interval = p.after_collection(&obs).app_io.unwrap();
            }
            gc_total as f64 / (gc_total + app_total) as f64
        };
        let lo = achieved(base);
        let hi = achieved((base + step).min(0.95));
        // Integer rounding of intervals can cost at most a hair; the
        // ordering itself must hold.
        prop_assert!(
            hi >= lo - 1e-9,
            "share at {} = {} < share at {} = {}", base + step, hi, base, lo
        );
    }

    #[test]
    fn saga_triggers_respect_clamps(
        frac in 0.0f64..0.9,
        observations in proptest::collection::vec(arb_obs(), 1..50),
    ) {
        let cfg = SagaConfig::new(frac);
        let mut p = SagaPolicy::new(cfg, Box::new(Oracle));
        for obs in &observations {
            let t = p.after_collection(obs);
            let dt = t.overwrites.expect("SAGA triggers on overwrites");
            prop_assert!(dt >= cfg.dt_min && dt <= cfg.dt_max, "dt {} out of clamps", dt);
        }
    }

    #[test]
    fn saga_closed_loop_settles_at_target(
        frac in 0.02f64..0.25,
        growth in 10f64..500.0,
        reclaim in 10_000f64..100_000.0,
    ) {
        let db_size = 2_000_000u64;
        let mut p = SagaPolicy::new(SagaConfig::new(frac), Box::new(Oracle));
        let mut clock = 0u64;
        let mut garbage = 0.0f64;
        let mut collected_total = 0.0f64;
        let mut trigger = p.initial_trigger();
        let mut post_levels = Vec::new();
        for i in 0..120 {
            let dt = trigger.overwrites.unwrap();
            clock += dt;
            garbage += growth * dt as f64;
            let collected = garbage.min(reclaim);
            garbage -= collected;
            collected_total += collected;
            post_levels.push(garbage);
            let obs = CollectionObservation {
                collection_index: i,
                bytes_reclaimed: collected.round() as u64,
                total_collected: collected_total.round() as u64,
                overwrite_clock: clock,
                db_size,
                exact_garbage: garbage.round() as u64,
                ..CollectionObservation::zero()
            };
            trigger = p.after_collection(&obs);
        }
        // A target is sustainable only if garbage can out-accumulate one
        // collection's reclaim within the Δt_max clamp; otherwise every
        // cycle drains everything and the level pins near zero — the
        // saturation visible at the high end of Figure 5.
        let target = db_size as f64 * frac;
        let accumulable = growth * 1000.0;
        if accumulable > 1.2 * reclaim && accumulable > 0.05 * target {
            let tail = &post_levels[100..];
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert!(
                mean <= target + reclaim + 1.0,
                "mean {} exceeds target {} + reclaim {}", mean, target, reclaim
            );
            // And the controller makes progress toward the target: the
            // tail level is at least what pure accumulation-minus-drain
            // dynamics permit.
            let per_cycle_net = accumulable - reclaim;
            let attainable = (per_cycle_net * 100.0).min(target);
            prop_assert!(
                mean >= 0.5 * attainable - reclaim,
                "mean {} too far below attainable {}", mean, attainable
            );
        } else {
            // Unreachable regime: the level stays bounded by one cycle's
            // accumulation.
            let tail_max = post_levels[100..].iter().copied().fold(0.0, f64::max);
            prop_assert!(
                tail_max <= target.max(accumulable) + reclaim + 1.0,
                "unreachable regime produced level {}", tail_max
            );
        }
    }

    #[test]
    fn estimators_are_finite_and_nonnegative(
        observations in proptest::collection::vec(arb_obs(), 1..60),
    ) {
        for kind in [EstimatorKind::Oracle, EstimatorKind::CgsCb, EstimatorKind::fgs_hb_default()] {
            let mut e = kind.build();
            for obs in &observations {
                let v = e.estimate(obs);
                prop_assert!(v.is_finite() && v >= 0.0, "{} produced {}", e.name(), v);
            }
        }
    }

    #[test]
    fn ewma_stays_within_input_envelope(
        h in 0.0f64..=1.0,
        samples in proptest::collection::vec(0.0f64..1e9, 1..100),
    ) {
        let mut e = Ewma::new(h);
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &s in &samples {
            let v = e.update(s);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{} outside [{}, {}]", v, lo, hi);
        }
    }

    #[test]
    fn slope_is_bounded_by_observed_raw_slopes(
        weight in 0.0f64..0.99,
        points in proptest::collection::vec((1u64..1000, 0.0f64..1e6), 2..50),
    ) {
        let mut s = WeightedSlope::new(weight);
        let mut t = 0.0f64;
        let mut raws: Vec<f64> = Vec::new();
        let mut prev: Option<(f64, f64)> = None;
        for &(dt, y) in &points {
            t += dt as f64;
            if let Some((tp, yp)) = prev {
                raws.push((y - yp) / (t - tp));
            }
            prev = Some((t, y));
            let v = s.update(t, y);
            if !raws.is_empty() {
                let lo = raws.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = raws.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6,
                    "slope {} escaped raw envelope [{}, {}]", v, lo, hi);
            }
        }
    }
}
