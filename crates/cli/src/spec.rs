//! Textual specs for policies, selectors, and database parameters.

use odbgc_core::{
    AllocationRatePolicy, EstimatorKind, FixedRatePolicy, HistoryLen, RatePolicy, SagaConfig,
    SagaPolicy, SaioConfig, SaioPolicy,
};
use odbgc_gc::SelectorKind;
use odbgc_oo7::{ConnStyle, Oo7Params};

use crate::CliError;

/// A percentage token: `10%`, `10`, or `0.1` — all meaning 10% when the
/// value is ≥ 1, or the literal fraction when < 1.
fn parse_fraction(tok: &str) -> Result<f64, CliError> {
    let raw = tok.strip_suffix('%').unwrap_or(tok);
    let v: f64 = raw
        .parse()
        .map_err(|_| CliError(format!("bad percentage {tok:?}")))?;
    let frac = if tok.ends_with('%') || v >= 1.0 {
        v / 100.0
    } else {
        v
    };
    if !(0.0..1.0).contains(&frac) && frac != 1.0 {
        return Err(CliError(format!("percentage {tok:?} out of range")));
    }
    Ok(frac)
}

/// Parses an estimator token: `oracle`, `cgs-cb`, `fgs-hb`, `fgs-hb@0.5`.
pub fn parse_estimator(tok: &str) -> Result<EstimatorKind, CliError> {
    if tok == "oracle" {
        return Ok(EstimatorKind::Oracle);
    }
    if tok == "cgs-cb" {
        return Ok(EstimatorKind::CgsCb);
    }
    if let Some(rest) = tok.strip_prefix("fgs-hb") {
        let h = match rest.strip_prefix('@') {
            None if rest.is_empty() => 0.8,
            Some(h) => h
                .parse()
                .map_err(|_| CliError(format!("bad history factor in {tok:?}")))?,
            _ => return Err(CliError(format!("bad estimator {tok:?}"))),
        };
        if !(0.0..=1.0).contains(&h) {
            return Err(CliError(format!("history factor {h} out of [0,1]")));
        }
        return Ok(EstimatorKind::FgsHb { h });
    }
    Err(CliError(format!(
        "unknown estimator {tok:?} (oracle | cgs-cb | fgs-hb[@h])"
    )))
}

/// Builds a rate policy from a spec string (see crate docs for the
/// grammar).
pub fn build_policy(spec: &str) -> Result<Box<dyn RatePolicy>, CliError> {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or_default();
    match head {
        "saio" => {
            let frac = parse_fraction(
                parts
                    .next()
                    .ok_or_else(|| CliError("saio needs a percentage: saio:10%".into()))?,
            )?;
            let mut config = SaioConfig::new(frac);
            if let Some(opt) = parts.next() {
                let hist = opt
                    .strip_prefix("hist=")
                    .ok_or_else(|| CliError(format!("bad saio option {opt:?}")))?;
                config.history = if hist == "inf" {
                    HistoryLen::Infinite
                } else {
                    HistoryLen::Fixed(
                        hist.parse()
                            .map_err(|_| CliError(format!("bad history length {hist:?}")))?,
                    )
                };
            }
            Ok(Box::new(SaioPolicy::new(config)))
        }
        "saga" => {
            let frac = parse_fraction(
                parts
                    .next()
                    .ok_or_else(|| CliError("saga needs a percentage: saga:5%".into()))?,
            )?;
            let estimator = match parts.next() {
                None => EstimatorKind::Oracle,
                Some(tok) => parse_estimator(tok)?,
            };
            Ok(Box::new(SagaPolicy::new(
                SagaConfig::new(frac),
                estimator.build(),
            )))
        }
        "fixed" => {
            let rate: u64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| CliError("fixed needs a rate: fixed:200".into()))?;
            Ok(Box::new(FixedRatePolicy::new(rate)))
        }
        "alloc" => {
            let bytes: u64 = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| CliError("alloc needs bytes: alloc:98304".into()))?;
            Ok(Box::new(AllocationRatePolicy::new(bytes)))
        }
        other => Err(CliError(format!(
            "unknown policy {other:?} (saio | saga | fixed | alloc)"
        ))),
    }
}

/// Parses a partition-selector name.
pub fn parse_selector(tok: &str) -> Result<SelectorKind, CliError> {
    match tok {
        "updated-pointer" => Ok(SelectorKind::UpdatedPointer),
        "random" => Ok(SelectorKind::Random),
        "round-robin" => Ok(SelectorKind::RoundRobin),
        "most-garbage" => Ok(SelectorKind::MostGarbageOracle),
        other => Err(CliError(format!("unknown selector {other:?}"))),
    }
}

/// Builds OO7 parameters from `--params`, `--conn`, `--style` values.
pub fn build_params(
    params: Option<&str>,
    conn: u32,
    style: Option<&str>,
) -> Result<Oo7Params, CliError> {
    let mut p = match params.unwrap_or("small-prime") {
        "small-prime" => Oo7Params::small_prime(conn),
        "small" => Oo7Params::small(conn),
        "tiny" => {
            let mut t = Oo7Params::tiny();
            t.num_conn_per_atomic = conn.min(t.num_atomic_per_comp - 2).max(1);
            t
        }
        other => {
            return Err(CliError(format!(
                "unknown params {other:?} (small-prime | small | tiny)"
            )))
        }
    };
    p.conn_style = match style.unwrap_or("bidir") {
        "bidir" | "bidirectional" => ConnStyle::Bidirectional,
        "forward" => ConnStyle::Forward,
        other => return Err(CliError(format!("unknown style {other:?}"))),
    };
    p.validate();
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_forms() {
        assert_eq!(parse_fraction("10%").unwrap(), 0.10);
        assert_eq!(parse_fraction("10").unwrap(), 0.10);
        assert_eq!(parse_fraction("0.1").unwrap(), 0.10);
        assert!(parse_fraction("x").is_err());
        assert!(parse_fraction("150%").is_err());
    }

    #[test]
    fn policy_specs_build_and_name_themselves() {
        assert_eq!(build_policy("saio:10%").unwrap().name(), "saio(10.0%, c_hist=0)");
        assert_eq!(
            build_policy("saio:10%:hist=inf").unwrap().name(),
            "saio(10.0%, c_hist=inf)"
        );
        assert_eq!(
            build_policy("saio:10%:hist=4").unwrap().name(),
            "saio(10.0%, c_hist=4)"
        );
        assert_eq!(build_policy("saga:5%").unwrap().name(), "saga(5.0%, oracle)");
        assert_eq!(
            build_policy("saga:5%:fgs-hb@0.5").unwrap().name(),
            "saga(5.0%, fgs-hb(h=0.50))"
        );
        assert_eq!(
            build_policy("saga:5%:cgs-cb").unwrap().name(),
            "saga(5.0%, cgs-cb)"
        );
        assert_eq!(build_policy("fixed:200").unwrap().name(), "fixed(200)");
        assert_eq!(
            build_policy("alloc:98304").unwrap().name(),
            "alloc-fixed(98304B)"
        );
    }

    #[test]
    fn bad_policy_specs_error() {
        assert!(build_policy("saio").is_err());
        assert!(build_policy("saga:5%:psychic").is_err());
        assert!(build_policy("warp:9").is_err());
        assert!(build_policy("fixed:x").is_err());
        assert!(build_policy("saio:10%:window=4").is_err());
        assert!(build_policy("saga:5%:fgs-hb@1.5").is_err());
    }

    #[test]
    fn selectors_parse() {
        assert_eq!(
            parse_selector("updated-pointer").unwrap(),
            SelectorKind::UpdatedPointer
        );
        assert_eq!(parse_selector("random").unwrap(), SelectorKind::Random);
        assert!(parse_selector("psychic").is_err());
    }

    #[test]
    fn params_build() {
        let p = build_params(None, 3, None).unwrap();
        assert_eq!(p.num_comp_per_module, 150);
        assert_eq!(p.conn_style, ConnStyle::Bidirectional);
        let p = build_params(Some("tiny"), 9, Some("forward")).unwrap();
        assert_eq!(p.conn_style, ConnStyle::Forward);
        assert!(p.num_conn_per_atomic < p.num_atomic_per_comp);
        assert!(build_params(Some("huge"), 3, None).is_err());
        assert!(build_params(None, 3, Some("sideways")).is_err());
    }
}
