//! Textual specs for policies, selectors, and database parameters.
//!
//! Policy specs are parsed by `odbgc-core`'s [`PolicySpec`] grammar; this
//! module adapts errors to [`CliError`] and keeps the selector and
//! database-parameter specs, which are CLI-only concerns.

use odbgc_core::{EstimatorKind, PolicySpec, RatePolicy};
use odbgc_gc::SelectorKind;
use odbgc_oo7::{ConnStyle, Oo7Params};

use crate::CliError;

/// Parses a policy spec string into its data form.
pub fn parse_policy(spec: &str) -> Result<PolicySpec, CliError> {
    spec.parse::<PolicySpec>().map_err(|e| CliError(e.0))
}

/// Parses an estimator token: `oracle`, `cgs-cb`, `fgs-hb`, `fgs-hb@0.5`.
pub fn parse_estimator(tok: &str) -> Result<EstimatorKind, CliError> {
    odbgc_core::spec::parse_estimator(tok).map_err(|e| CliError(e.0))
}

/// Builds a rate policy from a spec string (see crate docs for the
/// grammar).
pub fn build_policy(spec: &str) -> Result<Box<dyn RatePolicy + Send>, CliError> {
    Ok(parse_policy(spec)?.build())
}

/// Parses a partition-selector name.
pub fn parse_selector(tok: &str) -> Result<SelectorKind, CliError> {
    match tok {
        "updated-pointer" => Ok(SelectorKind::UpdatedPointer),
        "random" => Ok(SelectorKind::Random),
        "round-robin" => Ok(SelectorKind::RoundRobin),
        "most-garbage" => Ok(SelectorKind::MostGarbageOracle),
        other => Err(CliError(format!("unknown selector {other:?}"))),
    }
}

/// Builds OO7 parameters from `--params`, `--conn`, `--style` values.
pub fn build_params(
    params: Option<&str>,
    conn: u32,
    style: Option<&str>,
) -> Result<Oo7Params, CliError> {
    let mut p = match params.unwrap_or("small-prime") {
        "small-prime" => Oo7Params::small_prime(conn),
        "small" => Oo7Params::small(conn),
        "tiny" => {
            let mut t = Oo7Params::tiny();
            t.num_conn_per_atomic = conn.min(t.num_atomic_per_comp - 2).max(1);
            t
        }
        other => {
            return Err(CliError(format!(
                "unknown params {other:?} (small-prime | small | tiny)"
            )))
        }
    };
    p.conn_style = match style.unwrap_or("bidir") {
        "bidir" | "bidirectional" => ConnStyle::Bidirectional,
        "forward" => ConnStyle::Forward,
        other => return Err(CliError(format!("unknown style {other:?}"))),
    };
    p.validate();
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_specs_build_and_name_themselves() {
        assert_eq!(
            build_policy("saio:10%").unwrap().name(),
            "saio(10.0%, c_hist=0)"
        );
        assert_eq!(
            build_policy("saio:10%:hist=inf").unwrap().name(),
            "saio(10.0%, c_hist=inf)"
        );
        assert_eq!(
            build_policy("saio:10%:hist=4").unwrap().name(),
            "saio(10.0%, c_hist=4)"
        );
        assert_eq!(
            build_policy("saga:5%").unwrap().name(),
            "saga(5.0%, oracle)"
        );
        assert_eq!(
            build_policy("saga:5%:fgs-hb@0.5").unwrap().name(),
            "saga(5.0%, fgs-hb(h=0.50))"
        );
        assert_eq!(
            build_policy("saga:5%:cgs-cb").unwrap().name(),
            "saga(5.0%, cgs-cb)"
        );
        assert_eq!(build_policy("fixed:200").unwrap().name(), "fixed(200)");
        assert_eq!(
            build_policy("alloc:98304").unwrap().name(),
            "alloc-fixed(98304B)"
        );
    }

    #[test]
    fn extension_policies_build() {
        assert!(build_policy("coupled:10%:floor=5%").is_ok());
        assert!(build_policy("quiescent:idle=2000:saga:5%").is_ok());
    }

    #[test]
    fn parsed_specs_round_trip_to_canonical_strings() {
        let spec = parse_policy("saio:0.1").unwrap();
        assert_eq!(spec.to_string(), "saio:10%");
        assert_eq!(parse_policy(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn bad_policy_specs_error() {
        assert!(build_policy("saio").is_err());
        assert!(build_policy("saga:5%:psychic").is_err());
        assert!(build_policy("warp:9").is_err());
        assert!(build_policy("fixed:x").is_err());
        assert!(build_policy("saio:10%:window=4").is_err());
        assert!(build_policy("saga:5%:fgs-hb@1.5").is_err());
    }

    #[test]
    fn selectors_parse() {
        assert_eq!(
            parse_selector("updated-pointer").unwrap(),
            SelectorKind::UpdatedPointer
        );
        assert_eq!(parse_selector("random").unwrap(), SelectorKind::Random);
        assert!(parse_selector("psychic").is_err());
    }

    #[test]
    fn params_build() {
        let p = build_params(None, 3, None).unwrap();
        assert_eq!(p.num_comp_per_module, 150);
        assert_eq!(p.conn_style, ConnStyle::Bidirectional);
        let p = build_params(Some("tiny"), 9, Some("forward")).unwrap();
        assert_eq!(p.conn_style, ConnStyle::Forward);
        assert!(p.num_conn_per_atomic < p.num_atomic_per_comp);
        assert!(build_params(Some("huge"), 3, None).is_err());
        assert!(build_params(None, 3, Some("sideways")).is_err());
    }
}
