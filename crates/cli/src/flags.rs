//! A tiny `--flag value` argument parser (no external dependency).

use std::collections::BTreeMap;

use crate::CliError;

/// Parsed `--key value` pairs with typed accessors. Every flag must take
/// exactly one value; unknown flags are rejected by [`Flags::finish`].
#[derive(Debug)]
pub struct Flags {
    values: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Flags {
    /// Parses an argument list of the form `--key value --key2 value2`.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut values = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(CliError(format!("expected a --flag, found {arg:?}")));
            };
            let Some(value) = it.next() else {
                return Err(CliError(format!("flag --{key} is missing its value")));
            };
            if values.insert(key.to_owned(), value.clone()).is_some() {
                return Err(CliError(format!("flag --{key} given twice")));
            }
        }
        Ok(Flags {
            values,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// An optional string flag.
    pub fn get(&self, key: &str) -> Option<String> {
        self.consumed.borrow_mut().push(key.to_owned());
        self.values.get(key).cloned()
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<String, CliError> {
        self.get(key)
            .ok_or_else(|| CliError(format!("missing required flag --{key}")))
    }

    /// An optional parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("flag --{key}: cannot parse {v:?}"))),
        }
    }

    /// Rejects any flag that no accessor asked about (catches typos).
    pub fn finish(self) -> Result<(), CliError> {
        let consumed = self.consumed.into_inner();
        for key in self.values.keys() {
            if !consumed.contains(key) {
                return Err(CliError(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

/// Parses a seed range: `5` (one seed) or `1..10` (inclusive).
pub fn parse_seed_range(s: &str) -> Result<Vec<u64>, CliError> {
    if let Some((a, b)) = s.split_once("..") {
        let a: u64 = a
            .parse()
            .map_err(|_| CliError(format!("bad seed range start {a:?}")))?;
        let b: u64 = b
            .parse()
            .map_err(|_| CliError(format!("bad seed range end {b:?}")))?;
        if a > b {
            return Err(CliError(format!("empty seed range {s:?}")));
        }
        Ok((a..=b).collect())
    } else {
        let v: u64 = s.parse().map_err(|_| CliError(format!("bad seed {s:?}")))?;
        Ok(vec![v])
    }
}

/// Parses a comma-separated list of numbers: `2,5,10.5`.
pub fn parse_number_list(s: &str) -> Result<Vec<f64>, CliError> {
    s.split(',')
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|_| CliError(format!("bad number {t:?} in list")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let f = Flags::parse(&argv("--conn 3 --seed 7")).unwrap();
        assert_eq!(f.get("conn"), Some("3".into()));
        assert_eq!(f.get_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(f.get_or::<u64>("missing", 42).unwrap(), 42);
        f.finish().unwrap();
    }

    #[test]
    fn rejects_missing_value_and_duplicates() {
        assert!(Flags::parse(&argv("--conn")).is_err());
        assert!(Flags::parse(&argv("--conn 3 --conn 4")).is_err());
        assert!(Flags::parse(&argv("conn 3")).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let f = Flags::parse(&argv("--conn 3 --tpyo 1")).unwrap();
        let _ = f.get("conn");
        assert!(f.finish().unwrap_err().to_string().contains("--tpyo"));
    }

    #[test]
    fn required_flag_errors_when_absent() {
        let f = Flags::parse(&[]).unwrap();
        assert!(f.require("out").is_err());
    }

    #[test]
    fn seed_ranges() {
        assert_eq!(parse_seed_range("5").unwrap(), vec![5]);
        assert_eq!(parse_seed_range("1..4").unwrap(), vec![1, 2, 3, 4]);
        assert!(parse_seed_range("4..1").is_err());
        assert!(parse_seed_range("x").is_err());
    }

    #[test]
    fn number_lists() {
        assert_eq!(parse_number_list("2,5,10.5").unwrap(), vec![2.0, 5.0, 10.5]);
        assert!(parse_number_list("2,x").is_err());
    }
}
