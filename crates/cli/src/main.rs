//! `odbgc` binary entry point.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match odbgc_cli::dispatch(&args) {
        Ok(out) => {
            // Tolerate a closed pipe (e.g. `odbgc run … | head`).
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            if writeln!(lock, "{out}").is_err() {
                std::process::exit(0);
            }
        }
        Err(e) => {
            eprintln!("odbgc: {e}");
            std::process::exit(2);
        }
    }
}
