//! The CLI subcommands.

pub mod client;
pub mod generate;
pub mod info;
pub mod run;
pub mod serve;
pub mod serve_bench;
pub mod sweep;
pub mod telemetry;
pub mod trace;

use odbgc_trace::Trace;

use crate::CliError;

/// On-disk trace encodings the CLI can read and write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The line-oriented `odbgc-trace v1` text codec.
    Text,
    /// The `OTBF` binary tracefile format (`.otb`).
    Binary,
}

impl TraceFormat {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Result<TraceFormat, CliError> {
        match s {
            "text" => Ok(TraceFormat::Text),
            "binary" => Ok(TraceFormat::Binary),
            other => Err(CliError(format!(
                "--format wants text or binary, got {other:?}"
            ))),
        }
    }

    /// The format implied by a file name: `.otb` means binary, anything
    /// else text.
    pub fn infer(path: &str) -> TraceFormat {
        if std::path::Path::new(path)
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("otb"))
        {
            TraceFormat::Binary
        } else {
            TraceFormat::Text
        }
    }
}

/// Loads a trace from disk, sniffing the format from the file's leading
/// bytes (binary tracefiles start with the `OTBF` magic; everything else
/// is parsed as the text codec). The extension is irrelevant on read.
pub fn load_trace(path: &str) -> Result<Trace, CliError> {
    let bytes = std::fs::read(path).map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
    if odbgc_tracefile::is_binary(&bytes) {
        return odbgc_tracefile::decode(&bytes).map_err(|e| CliError(format!("{path}: {e}")));
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| CliError(format!("{path}: neither a binary tracefile nor UTF-8 text")))?;
    odbgc_trace::codec::decode(&text).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Serializes a trace in the given format and writes it to `path`,
/// returning the on-disk size in bytes.
pub fn write_trace_file(path: &str, trace: &Trace, format: TraceFormat) -> Result<u64, CliError> {
    let bytes = match format {
        TraceFormat::Text => odbgc_trace::codec::encode(trace).into_bytes(),
        TraceFormat::Binary => odbgc_tracefile::encode(trace),
    };
    std::fs::write(path, &bytes).map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
    Ok(bytes.len() as u64)
}

/// Parses the `--gc-workers` flag shared by `run`, `sweep`,
/// `serve-bench`, and `serve`: the collector-worker pool size per
/// engine. `None`
/// (flag absent) defers to the `ODBGC_GC_WORKERS` environment variable,
/// else 1. Worker count never changes results — only wall-clock time
/// and volatile scheduler telemetry.
pub fn parse_gc_workers(flags: &crate::flags::Flags) -> Result<Option<usize>, CliError> {
    match flags.get("gc-workers") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(CliError(format!(
                "--gc-workers needs a positive integer, got {v:?}"
            ))),
        },
        None => Ok(None),
    }
}

/// Parses the `--net-threads` flag (`serve`): the event-loop thread
/// pool size. `None` (flag absent) defers to the `ODBGC_NET_THREADS`
/// environment variable, else `min(4, available cores)`. Loop count
/// never changes results — only wall-clock time and volatile `net_loops`
/// telemetry.
pub fn parse_net_threads(flags: &crate::flags::Flags) -> Result<Option<usize>, CliError> {
    match flags.get("net-threads") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(CliError(format!(
                "--net-threads needs a positive integer, got {v:?}"
            ))),
        },
        None => Ok(None),
    }
}
