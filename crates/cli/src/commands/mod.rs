//! The CLI subcommands.

pub mod generate;
pub mod info;
pub mod run;
pub mod sweep;

use odbgc_trace::Trace;

use crate::CliError;

/// Loads a trace from disk (the `odbgc-trace` text format).
pub fn load_trace(path: &str) -> Result<Trace, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
    odbgc_trace::codec::decode(&text).map_err(|e| CliError(format!("{path}: {e}")))
}
