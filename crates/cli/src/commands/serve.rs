//! `odbgc serve` — the network serve front-end: bind a socket, serve
//! client sessions until one requests a graceful drain, then report and
//! (optionally) write per-shard telemetry.
//!
//! The bound address is announced on **stderr** (and, with
//! `--addr-file`, written to a file) as soon as the listener is up, so
//! scripts using `--listen 127.0.0.1:0` can discover the ephemeral
//! port; stdout carries the end-of-run report only.

use odbgc_net::{NetConfig, NetServer};
use odbgc_sim::{Json, RunTelemetry, SimConfig};

use crate::flags::Flags;
use crate::spec;
use crate::CliError;

/// Binds and serves until a client sends Shutdown; returns the drain
/// report.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let listen = flags.get_or("listen", "127.0.0.1:0".to_owned())?;
    let policy_spec = flags.require("policy")?;
    let shards: u32 = flags.get_or("shards", 2)?;
    let window_max: u32 = flags.get_or("window-max", 64)?;
    let idle_timeout_ms: u64 = flags.get_or("idle-timeout-ms", 30_000)?;
    let store_geometry = flags.get("store");
    let telemetry_path = flags.get("telemetry");
    let addr_file = flags.get("addr-file");
    let gc_workers = crate::commands::parse_gc_workers(&flags)?;
    let net_threads_flag = crate::commands::parse_net_threads(&flags)?;
    flags.finish()?;

    // Flag wins; else the environment; else 0 = auto (min(4, cores)).
    let net_threads = match net_threads_flag {
        Some(n) => n,
        None => match std::env::var("ODBGC_NET_THREADS") {
            Ok(s) => match odbgc_core::parse_worker_env(
                "ODBGC_NET_THREADS",
                &s,
                "using min(4, available cores)",
            ) {
                Ok(n) => n,
                Err(warning) => {
                    eprintln!("{warning}");
                    0
                }
            },
            Err(_) => 0,
        },
    };

    if shards == 0 {
        return Err(CliError("--shards must be at least 1".into()));
    }
    if window_max == 0 {
        return Err(CliError("--window-max must be at least 1".into()));
    }
    // Validate the spec once up front so a bad spec fails before bind.
    spec::build_policy(&policy_spec)?;

    let mut engine_config = SimConfig {
        gc_workers,
        ..SimConfig::default()
    };
    match store_geometry.as_deref() {
        None | Some("tiny") => engine_config.store = odbgc_sim::store::StoreConfig::tiny(),
        Some("paper") => {}
        Some(other) => {
            return Err(CliError(format!(
                "unknown store geometry {other:?} (paper | tiny)"
            )))
        }
    }

    let config = NetConfig {
        engine: engine_config,
        shards,
        window_max,
        idle_timeout: std::time::Duration::from_millis(idle_timeout_ms.max(1)),
        net_threads,
        ..NetConfig::default()
    };
    let server = NetServer::bind(&listen, config, |_| {
        spec::build_policy(&policy_spec).expect("spec validated above")
    })
    .map_err(|e| CliError(format!("serve: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError(format!("serve: local_addr: {e}")))?;
    eprintln!("odbgc serve: listening on {addr} ({shards} shard(s), policy {policy_spec})");
    if let Some(path) = &addr_file {
        std::fs::write(path, addr.to_string())
            .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
    }

    let outcome = server.run();

    let mut out = format!(
        "serve: drained after {} client connection(s) on {shards} shard(s), policy {policy_spec}",
        outcome.clients.len()
    );
    for (i, shard) in outcome.shards.iter().enumerate() {
        out.push_str(&format!(
            "\nshard {i}: policy {}\n\
             \x20 events applied:   {}\n\
             \x20 collections:      {}\n\
             \x20 decisions logged: {}\n\
             \x20 app I/O:          {} pages\n\
             \x20 GC I/O:           {} pages ({:.2}% of total)\n\
             \x20 garbage left:     {:.1} KiB",
            shard.policy,
            shard.result.events_replayed,
            shard.result.collection_count(),
            shard.decisions.len(),
            shard.result.app_io_total,
            shard.result.gc_io_total,
            shard.result.gc_io_pct_whole_run(),
            shard.result.final_garbage_bytes as f64 / 1024.0,
        ));
        if let Some(failed) = &shard.failed {
            out.push_str(&format!("\n\x20 FAILED:           {failed}"));
        }
    }
    for (i, l) in outcome.loops.iter().enumerate() {
        // Loop counters are pure scheduling artifacts: volatile by
        // construction, reported for operators, never compared.
        out.push_str(&format!(
            "\nnet loop {i}: {} wakeup(s), {} timer tick(s), {} accepted, \
             {} frames in / {} out, {} partial read(s), {} partial write(s), \
             {} completion(s), max shard queue {}",
            l.wakeups,
            l.timeouts,
            l.accepted,
            l.frames_in,
            l.frames_out,
            l.partial_reads,
            l.partial_writes,
            l.completions,
            l.max_queue_depth,
        ));
    }
    for c in &outcome.clients {
        // Per-client accounting is timing-dependent (bytes include
        // retries, stall time is wall clock); it lives on its own lines
        // here and under volatile `net_` keys in telemetry.
        out.push_str(&format!(
            "\nclient session {}: {} turns, {} ops, {} busy rejection(s), \
             {} B in / {} B out, GC stall {:.3} ms, {}",
            c.session,
            c.turns,
            c.ops,
            c.busy_rejections,
            c.bytes_in,
            c.bytes_out,
            c.gc_stall_ns as f64 / 1e6,
            if c.clean_close {
                "clean close"
            } else {
                "unclean close"
            },
        ));
    }

    if let Some(path) = &telemetry_path {
        for (i, shard) in outcome.shards.iter().enumerate() {
            let mut doc =
                RunTelemetry::from_decisions(shard.policy.clone(), shard.decisions.clone())
                    .to_json();
            // Per-client counters ride along under a `net_` key, which
            // strip_volatile drops — the deterministic body stays
            // byte-comparable with in-process serve telemetry.
            if let Json::Obj(fields) = &mut doc {
                fields.push(("net_clients".to_owned(), clients_json(&outcome.clients)));
                fields.push(("net_loops".to_owned(), loops_json(&outcome.loops)));
            }
            let shard_path =
                super::serve_bench::shard_telemetry_path(path, i, outcome.shards.len());
            std::fs::write(&shard_path, doc.to_string_pretty())
                .map_err(|e| CliError(format!("cannot write {shard_path:?}: {e}")))?;
            out.push_str(&format!("\nshard {i} telemetry written to {shard_path}"));
        }
    }
    Ok(out)
}

fn loops_json(loops: &[odbgc_net::LoopStats]) -> Json {
    Json::Arr(
        loops
            .iter()
            .enumerate()
            .map(|(i, l)| {
                Json::Obj(vec![
                    ("loop".into(), Json::u64(i as u64)),
                    ("wakeups".into(), Json::u64(l.wakeups)),
                    ("timeouts".into(), Json::u64(l.timeouts)),
                    ("accepted".into(), Json::u64(l.accepted)),
                    ("frames_in".into(), Json::u64(l.frames_in)),
                    ("frames_out".into(), Json::u64(l.frames_out)),
                    ("partial_reads".into(), Json::u64(l.partial_reads)),
                    ("partial_writes".into(), Json::u64(l.partial_writes)),
                    ("completions".into(), Json::u64(l.completions)),
                    ("max_queue_depth".into(), Json::u64(l.max_queue_depth)),
                ])
            })
            .collect(),
    )
}

fn clients_json(clients: &[odbgc_net::ClientCounters]) -> Json {
    Json::Arr(
        clients
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("session".into(), Json::u64(c.session as u64)),
                    ("turns".into(), Json::u64(c.turns)),
                    ("ops".into(), Json::u64(c.ops)),
                    ("bytes_in".into(), Json::u64(c.bytes_in)),
                    ("bytes_out".into(), Json::u64(c.bytes_out)),
                    ("busy_rejections".into(), Json::u64(c.busy_rejections)),
                    ("gc_stall_ns".into(), Json::u64(c.gc_stall_ns)),
                    ("clean_close".into(), Json::Bool(c.clean_close)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use odbgc_sim::engine::WorkloadParams;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn rejects_bad_flags_before_binding() {
        assert!(run(&argv("--policy nope")).is_err());
        assert!(run(&argv("--policy fixed:25 --shards 0")).is_err());
        assert!(run(&argv("--policy fixed:25 --window-max 0")).is_err());
        assert!(run(&argv("--policy fixed:25 --store weird")).is_err());
        assert!(run(&argv("--policy fixed:25 --net-threads 0")).is_err());
        assert!(run(&argv("--policy fixed:25 --net-threads lots")).is_err());
        assert!(run(&argv("--policy fixed:25 --tpyo 1")).is_err());
    }

    /// End-to-end over loopback: serve in a thread, drive one client
    /// through the public CLI path, drain, and check the report.
    #[test]
    fn serves_a_client_and_drains() {
        let dir = std::env::temp_dir().join(format!("odbgc-serve-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr");
        let telemetry = dir.join("net.json");
        let args = format!(
            "--policy fixed:25 --shards 1 --net-threads 2 --listen 127.0.0.1:0 \
             --addr-file {} --telemetry {}",
            addr_file.display(),
            telemetry.display()
        );
        let server = std::thread::spawn(move || run(&argv(&args)));
        let addr = loop {
            if let Ok(a) = std::fs::read_to_string(&addr_file) {
                if !a.is_empty() {
                    break a;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        let report = odbgc_net::run_client(&odbgc_net::ClientConfig {
            addr,
            session: 0,
            ops: 200,
            batch: 8,
            window: 4,
            workload: WorkloadParams::default(),
            shutdown_after: true,
        })
        .expect("client run");
        assert_eq!(report.ops_applied, 200);
        let out = server.join().unwrap().expect("serve report");
        assert!(
            out.contains("drained after 1 client connection(s)"),
            "{out}"
        );
        assert!(out.contains("client session 0: "), "{out}");
        assert!(out.contains("telemetry written to"), "{out}");
        let text = std::fs::read_to_string(&telemetry).unwrap();
        assert!(
            text.contains("net_clients"),
            "telemetry carries client counters"
        );
        assert!(
            text.contains("net_loops"),
            "telemetry carries per-loop counters"
        );
        assert!(out.contains("net loop 0: "), "{out}");
        assert!(out.contains("net loop 1: "), "{out}");
        let doc = odbgc_sim::Json::parse(&text).expect("telemetry parses");
        assert_eq!(odbgc_sim::verify_header(&doc).as_deref(), Ok("run"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
