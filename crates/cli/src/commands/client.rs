//! `odbgc client` — seeded load driver against an `odbgc serve`
//! front-end.
//!
//! Runs the same `SessionWorkload` the in-process serve mode schedules,
//! one turn per `Ops` frame, acknowledging each applied turn. With
//! `--connections N` one process drives N sessions round-robin
//! (sessions `--session` through `--session + N - 1`, each running
//! `--ops` operations) and reports the aggregate — the cheap way to put
//! an event-loop server under high connection counts. With
//! `--shutdown true` the client requests a graceful server drain after
//! finishing its workload — the usual way a multi-client script ends a
//! serve run.

use odbgc_net::{run_client, run_clients, ClientConfig};
use odbgc_sim::engine::WorkloadParams;

use crate::flags::Flags;
use crate::CliError;

/// Connects, drives the workload, and reports client-side counters.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let addr = flags.require("connect")?;
    let session: u32 = flags.get_or("session", 0)?;
    let ops: u64 = flags.get_or("ops", 2_000)?;
    let batch: u64 = flags.get_or("batch", 8)?;
    let window: u32 = flags.get_or("window", 4)?;
    let seed: u64 = flags.get_or("seed", WorkloadParams::default().seed)?;
    let connections: u32 = flags.get_or("connections", 1)?;
    let shutdown_after: bool = flags.get_or("shutdown", false)?;
    flags.finish()?;

    if window == 0 {
        return Err(CliError("--window must be at least 1".into()));
    }
    if connections == 0 {
        return Err(CliError("--connections must be at least 1".into()));
    }

    let config = ClientConfig {
        addr: addr.clone(),
        session,
        ops,
        batch,
        window,
        workload: WorkloadParams {
            seed,
            ..WorkloadParams::default()
        },
        shutdown_after,
    };

    let (header, report) = if connections == 1 {
        let report = run_client(&config).map_err(|e| CliError(format!("client: {e}")))?;
        (format!("client: session {session} against {addr}"), report)
    } else {
        let multi =
            run_clients(&config, connections).map_err(|e| CliError(format!("client: {e}")))?;
        let last_session = session.wrapping_add(connections - 1);
        (
            format!(
                "client: {connections} connection(s), sessions \
                 {session}..={last_session} against {addr}"
            ),
            multi.totals(),
        )
    };

    Ok(format!(
        "{header}\n\
         \x20 turns acked:      {}\n\
         \x20 ops applied:      {}\n\
         \x20 objects created:  {}\n\
         \x20 garbage created:  {} bytes\n\
         \x20 busy rejections:  {}\n\
         \x20 GC stall:         {:.3} ms\n\
         \x20 window granted:   {}{}",
        report.turns,
        report.ops_applied,
        report.created,
        report.garbage_created,
        report.busy,
        report.gc_stall_ns as f64 / 1e6,
        report.granted_window,
        if shutdown_after {
            "\n server drain requested"
        } else {
            ""
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(run(&argv("")).is_err(), "--connect is required");
        assert!(run(&argv("--connect 127.0.0.1:1 --window 0")).is_err());
        assert!(run(&argv("--connect 127.0.0.1:1 --connections 0")).is_err());
        assert!(run(&argv("--connect 127.0.0.1:1 --tpyo 1")).is_err());
    }

    #[test]
    fn connection_refused_is_a_clean_error() {
        // Port 1 on loopback is never an odbgc server.
        let err = run(&argv("--connect 127.0.0.1:1 --ops 10")).unwrap_err();
        assert!(err.to_string().starts_with("client: "), "{err}");
    }
}
