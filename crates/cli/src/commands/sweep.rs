//! `odbgc sweep` — requested-vs-achieved sweeps over seeds.

use odbgc_core::{EstimatorKind, PolicySpec};
use odbgc_sim::report::fmt_f;
use odbgc_sim::{
    sweep_point, ExperimentPlan, FaultKind, FaultSpec, PlanTelemetry, SimConfig, SweepPoint,
};

use crate::flags::{parse_number_list, parse_seed_range, Flags};
use crate::spec;
use crate::CliError;

/// What a sweep measures for each cell.
enum Axis {
    /// Achieved GC-I/O percentage (SAIO).
    GcIo,
    /// Achieved garbage percentage (SAGA).
    Garbage,
}

/// Runs requested-vs-achieved sweeps over seeds.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let policy = flags.require("policy")?;
    let points = parse_number_list(&flags.require("points")?)?;
    let seeds = parse_seed_range(&flags.get("seeds").unwrap_or_else(|| "1..10".into()))?;
    let conn: u32 = flags.get_or("conn", 3)?;
    let params_name = flags.get("params");
    let csv_path = flags.get("csv");
    let telemetry_path = flags.get("telemetry");
    let corpus = flags.get("corpus");
    // `--progress N` prints a stderr line every N completed jobs.
    let progress_every = match flags.get("progress") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                return Err(CliError(format!(
                    "--progress needs a positive integer, got {v:?}"
                )))
            }
        },
        None => None,
    };
    let jobs = match flags.get("jobs") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                return Err(CliError(format!(
                    "--jobs needs a positive integer, got {v:?}"
                )))
            }
        },
        None => None,
    };
    // Test rig: `--poison CELL:SEED` deterministically corrupts one job's
    // trace so the failure-reporting path can be exercised end to end.
    let poison = match flags.get("poison") {
        Some(v) => Some(parse_poison(&v)?),
        None => None,
    };
    let gc_workers = crate::commands::parse_gc_workers(&flags)?;
    flags.finish()?;

    let params = spec::build_params(params_name.as_deref(), conn, None)?;
    let config = SimConfig {
        gc_workers,
        ..SimConfig::default()
    };

    // The sweep axis: `saio` sweeps requested I/O%, `saga[:estimator]`
    // sweeps requested garbage%.
    let mut spec_parts = policy.split(':');
    let head = spec_parts.next().unwrap_or_default();
    let (axis, cells): (Axis, Vec<(f64, PolicySpec)>) = match head {
        "saio" => (
            Axis::GcIo,
            points
                .iter()
                .map(|&pct| (pct, PolicySpec::saio(pct / 100.0)))
                .collect(),
        ),
        "saga" => {
            let estimator = match spec_parts.next() {
                None => EstimatorKind::Oracle,
                Some(tok) => spec::parse_estimator(tok)?,
            };
            (
                Axis::Garbage,
                points
                    .iter()
                    .map(|&pct| (pct, PolicySpec::saga(pct / 100.0, estimator)))
                    .collect(),
            )
        }
        other => {
            return Err(CliError(format!(
                "sweep supports saio or saga[:estimator], not {other:?}"
            )))
        }
    };

    let mut plan = ExperimentPlan::new(params, &seeds, config).cells(cells);
    if let Some(dir) = corpus {
        plan = plan.with_corpus(dir);
    }
    if let Some((cell_index, seed)) = poison {
        plan = plan.inject_fault(FaultSpec {
            cell_index,
            seed,
            kind: FaultKind::PoisonTrace,
        });
    }
    let outcome = match progress_every {
        None => plan.run_with_jobs(jobs),
        Some(every) => plan.run_with_jobs_and_progress(jobs, &move |p| {
            if p.done % every == 0 || p.done == p.total {
                eprintln!(
                    "sweep: {}/{} jobs done{}",
                    p.done,
                    p.total,
                    if p.failed > 0 {
                        format!(", {} failed", p.failed)
                    } else {
                        String::new()
                    }
                );
            }
        }),
    };
    if let Some(path) = &telemetry_path {
        // Written before the failure early-return below: a partially
        // failed sweep still leaves a full telemetry record (including
        // the failure list) on disk for inspection.
        let telemetry = PlanTelemetry::from_outcome(&plan, &outcome);
        std::fs::write(path, telemetry.to_json().to_string_pretty())
            .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
    }
    let results: Vec<(SweepPoint, f64)> = outcome
        .cells
        .iter()
        .map(|cell| {
            let achieved = match axis {
                Axis::GcIo => cell.outcome.gc_io_pcts(),
                Axis::Garbage => cell.outcome.garbage_pcts(),
            };
            (
                sweep_point(cell.x, &achieved),
                cell.cpu_time().as_secs_f64(),
            )
        })
        .collect();

    let mut out = format!(
        "sweep of {policy} over {} seeds (conn {conn}, {} workers)\nrequested  achieved.mean  achieved.min  achieved.max  runs  wall.s\n",
        seeds.len(),
        outcome.jobs,
    );
    let mut csv = String::from("requested,mean,min,max,runs,wall_s\n");
    for (p, wall_s) in &results {
        // Cells whose every seed failed have no statistics; fmt_f renders
        // their NaN mean/min/max as "-" instead of a misleading number.
        out.push_str(&format!(
            "{:>9.1}  {:>13}  {:>12}  {:>12}  {:>4}  {:>6.2}\n",
            p.x,
            fmt_f(p.mean, 2),
            fmt_f(p.min, 2),
            fmt_f(p.max, 2),
            p.runs,
            wall_s
        ));
        csv.push_str(&format!(
            "{},{},{},{},{},{:.3}\n",
            p.x,
            fmt_f(p.mean, 4),
            fmt_f(p.min, 4),
            fmt_f(p.max, 4),
            p.runs,
            wall_s
        ));
    }
    out.push_str(&format!(
        "{} traces built, {} cache hits; elapsed {:.2}s\n",
        outcome.cache.misses,
        outcome.cache.hits,
        outcome.elapsed.as_secs_f64(),
    ));
    if let Some(stats) = &outcome.corpus {
        out.push_str(&format!("{stats}\n"));
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, csv).map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!("csv written to {path}\n"));
    }
    if let Some(path) = &telemetry_path {
        out.push_str(&format!("telemetry written to {path}\n"));
    }
    if !outcome.failures.is_empty() {
        // One line per failed job, then a nonzero exit: partial results
        // above are real, but the caller must notice the sweep was not
        // complete.
        out.push_str(&format!("{} job(s) failed:\n", outcome.failures.len()));
        for f in &outcome.failures {
            out.push_str(&format!("  failed: {f}\n"));
        }
        return Err(CliError(out));
    }
    Ok(out)
}

/// Parses `--poison CELL:SEED` (both decimal integers).
fn parse_poison(v: &str) -> Result<(usize, u64), CliError> {
    let bad = || {
        CliError(format!(
            "--poison wants CELL:SEED (two integers), got {v:?}"
        ))
    };
    let (cell, seed) = v.split_once(':').ok_or_else(bad)?;
    Ok((
        cell.trim().parse().map_err(|_| bad())?,
        seed.trim().parse().map_err(|_| bad())?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn saio_sweep_on_tiny_runs() {
        let out = run(&argv(
            "--policy saio --points 10,20 --seeds 1..2 --params tiny --conn 2",
        ))
        .unwrap();
        assert!(out.contains("requested"));
        assert!(out.contains("traces built"));
        assert_eq!(out.lines().count(), 5);
    }

    #[test]
    fn saga_sweep_with_estimator_runs() {
        let out = run(&argv(
            "--policy saga:fgs-hb --points 10 --seeds 1 --params tiny --conn 2",
        ))
        .unwrap();
        assert!(out.contains("10.0"));
    }

    #[test]
    fn corpus_flag_reports_corpus_stats_and_warms_up() {
        let dir = std::env::temp_dir().join(format!(
            "odbgc-cli-test-sweep-corpus-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cmd = format!(
            "--policy saio --points 10,20 --seeds 1..2 --params tiny --conn 2 --corpus {}",
            dir.display()
        );
        let cold = run(&argv(&cmd)).unwrap();
        assert!(cold.contains("corpus: 0 hit"), "{cold}");
        assert!(cold.contains("2 generated"), "{cold}");
        let warm = run(&argv(&cmd)).unwrap();
        // 2 cells × 2 seeds = 4 jobs, all served by corpus data.
        assert!(warm.contains("corpus: 4 hit"), "{warm}");
        assert!(warm.contains("0 generated"), "{warm}");
        // The measurements themselves are identical cold or warm.
        let data = |s: &str| -> Vec<String> {
            s.lines()
                .skip(2)
                .take(2)
                .map(|l| l.split_whitespace().take(4).collect::<Vec<_>>().join(" "))
                .collect()
        };
        assert_eq!(data(&cold), data(&warm));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jobs_flag_does_not_change_results() {
        let serial = run(&argv(
            "--policy saio --points 10,20 --seeds 1..3 --params tiny --conn 2 --jobs 1",
        ))
        .unwrap();
        let parallel = run(&argv(
            "--policy saio --points 10,20 --seeds 1..3 --params tiny --conn 2 --jobs 8",
        ))
        .unwrap();
        // Wall-time columns differ run to run; the data rows must not.
        let data = |s: &str| -> Vec<String> {
            s.lines()
                .skip(2)
                .take(2)
                .map(|l| l.split_whitespace().take(4).collect::<Vec<_>>().join(" "))
                .collect()
        };
        assert_eq!(data(&serial), data(&parallel));
    }

    #[test]
    fn telemetry_flag_writes_plan_document() {
        let dir =
            std::env::temp_dir().join(format!("odbgc-cli-test-sweep-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        let out = run(&argv(&format!(
            "--policy saio --points 10,20 --seeds 1..2 --params tiny --conn 2 --telemetry {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("telemetry written to"));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = odbgc_sim::Json::parse(&text).expect("plan telemetry must parse");
        assert_eq!(odbgc_sim::verify_header(&doc).as_deref(), Ok("plan"));
        assert_eq!(
            doc.get("failure_count").and_then(odbgc_sim::Json::as_u64),
            Some(0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_survives_a_failed_sweep() {
        let dir = std::env::temp_dir().join(format!(
            "odbgc-cli-test-sweep-tel-fail-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        // The sweep errors (poisoned job ⇒ nonzero exit) but the
        // telemetry file must still be written, recording the failure.
        let err = run(&argv(&format!(
            "--policy saio --points 10,20 --seeds 1..2 --params tiny --conn 2 --poison 0:1 --telemetry {}",
            path.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("1 job(s) failed"));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = odbgc_sim::Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("failure_count").and_then(odbgc_sim::Json::as_u64),
            Some(1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_flag_accepts_positive_counts_only() {
        assert!(run(&argv(
            "--policy saio --points 10 --seeds 1 --params tiny --conn 2 --progress 1"
        ))
        .is_ok());
        assert!(run(&argv(
            "--policy saio --points 10 --seeds 1 --params tiny --progress 0"
        ))
        .is_err());
        assert!(run(&argv(
            "--policy saio --points 10 --seeds 1 --params tiny --progress x"
        ))
        .is_err());
    }

    #[test]
    fn bad_jobs_flag_errors() {
        assert!(run(&argv(
            "--policy saio --points 10 --seeds 1 --params tiny --jobs 0"
        ))
        .is_err());
        assert!(run(&argv(
            "--policy saio --points 10 --seeds 1 --params tiny --jobs x"
        ))
        .is_err());
    }

    #[test]
    fn sweep_rejects_fixed_policies() {
        assert!(run(&argv("--policy fixed:200 --points 1 --seeds 1")).is_err());
    }

    #[test]
    fn poisoned_job_reports_failure_and_errors() {
        let err = run(&argv(
            "--policy saio --points 10,20 --seeds 1..3 --params tiny --conn 2 --poison 1:2",
        ))
        .unwrap_err();
        let text = err.to_string();
        // The healthy cells still render…
        assert!(
            text.contains("traces built"),
            "partial results kept: {text}"
        );
        // …and the failed job is named precisely.
        assert!(text.contains("1 job(s) failed"), "missing summary: {text}");
        assert!(
            text.contains("failed: cell 1 (saio:20%) seed 2"),
            "missing failure line: {text}"
        );
    }

    #[test]
    fn bad_poison_flag_errors() {
        assert!(run(&argv("--policy saio --points 10 --seeds 1 --poison nope")).is_err());
        assert!(run(&argv("--policy saio --points 10 --seeds 1 --poison 1")).is_err());
    }
}
