//! `odbgc sweep` — requested-vs-achieved sweeps over seeds.

use odbgc_core::{EstimatorKind, SagaConfig, SagaPolicy, SaioPolicy};
use odbgc_sim::{run_oo7_experiment, sweep_point, SimConfig, SweepPoint};

use crate::flags::{parse_number_list, parse_seed_range, Flags};
use crate::spec;
use crate::CliError;

/// Runs requested-vs-achieved sweeps over seeds.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let policy = flags.require("policy")?;
    let points = parse_number_list(&flags.require("points")?)?;
    let seeds = parse_seed_range(&flags.get("seeds").unwrap_or_else(|| "1..10".into()))?;
    let conn: u32 = flags.get_or("conn", 3)?;
    let params_name = flags.get("params");
    let csv_path = flags.get("csv");
    flags.finish()?;

    let params = spec::build_params(params_name.as_deref(), conn, None)?;
    let config = SimConfig::default();

    // The sweep axis: `saio` sweeps requested I/O%, `saga[:estimator]`
    // sweeps requested garbage%.
    let mut spec_parts = policy.split(':');
    let head = spec_parts.next().unwrap_or_default();
    let results: Vec<SweepPoint> = match head {
        "saio" => points
            .iter()
            .map(|&pct| {
                let outcome = run_oo7_experiment(params, &seeds, &config, || {
                    Box::new(SaioPolicy::with_frac(pct / 100.0))
                });
                let achieved = outcome.gc_io_pcts();
                if achieved.is_empty() {
                    SweepPoint {
                        x: pct,
                        mean: f64::NAN,
                        min: f64::NAN,
                        max: f64::NAN,
                        runs: 0,
                    }
                } else {
                    sweep_point(pct, &achieved)
                }
            })
            .collect(),
        "saga" => {
            let estimator = match spec_parts.next() {
                None => EstimatorKind::Oracle,
                Some(tok) => spec::parse_estimator(tok)?,
            };
            points
                .iter()
                .map(|&pct| {
                    let outcome = run_oo7_experiment(params, &seeds, &config, || {
                        Box::new(SagaPolicy::new(
                            SagaConfig::new(pct / 100.0),
                            estimator.build(),
                        ))
                    });
                    let achieved = outcome.garbage_pcts();
                    if achieved.is_empty() {
                        SweepPoint {
                            x: pct,
                            mean: f64::NAN,
                            min: f64::NAN,
                            max: f64::NAN,
                            runs: 0,
                        }
                    } else {
                        sweep_point(pct, &achieved)
                    }
                })
                .collect()
        }
        other => {
            return Err(CliError(format!(
                "sweep supports saio or saga[:estimator], not {other:?}"
            )))
        }
    };

    let mut out = format!(
        "sweep of {policy} over {} seeds (conn {conn})\nrequested  achieved.mean  achieved.min  achieved.max\n",
        seeds.len()
    );
    let mut csv = String::from("requested,mean,min,max,runs\n");
    for p in &results {
        out.push_str(&format!(
            "{:>9.1}  {:>13.2}  {:>12.2}  {:>12.2}\n",
            p.x, p.mean, p.min, p.max
        ));
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            p.x, p.mean, p.min, p.max, p.runs
        ));
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, csv)
            .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!("csv written to {path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn saio_sweep_on_tiny_runs() {
        let out = run(&argv(
            "--policy saio --points 10,20 --seeds 1..2 --params tiny --conn 2",
        ))
        .unwrap();
        assert!(out.contains("requested"));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    fn saga_sweep_with_estimator_runs() {
        let out = run(&argv(
            "--policy saga:fgs-hb --points 10 --seeds 1 --params tiny --conn 2",
        ))
        .unwrap();
        assert!(out.contains("10.0"));
    }

    #[test]
    fn sweep_rejects_fixed_policies() {
        assert!(run(&argv("--policy fixed:200 --points 1 --seeds 1")).is_err());
    }
}
