//! `odbgc telemetry` — inspect and validate telemetry exports.
//!
//! `verify` is what CI runs against `sweep --telemetry` output: it
//! parses the document, checks the schema header (name + version), and
//! prints a one-screen summary. Any structural problem is a hard error
//! (nonzero exit).

use odbgc_sim::{verify_header, Json};

use crate::flags::Flags;
use crate::CliError;

/// Dispatches `odbgc telemetry <subcommand>`.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(CliError("telemetry wants a subcommand: verify".into()));
    };
    match sub.as_str() {
        "verify" => verify(rest),
        other => Err(CliError(format!(
            "unknown telemetry subcommand {other:?}; try verify"
        ))),
    }
}

/// `odbgc telemetry verify --file <json>`.
fn verify(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let path = flags.require("file")?;
    flags.finish()?;

    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
    let doc = Json::parse(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    let kind = verify_header(&doc).map_err(|e| CliError(format!("{path}: {e}")))?;

    // Parse → re-emit must reproduce the document byte for byte; a
    // mismatch means the export and the parser disagree about the
    // format, which would silently corrupt any rewrite pipeline.
    if doc.to_string_pretty() != text {
        return Err(CliError(format!(
            "{path}: document does not round-trip through the parser"
        )));
    }

    let mut out = format!("{path}: valid odbgc-telemetry ({kind})");
    match kind.as_str() {
        "run" => {
            let decisions = doc
                .get("decision_count")
                .and_then(Json::as_u64)
                .ok_or_else(|| CliError(format!("{path}: run document lacks decision_count")))?;
            let phases = doc
                .get("phases")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            out.push_str(&format!("\n  {decisions} decisions over {phases} phases"));
        }
        "plan" => {
            let cells = doc
                .get("cells")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            let failures = doc
                .get("failure_count")
                .and_then(Json::as_u64)
                .ok_or_else(|| CliError(format!("{path}: plan document lacks failure_count")))?;
            out.push_str(&format!("\n  {cells} cells, {failures} failed job(s)"));
        }
        _ => {}
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("odbgc-cli-test-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn verify_accepts_a_real_run_export() {
        use odbgc_sim::core_policies::{RatePolicy, SaioPolicy};
        use odbgc_sim::oo7::{Oo7App, Oo7Params};
        use odbgc_sim::{SimConfig, Simulator};
        let trace = Oo7App::standard(Oo7Params::tiny(), 21).generate().0;
        let mut policy = SaioPolicy::with_frac(0.10);
        let mut telemetry = odbgc_sim::RunTelemetry::new(policy.name());
        Simulator::new(SimConfig::tiny())
            .replay(
                &trace,
                &mut policy,
                odbgc_sim::ReplayOptions::new().telemetry(&mut telemetry),
            )
            .unwrap();
        let path = temp_file("run-ok.json", &telemetry.to_json().to_string_pretty());
        let out = run(&argv(&format!("verify --file {}", path.display()))).unwrap();
        assert!(out.contains("valid odbgc-telemetry (run)"), "{out}");
        assert!(out.contains("decisions over"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_rejects_malformed_json() {
        let path = temp_file("broken.json", "{\"schema\": ");
        let e = run(&argv(&format!("verify --file {}", path.display()))).unwrap_err();
        assert!(e.to_string().contains("JSON error at byte"), "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_rejects_wrong_schema() {
        let path = temp_file(
            "wrong.json",
            "{\n  \"schema\": \"other\",\n  \"version\": 1,\n  \"kind\": \"run\"\n}\n",
        );
        let e = run(&argv(&format!("verify --file {}", path.display()))).unwrap_err();
        assert!(e.to_string().contains("schema"), "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_subcommand_or_file_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&argv("verify")).is_err());
        assert!(run(&argv("frobnicate --file x")).is_err());
    }
}
