//! `odbgc info` — census of a trace file.

use odbgc_trace::EventKind;

use crate::commands::load_trace;
use crate::flags::Flags;
use crate::CliError;

/// Prints a census of a trace file.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let path = flags.require("trace")?;
    flags.finish()?;

    let trace = load_trace(&path)?;
    let stats = trace.stats();
    let mut out = format!(
        "{path}: {} events, {} objects created, {:.2} MB allocated, mean object {:.0} B\n",
        trace.len(),
        stats.objects_created,
        stats.bytes_allocated as f64 / 1_048_576.0,
        stats.mean_object_size(),
    );
    out.push_str("phase        creations  slot-writes   accesses\n");
    for (name, counts) in &stats.by_phase {
        let get = |k: EventKind| counts.get(&k).copied().unwrap_or(0);
        out.push_str(&format!(
            "{name:<12} {:>9}  {:>11}  {:>9}\n",
            get(EventKind::Create),
            get(EventKind::SlotWrite),
            get(EventKind::Access),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_census_of_generated_trace() {
        let dir = std::env::temp_dir().join("odbgc-cli-test-info");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.odbgc");
        crate::commands::generate::run(&[
            "--out".into(),
            path.display().to_string(),
            "--params".into(),
            "tiny".into(),
        ])
        .unwrap();
        let out = run(&["--trace".into(), path.display().to_string()]).unwrap();
        assert!(out.contains("GenDB"));
        assert!(out.contains("Traverse"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_errors() {
        let e = run(&["--trace".into(), "/nonexistent/x.odbgc".into()]).unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }
}
