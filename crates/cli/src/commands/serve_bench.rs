//! `odbgc serve-bench` — benchmark the in-process multi-session serve
//! mode: N sessions submit live operations against sharded engines, with
//! collections on a background worker and a seeded deterministic
//! scheduler.

use odbgc_sim::engine::{serve, ServeConfig, WorkloadParams};
use odbgc_sim::{RunTelemetry, SimConfig};

use crate::flags::Flags;
use crate::spec;
use crate::CliError;

/// Runs a serve-mode benchmark and reports per-shard and per-session
/// outcomes.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let policy_spec = flags.require("policy")?;
    let sessions: u32 = flags.get_or("sessions", 4)?;
    let shards: u32 = flags.get_or("shards", 2)?;
    let ops: u64 = flags.get_or("ops", 2_000)?;
    let batch: u64 = flags.get_or("batch", 8)?;
    let sched_seed: u64 = flags.get_or("sched-seed", 42)?;
    let workload_seed: u64 = flags.get_or("seed", WorkloadParams::default().seed)?;
    let store_geometry = flags.get("store");
    let telemetry_path = flags.get("telemetry");
    let gc_workers = crate::commands::parse_gc_workers(&flags)?;
    flags.finish()?;

    if sessions == 0 {
        return Err(CliError("--sessions must be at least 1".into()));
    }
    if shards == 0 || shards > sessions {
        return Err(CliError(format!(
            "--shards must be in 1..=sessions ({sessions}), got {shards}"
        )));
    }

    // Validate the spec once up front so a bad spec fails before any
    // threads spin up.
    spec::build_policy(&policy_spec)?;

    let mut engine_config = SimConfig {
        gc_workers,
        ..SimConfig::default()
    };
    match store_geometry.as_deref() {
        None | Some("tiny") => engine_config.store = odbgc_sim::store::StoreConfig::tiny(),
        Some("paper") => {}
        Some(other) => {
            return Err(CliError(format!(
                "unknown store geometry {other:?} (paper | tiny)"
            )))
        }
    }

    let config = ServeConfig {
        engine: engine_config,
        sessions,
        shards,
        ops_per_session: ops,
        batch,
        scheduler_seed: sched_seed,
        workload: WorkloadParams {
            seed: workload_seed,
            ..WorkloadParams::default()
        },
        gc_fault: None,
    };
    let wall_start = std::time::Instant::now();
    let outcome = serve(config, |_| {
        spec::build_policy(&policy_spec).expect("spec validated above")
    })
    .map_err(|e| CliError(format!("serve failed: {e}")))?;
    let wall_ns = wall_start.elapsed().as_nanos().max(1) as u64;

    let mut out = format!(
        "serve-bench: {sessions} sessions × {ops} ops on {shards} shard(s), \
         policy {policy_spec}, scheduler seed {sched_seed}\n\
         scheduled turns:   {}\n\
         per-session ops:   {}",
        outcome.schedule.len(),
        outcome
            .per_session_ops
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    );
    for (i, shard) in outcome.shards.iter().enumerate() {
        out.push_str(&format!(
            "\nshard {i}: policy {}\n\
             \x20 events applied:   {}\n\
             \x20 collections:      {}\n\
             \x20 decisions logged: {}\n\
             \x20 app I/O:          {} pages\n\
             \x20 GC I/O:           {} pages ({:.2}% of total)\n\
             \x20 garbage left:     {:.1} KiB\n\
             \x20 GC sched:         {} worker(s), {} packets over {} collections",
            shard.policy,
            shard.result.events_replayed,
            shard.result.collection_count(),
            shard.decisions.len(),
            shard.result.app_io_total,
            shard.result.gc_io_total,
            shard.result.gc_io_pct_whole_run(),
            shard.result.final_garbage_bytes as f64 / 1024.0,
            shard.gc_workers,
            shard.sched.packets,
            shard.sched.collections,
        ));
        // Wall-clock utilization is nondeterministic by nature; it prints
        // on its own "GC worker busy" line so determinism checks (the
        // test below, the CI serve-bench diff) can filter it out.
        out.push_str(&format!(
            "\n\x20 GC worker busy:   {:.3} ms ({:.1}% of wall, {} steals)",
            shard.sched.busy_ns as f64 / 1e6,
            100.0 * shard.sched.busy_ns as f64 / wall_ns as f64,
            shard.sched.steals,
        ));
    }

    if let Some(path) = &telemetry_path {
        for (i, shard) in outcome.shards.iter().enumerate() {
            let doc = RunTelemetry::from_decisions(shard.policy.clone(), shard.decisions.clone())
                .to_json()
                .to_string_pretty();
            let shard_path = shard_telemetry_path(path, i, outcome.shards.len());
            std::fs::write(&shard_path, doc)
                .map_err(|e| CliError(format!("cannot write {shard_path:?}: {e}")))?;
            out.push_str(&format!("\nshard {i} telemetry written to {shard_path}"));
        }
    }
    Ok(out)
}

/// The telemetry file of one shard: the given path verbatim for a
/// single-shard run, otherwise `name-shardN[.ext]`. Shared with
/// `odbgc serve`, which writes the same per-shard documents.
pub(crate) fn shard_telemetry_path(path: &str, shard: usize, shard_count: usize) -> String {
    if shard_count == 1 {
        return path.to_owned();
    }
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-shard{shard}.{ext}"),
        None => format!("{path}-shard{shard}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    /// Drops the wall-clock utilization lines, which legitimately vary
    /// run to run. Everything else in the report is deterministic.
    fn strip_volatile_lines(report: &str) -> String {
        report
            .lines()
            .filter(|l| !l.contains("GC worker busy"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn four_sessions_complete_deterministically() {
        let args = "--policy fixed:25 --sessions 4 --shards 2 --ops 300 --sched-seed 7";
        let a = run(&argv(args)).unwrap();
        let b = run(&argv(args)).unwrap();
        assert_eq!(
            strip_volatile_lines(&a),
            strip_volatile_lines(&b),
            "same seeds must reproduce the same report"
        );
        assert!(a.contains("per-session ops:   300, 300, 300, 300"), "{a}");
        assert!(a.contains("shard 1:"), "{a}");
        assert!(a.contains("GC sched:"), "{a}");
        assert!(a.contains("GC worker busy:"), "{a}");
    }

    #[test]
    fn gc_workers_flag_keeps_shard_results_stable() {
        let base = "--policy fixed:25 --sessions 2 --shards 2 --ops 300 --sched-seed 7";
        let a = run(&argv(base)).unwrap();
        let b = run(&argv(&format!("{base} --gc-workers 4"))).unwrap();
        // Per-shard results (I/O, collections, garbage) must be identical;
        // only the scheduler lines may differ with the worker count.
        let stable = |r: &str| {
            r.lines()
                .filter(|l| !l.contains("GC worker busy") && !l.contains("GC sched"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            stable(&a),
            stable(&b),
            "worker count must not change results"
        );
        assert!(b.contains("4 worker(s)"), "{b}");
    }

    #[test]
    fn telemetry_files_verify_per_shard() {
        let dir = std::env::temp_dir().join(format!("odbgc-serve-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.json");
        let out = run(&argv(&format!(
            "--policy saio:10% --sessions 2 --shards 2 --ops 400 --telemetry {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("telemetry written to"), "{out}");
        for shard in 0..2 {
            let shard_path = dir.join(format!("serve-shard{shard}.json"));
            let text = std::fs::read_to_string(&shard_path).unwrap();
            let doc = odbgc_sim::Json::parse(&text).expect("telemetry must parse");
            assert_eq!(odbgc_sim::verify_header(&doc).as_deref(), Ok("run"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_more_shards_than_sessions() {
        let err = run(&argv("--policy fixed:25 --sessions 2 --shards 3")).unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err}");
    }
}
