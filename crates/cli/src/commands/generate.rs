//! `odbgc generate` — write an OO7 application trace to disk.

use odbgc_oo7::Oo7App;

use crate::flags::Flags;
use crate::CliError;

/// Writes an OO7 application trace to disk.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let out = flags.require("out")?;
    let conn: u32 = flags.get_or("conn", 3)?;
    let seed: u64 = flags.get_or("seed", 1)?;
    let params_name = flags.get("params");
    let style = flags.get("style");
    flags.finish()?;

    let params = crate::spec::build_params(params_name.as_deref(), conn, style.as_deref())?;
    let (trace, chars) = Oo7App::standard(params, seed).generate();
    let text = odbgc_trace::codec::encode(&trace);
    std::fs::write(&out, &text).map_err(|e| CliError(format!("cannot write {out:?}: {e}")))?;
    Ok(format!(
        "wrote {out}: {} events, {} initial live objects, {:.2} MB live, avg object {:.0} B",
        trace.len(),
        chars.total_objects(),
        chars.total_bytes() as f64 / 1_048_576.0,
        chars.avg_object_size(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn generates_a_readable_trace_file() {
        let dir = std::env::temp_dir().join("odbgc-cli-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.odbgc");
        let out = run(&argv(&format!(
            "--out {} --params tiny --conn 2 --seed 9",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("events"));
        let trace = crate::commands::load_trace(path.to_str().unwrap()).unwrap();
        assert!(trace.len() > 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_out_flag_errors() {
        assert!(run(&argv("--conn 3"))
            .unwrap_err()
            .to_string()
            .contains("--out"));
    }
}
