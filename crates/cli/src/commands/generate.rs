//! `odbgc generate` — write an OO7 application trace to disk.

use odbgc_oo7::Oo7App;

use crate::commands::TraceFormat;
use crate::flags::Flags;
use crate::CliError;

/// Writes an OO7 application trace to disk.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let out = flags.require("out")?;
    let conn: u32 = flags.get_or("conn", 3)?;
    let seed: u64 = flags.get_or("seed", 1)?;
    let params_name = flags.get("params");
    let style = flags.get("style");
    // `--format binary|text`; default inferred from the extension
    // (`.otb` → binary, anything else → text).
    let format = match flags.get("format") {
        Some(v) => TraceFormat::parse(&v)?,
        None => TraceFormat::infer(&out),
    };
    flags.finish()?;

    let params = crate::spec::build_params(params_name.as_deref(), conn, style.as_deref())?;
    let (trace, chars) = Oo7App::standard(params, seed).generate();
    let size = crate::commands::write_trace_file(&out, &trace, format)?;
    Ok(format!(
        "wrote {out} ({}, {} bytes): {} events, {} initial live objects, {:.2} MB live, avg object {:.0} B",
        match format {
            TraceFormat::Text => "text",
            TraceFormat::Binary => "binary",
        },
        size,
        trace.len(),
        chars.total_objects(),
        chars.total_bytes() as f64 / 1_048_576.0,
        chars.avg_object_size(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn generates_a_readable_trace_file() {
        let dir = std::env::temp_dir().join("odbgc-cli-test-gen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.odbgc");
        let out = run(&argv(&format!(
            "--out {} --params tiny --conn 2 --seed 9",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("events"));
        let trace = crate::commands::load_trace(path.to_str().unwrap()).unwrap();
        assert!(trace.len() > 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn otb_extension_implies_binary_and_format_flag_overrides() {
        let dir = std::env::temp_dir().join("odbgc-cli-test-gen-fmt");
        std::fs::create_dir_all(&dir).unwrap();

        let bin_path = dir.join("t.otb");
        let out = run(&argv(&format!(
            "--out {} --params tiny --conn 2 --seed 9",
            bin_path.display()
        )))
        .unwrap();
        assert!(out.contains("binary"), "{out}");
        assert!(out.contains("bytes"), "{out}");
        let bytes = std::fs::read(&bin_path).unwrap();
        assert!(odbgc_tracefile::is_binary(&bytes));

        // Explicit --format text wins over the .otb extension.
        let txt_path = dir.join("t2.otb");
        let out = run(&argv(&format!(
            "--out {} --params tiny --conn 2 --seed 9 --format text",
            txt_path.display()
        )))
        .unwrap();
        assert!(out.contains("(text"), "{out}");
        let text = std::fs::read(&txt_path).unwrap();
        assert!(text.starts_with(b"odbgc-trace v1"));

        // Both load back to the same trace, format sniffed from content.
        let a = crate::commands::load_trace(bin_path.to_str().unwrap()).unwrap();
        let b = crate::commands::load_trace(txt_path.to_str().unwrap()).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_format_flag_errors() {
        assert!(run(&argv("--out x --format cbor"))
            .unwrap_err()
            .to_string()
            .contains("--format"));
    }

    #[test]
    fn missing_out_flag_errors() {
        assert!(run(&argv("--conn 3"))
            .unwrap_err()
            .to_string()
            .contains("--out"));
    }
}
