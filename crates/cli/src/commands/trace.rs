//! `odbgc trace` — tracefile utilities: convert, stat, verify, cat.
//!
//! All four subcommands stream binary tracefiles through
//! [`odbgc_tracefile::TraceReader`] — none of them needs the whole trace
//! in memory, so they work on corpora far larger than RAM.

use std::io::{BufReader, BufWriter, Write as _};

use odbgc_trace::{codec, Event};
use odbgc_tracefile::{TraceReader, TraceWriter};

use crate::commands::{load_trace, TraceFormat};
use crate::flags::Flags;
use crate::CliError;

/// Dispatches `odbgc trace <subcommand>`.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(CliError(
            "trace wants a subcommand: convert, stat, verify, or cat".into(),
        ));
    };
    match sub.as_str() {
        "convert" => convert(rest),
        "stat" => stat(rest),
        "verify" => verify(rest),
        "cat" => cat(rest),
        other => Err(CliError(format!(
            "unknown trace subcommand {other:?}; try convert, stat, verify, or cat"
        ))),
    }
}

fn open_binary(path: &str) -> Result<TraceReader<BufReader<std::fs::File>>, CliError> {
    let file =
        std::fs::File::open(path).map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
    TraceReader::new(BufReader::new(file)).map_err(|e| CliError(format!("{path}: {e}")))
}

/// `odbgc trace convert --in <file> --out <file> [--format binary|text]`.
///
/// The target format defaults to the output extension (`.otb` → binary).
/// Binary→text streams event by event and produces output byte-identical
/// to `codec::encode` of the same trace; text→binary round-trips through
/// the in-memory trace.
fn convert(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let input = flags.require("in")?;
    let output = flags.require("out")?;
    let format = match flags.get("format") {
        Some(v) => TraceFormat::parse(&v)?,
        None => TraceFormat::infer(&output),
    };
    flags.finish()?;

    let header = std::fs::File::open(&input)
        .and_then(|mut f| {
            use std::io::Read as _;
            let mut prefix = [0u8; 4];
            let n = f.read(&mut prefix)?;
            Ok(prefix[..n].to_vec())
        })
        .map_err(|e| CliError(format!("cannot read {input:?}: {e}")))?;

    let events = if odbgc_tracefile::is_binary(&header) {
        // Binary source: stream, never materializing the trace.
        let reader = open_binary(&input)?;
        match format {
            TraceFormat::Text => {
                let out_file = std::fs::File::create(&output)
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                let mut w = BufWriter::new(out_file);
                w.write_all(codec::encode_header(reader.phase_names()).as_bytes())
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                let mut line = String::new();
                let mut n = 0u64;
                for ev in reader {
                    let ev = ev.map_err(|e| CliError(format!("{input}: {e}")))?;
                    line.clear();
                    codec::encode_event(&mut line, &ev);
                    w.write_all(line.as_bytes())
                        .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                    n += 1;
                }
                w.flush()
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                n
            }
            TraceFormat::Binary => {
                let out_file = std::fs::File::create(&output)
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                let mut w = TraceWriter::new(BufWriter::new(out_file), reader.phase_names())
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                for ev in reader {
                    let ev = ev.map_err(|e| CliError(format!("{input}: {e}")))?;
                    w.write_event(&ev)
                        .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                }
                let n = w.events_written();
                w.finish()
                    .and_then(|mut b| b.flush().map(|_| b))
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                n
            }
        }
    } else {
        let trace = load_trace(&input)?;
        crate::commands::write_trace_file(&output, &trace, format)?;
        trace.len() as u64
    };

    let size = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "converted {input} -> {output} ({}, {events} events, {size} bytes)",
        match format {
            TraceFormat::Text => "text",
            TraceFormat::Binary => "binary",
        },
    ))
}

/// `odbgc trace stat --trace <file>` — event census and size figures.
fn stat(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let path = flags.require("trace")?;
    flags.finish()?;

    let size = std::fs::metadata(&path)
        .map(|m| m.len())
        .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
    let is_bin = {
        let mut prefix = [0u8; 4];
        use std::io::Read as _;
        std::fs::File::open(&path)
            .and_then(|mut f| f.read(&mut prefix).map(|n| (n, prefix)))
            .map(|(n, p)| odbgc_tracefile::is_binary(&p[..n]))
            .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?
    };

    let mut counts = [0u64; 6];
    let mut phases: Vec<String>;
    if is_bin {
        let reader = open_binary(&path)?;
        phases = reader.phase_names().to_vec();
        let mut tally = |ev: &Event| {
            counts[match ev {
                Event::Create { .. } => 0,
                Event::Access { .. } => 1,
                Event::SlotWrite { .. } => 2,
                Event::RootAdd { .. } => 3,
                Event::RootRemove { .. } => 4,
                Event::Phase { .. } => 5,
            }] += 1;
        };
        for ev in reader {
            tally(&ev.map_err(|e| CliError(format!("{path}: {e}")))?);
        }
    } else {
        let trace = load_trace(&path)?;
        phases = trace.phase_names().to_vec();
        for ev in trace.iter() {
            counts[match ev {
                Event::Create { .. } => 0,
                Event::Access { .. } => 1,
                Event::SlotWrite { .. } => 2,
                Event::RootAdd { .. } => 3,
                Event::RootRemove { .. } => 4,
                Event::Phase { .. } => 5,
            }] += 1;
        }
    }
    if phases.is_empty() {
        phases = vec!["(none)".into()];
    }

    let total: u64 = counts.iter().sum();
    Ok(format!(
        "{path}: {} format, {size} bytes, {total} events ({:.2} bytes/event)\n\
         creates {}, accesses {}, slot-writes {}, root-adds {}, root-removes {}, phase-marks {}\n\
         phases: {}",
        if is_bin { "binary" } else { "text" },
        if total == 0 {
            0.0
        } else {
            size as f64 / total as f64
        },
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        counts[4],
        counts[5],
        phases.join(" "),
    ))
}

/// `odbgc trace verify --trace <file>` — full streaming decode; any
/// corruption (bad magic, checksum mismatch, truncation…) is a hard error
/// with the tracefile's typed diagnosis.
fn verify(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let path = flags.require("trace")?;
    flags.finish()?;

    let mut reader = open_binary(&path)?;
    let mut n = 0u64;
    for ev in &mut reader {
        ev.map_err(|e| CliError(format!("{path}: INVALID: {e}")))?;
        n += 1;
    }
    Ok(format!(
        "{path}: OK ({n} events, {} blocks, {} phases)",
        reader.blocks_read(),
        reader.phase_names().len(),
    ))
}

/// `odbgc trace cat --trace <file> [--limit N]` — print events in the
/// text format (binary inputs are streamed; output matches `convert`).
fn cat(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let path = flags.require("trace")?;
    let limit: u64 = flags.get_or("limit", u64::MAX)?;
    flags.finish()?;

    let mut out = String::new();
    let header = {
        let mut prefix = [0u8; 4];
        use std::io::Read as _;
        std::fs::File::open(&path)
            .and_then(|mut f| f.read(&mut prefix).map(|n| prefix[..n].to_vec()))
            .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?
    };
    if odbgc_tracefile::is_binary(&header) {
        let reader = open_binary(&path)?;
        out.push_str(&codec::encode_header(reader.phase_names()));
        for (i, ev) in reader.enumerate() {
            if (i as u64) >= limit {
                out.push_str("…\n");
                break;
            }
            let ev = ev.map_err(|e| CliError(format!("{path}: {e}")))?;
            codec::encode_event(&mut out, &ev);
        }
    } else {
        let trace = load_trace(&path)?;
        out.push_str(&codec::encode_header(trace.phase_names()));
        for (i, ev) in trace.iter().enumerate() {
            if (i as u64) >= limit {
                out.push_str("…\n");
                break;
            }
            codec::encode_event(&mut out, ev);
        }
    }
    // Trim the trailing newline: dispatch prints the result with its own.
    if out.ends_with('\n') {
        out.pop();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "odbgc-cli-test-trace-{name}-{}",
                std::process::id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn generate(dir: &std::path::Path, name: &str) -> String {
        let path = dir.join(name);
        crate::commands::generate::run(&argv(&format!(
            "--out {} --params tiny --conn 2 --seed 5",
            path.display()
        )))
        .unwrap();
        path.display().to_string()
    }

    #[test]
    fn convert_round_trip_is_byte_identical() {
        let tmp = TempDir::new("roundtrip");
        let bin = generate(&tmp.0, "t.otb");
        let txt = tmp.0.join("t.txt").display().to_string();
        let bin2 = tmp.0.join("t2.otb").display().to_string();

        run(&argv(&format!("convert --in {bin} --out {txt}"))).unwrap();
        run(&argv(&format!("convert --in {txt} --out {bin2}"))).unwrap();
        assert_eq!(
            std::fs::read(&bin).unwrap(),
            std::fs::read(&bin2).unwrap(),
            "binary -> text -> binary must reproduce the file exactly"
        );

        // The streamed text equals the in-memory codec's output.
        let trace = load_trace(&bin).unwrap();
        assert_eq!(
            std::fs::read_to_string(&txt).unwrap(),
            codec::encode(&trace)
        );
    }

    #[test]
    fn verify_accepts_good_and_rejects_damaged() {
        let tmp = TempDir::new("verify");
        let bin = generate(&tmp.0, "t.otb");
        let ok = run(&argv(&format!("verify --trace {bin}"))).unwrap();
        assert!(ok.contains("OK"), "{ok}");

        let mut bytes = std::fs::read(&bin).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let bad = tmp.0.join("bad.otb");
        std::fs::write(&bad, &bytes).unwrap();
        let err = run(&argv(&format!("verify --trace {}", bad.display()))).unwrap_err();
        assert!(err.to_string().contains("INVALID"), "{err}");
    }

    #[test]
    fn stat_counts_events() {
        let tmp = TempDir::new("stat");
        let bin = generate(&tmp.0, "t.otb");
        let out = run(&argv(&format!("stat --trace {bin}"))).unwrap();
        assert!(out.contains("binary format"), "{out}");
        assert!(out.contains("creates"), "{out}");

        // The text twin reports the same census.
        let txt = tmp.0.join("t.txt").display().to_string();
        run(&argv(&format!("convert --in {bin} --out {txt}"))).unwrap();
        let out_txt = run(&argv(&format!("stat --trace {txt}"))).unwrap();
        let census = |s: &str| s.lines().nth(1).unwrap().to_owned();
        assert_eq!(census(&out), census(&out_txt));
    }

    #[test]
    fn cat_limit_truncates() {
        let tmp = TempDir::new("cat");
        let bin = generate(&tmp.0, "t.otb");
        let out = run(&argv(&format!("cat --trace {bin} --limit 3"))).unwrap();
        assert!(out.ends_with('…'), "{out:?}");
        // header + maybe phases line + 3 events + ellipsis.
        assert!(out.lines().count() <= 6, "{out}");
        assert!(out.starts_with("odbgc-trace v1"), "{out}");
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&[]).is_err());
    }
}
