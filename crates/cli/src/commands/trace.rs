//! `odbgc trace` — tracefile utilities: convert, stat, verify, cat.
//!
//! All four subcommands process binary tracefiles block by block — none
//! of them holds more than one decoded block (plus a reusable text
//! buffer) in memory, so they work on corpora far larger than RAM.
//! `stat`, `verify`, and `cat` additionally accept `--mmap true` to read
//! through a read-only memory map instead of buffered I/O (heap usage is
//! still one block either way; see `odbgc_tracefile::mmap` for the
//! safety argument and fallback conditions).

use std::io::{BufReader, BufWriter, Write as _};

use odbgc_trace::{codec, Event};
use odbgc_tracefile::{
    BatchReader, DecodeError, FileBatches, ReadBlocks, TraceReader, TraceWriter,
};

use crate::commands::{load_trace, TraceFormat};
use crate::flags::Flags;
use crate::CliError;

/// A batched block reader over either backing: buffered streaming I/O or
/// a read-only memory map. One decoded block resident at a time in both.
enum AnyBatches {
    Stream(BatchReader<ReadBlocks<BufReader<std::fs::File>>>),
    Mapped(FileBatches),
}

impl AnyBatches {
    /// Opens `path`, mapping it when `mmap` is set.
    fn open(path: &str, mmap: bool) -> Result<Self, CliError> {
        if mmap {
            odbgc_tracefile::open_batches(std::path::Path::new(path))
                .map(AnyBatches::Mapped)
                .map_err(|e| match e {
                    DecodeError::Io(e) => CliError(format!("cannot read {path:?}: {e}")),
                    e => CliError(format!("{path}: {e}")),
                })
        } else {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
            ReadBlocks::new(BufReader::new(file))
                .and_then(BatchReader::new)
                .map(AnyBatches::Stream)
                .map_err(|e| CliError(format!("{path}: {e}")))
        }
    }

    fn phase_names(&self) -> &[String] {
        match self {
            AnyBatches::Stream(r) => r.phase_names(),
            AnyBatches::Mapped(r) => r.phase_names(),
        }
    }

    fn next_batch(&mut self) -> Result<Option<&[Event]>, DecodeError> {
        match self {
            AnyBatches::Stream(r) => r.next_batch(),
            AnyBatches::Mapped(r) => r.next_batch(),
        }
    }

    fn events_read(&self) -> u64 {
        match self {
            AnyBatches::Stream(r) => r.events_read(),
            AnyBatches::Mapped(r) => r.events_read(),
        }
    }

    fn blocks_read(&self) -> u64 {
        match self {
            AnyBatches::Stream(r) => r.blocks_read(),
            AnyBatches::Mapped(r) => r.blocks_read(),
        }
    }
}

/// The shared `--mmap true|false` flag (default: buffered streaming).
fn mmap_flag(flags: &Flags) -> Result<bool, CliError> {
    flags.get_or("mmap", false)
}

/// Dispatches `odbgc trace <subcommand>`.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(CliError(
            "trace wants a subcommand: convert, stat, verify, or cat".into(),
        ));
    };
    match sub.as_str() {
        "convert" => convert(rest),
        "stat" => stat(rest),
        "verify" => verify(rest),
        "cat" => cat(rest),
        other => Err(CliError(format!(
            "unknown trace subcommand {other:?}; try convert, stat, verify, or cat"
        ))),
    }
}

fn open_binary(path: &str) -> Result<TraceReader<BufReader<std::fs::File>>, CliError> {
    let file =
        std::fs::File::open(path).map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
    TraceReader::new(BufReader::new(file)).map_err(|e| CliError(format!("{path}: {e}")))
}

/// `odbgc trace convert --in <file> --out <file> [--format binary|text]`.
///
/// The target format defaults to the output extension (`.otb` → binary).
/// Binary→text streams event by event and produces output byte-identical
/// to `codec::encode` of the same trace; text→binary round-trips through
/// the in-memory trace.
fn convert(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let input = flags.require("in")?;
    let output = flags.require("out")?;
    let format = match flags.get("format") {
        Some(v) => TraceFormat::parse(&v)?,
        None => TraceFormat::infer(&output),
    };
    flags.finish()?;

    let header = std::fs::File::open(&input)
        .and_then(|mut f| {
            use std::io::Read as _;
            let mut prefix = [0u8; 4];
            let n = f.read(&mut prefix)?;
            Ok(prefix[..n].to_vec())
        })
        .map_err(|e| CliError(format!("cannot read {input:?}: {e}")))?;

    let events = if odbgc_tracefile::is_binary(&header) {
        // Binary source: stream, never materializing the trace.
        let reader = open_binary(&input)?;
        match format {
            TraceFormat::Text => {
                let out_file = std::fs::File::create(&output)
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                let mut w = BufWriter::new(out_file);
                w.write_all(codec::encode_header(reader.phase_names()).as_bytes())
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                let mut line = String::new();
                let mut n = 0u64;
                for ev in reader {
                    let ev = ev.map_err(|e| CliError(format!("{input}: {e}")))?;
                    line.clear();
                    codec::encode_event(&mut line, &ev);
                    w.write_all(line.as_bytes())
                        .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                    n += 1;
                }
                w.flush()
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                n
            }
            TraceFormat::Binary => {
                let out_file = std::fs::File::create(&output)
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                let mut w = TraceWriter::new(BufWriter::new(out_file), reader.phase_names())
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                for ev in reader {
                    let ev = ev.map_err(|e| CliError(format!("{input}: {e}")))?;
                    w.write_event(&ev)
                        .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                }
                let n = w.events_written();
                w.finish()
                    .and_then(|mut b| b.flush().map(|_| b))
                    .map_err(|e| CliError(format!("cannot write {output:?}: {e}")))?;
                n
            }
        }
    } else {
        let trace = load_trace(&input)?;
        crate::commands::write_trace_file(&output, &trace, format)?;
        trace.len() as u64
    };

    let size = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "converted {input} -> {output} ({}, {events} events, {size} bytes)",
        match format {
            TraceFormat::Text => "text",
            TraceFormat::Binary => "binary",
        },
    ))
}

/// Event-kind census bucket index.
fn bucket(ev: &Event) -> usize {
    match ev {
        Event::Create { .. } => 0,
        Event::Access { .. } => 1,
        Event::SlotWrite { .. } => 2,
        Event::RootAdd { .. } => 3,
        Event::RootRemove { .. } => 4,
        Event::Phase { .. } => 5,
    }
}

/// `odbgc trace stat --trace <file> [--mmap true]` — event census and
/// size figures, block-at-a-time.
fn stat(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let path = flags.require("trace")?;
    let mmap = mmap_flag(&flags)?;
    flags.finish()?;

    let size = std::fs::metadata(&path)
        .map(|m| m.len())
        .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
    let is_bin = {
        let mut prefix = [0u8; 4];
        use std::io::Read as _;
        std::fs::File::open(&path)
            .and_then(|mut f| f.read(&mut prefix).map(|n| (n, prefix)))
            .map(|(n, p)| odbgc_tracefile::is_binary(&p[..n]))
            .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?
    };

    let mut counts = [0u64; 6];
    let mut phases: Vec<String>;
    if is_bin {
        let mut reader = AnyBatches::open(&path, mmap)?;
        loop {
            match reader.next_batch() {
                Ok(Some(batch)) => {
                    for ev in batch {
                        counts[bucket(ev)] += 1;
                    }
                }
                Ok(None) => break,
                Err(e) => return Err(CliError(format!("{path}: {e}"))),
            }
        }
        phases = reader.phase_names().to_vec();
    } else {
        let trace = load_trace(&path)?;
        phases = trace.phase_names().to_vec();
        for ev in trace.iter() {
            counts[bucket(ev)] += 1;
        }
    }
    if phases.is_empty() {
        phases = vec!["(none)".into()];
    }

    let total: u64 = counts.iter().sum();
    Ok(format!(
        "{path}: {} format, {size} bytes, {total} events ({:.2} bytes/event)\n\
         creates {}, accesses {}, slot-writes {}, root-adds {}, root-removes {}, phase-marks {}\n\
         phases: {}",
        if is_bin { "binary" } else { "text" },
        if total == 0 {
            0.0
        } else {
            size as f64 / total as f64
        },
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        counts[4],
        counts[5],
        phases.join(" "),
    ))
}

/// `odbgc trace verify --trace <file> [--mmap true]` — full decode,
/// block-at-a-time; any corruption (bad magic, checksum mismatch,
/// truncation…) is a hard error with the tracefile's typed diagnosis.
fn verify(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let path = flags.require("trace")?;
    let mmap = mmap_flag(&flags)?;
    flags.finish()?;

    let mut reader = AnyBatches::open(&path, mmap)?;
    loop {
        match reader.next_batch() {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => return Err(CliError(format!("{path}: INVALID: {e}"))),
        }
    }
    Ok(format!(
        "{path}: OK ({} events, {} blocks, {} phases)",
        reader.events_read(),
        reader.blocks_read(),
        reader.phase_names().len(),
    ))
}

/// Writes newline-terminated text chunks, withholding the final newline:
/// the dispatch layer prints the command result with its own `writeln!`,
/// so total output stays byte-identical to the old build-a-`String` cat
/// while peak memory stays one chunk.
struct ChunkWriter<W: std::io::Write> {
    out: W,
    owed_newline: bool,
}

impl<W: std::io::Write> ChunkWriter<W> {
    fn chunk(&mut self, s: &str) -> std::io::Result<()> {
        if s.is_empty() {
            return Ok(());
        }
        if self.owed_newline {
            self.out.write_all(b"\n")?;
        }
        match s.strip_suffix('\n') {
            Some(stripped) => {
                self.out.write_all(stripped.as_bytes())?;
                self.owed_newline = true;
            }
            None => {
                self.out.write_all(s.as_bytes())?;
                self.owed_newline = false;
            }
        }
        Ok(())
    }
}

/// What a streaming cat did, for tests: how many events were printed and
/// the reusable text buffer's final capacity (its peak — `String` growth
/// is monotone), which bounded-allocation tests compare against the
/// whole file's size.
#[cfg_attr(not(test), allow(dead_code))]
struct CatStats {
    events: u64,
    peak_buf_bytes: usize,
}

/// Streams a binary tracefile as text into `out`, one block at a time:
/// resident state is the reader's single decoded block plus one reused
/// text buffer, never the whole file.
fn cat_batches<W: std::io::Write>(
    path: &str,
    mut reader: AnyBatches,
    limit: u64,
    out: W,
) -> Result<CatStats, CliError> {
    let write_err = |e: std::io::Error| CliError(format!("cannot write output: {e}"));
    let mut w = ChunkWriter {
        out,
        owed_newline: false,
    };
    w.chunk(&codec::encode_header(reader.phase_names()))
        .map_err(write_err)?;
    let mut buf = String::new();
    let mut n = 0u64;
    let mut truncated = false;
    while !truncated {
        let batch = match reader.next_batch() {
            Ok(Some(batch)) => batch,
            Ok(None) => break,
            Err(e) => return Err(CliError(format!("{path}: {e}"))),
        };
        buf.clear();
        for ev in batch {
            if n >= limit {
                buf.push_str("…\n");
                truncated = true;
                break;
            }
            codec::encode_event(&mut buf, ev);
            n += 1;
        }
        w.chunk(&buf).map_err(write_err)?;
    }
    w.out.flush().map_err(write_err)?;
    Ok(CatStats {
        events: n,
        peak_buf_bytes: buf.capacity(),
    })
}

/// `odbgc trace cat --trace <file> [--limit N] [--mmap true]` — print
/// events in the text format. Binary inputs stream block by block
/// straight to stdout (output matches `convert`); text inputs are small
/// enough to round-trip in memory.
fn cat(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let path = flags.require("trace")?;
    let limit: u64 = flags.get_or("limit", u64::MAX)?;
    let mmap = mmap_flag(&flags)?;
    flags.finish()?;

    let header = {
        let mut prefix = [0u8; 4];
        use std::io::Read as _;
        std::fs::File::open(&path)
            .and_then(|mut f| f.read(&mut prefix).map(|n| prefix[..n].to_vec()))
            .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?
    };
    if odbgc_tracefile::is_binary(&header) {
        let reader = AnyBatches::open(&path, mmap)?;
        let stdout = std::io::stdout();
        cat_batches(&path, reader, limit, BufWriter::new(stdout.lock()))?;
        // Everything but the final newline is already on stdout; the
        // dispatch layer's `writeln!` supplies that newline.
        return Ok(String::new());
    }
    let trace = load_trace(&path)?;
    let mut out = String::new();
    out.push_str(&codec::encode_header(trace.phase_names()));
    for (i, ev) in trace.iter().enumerate() {
        if (i as u64) >= limit {
            out.push_str("…\n");
            break;
        }
        codec::encode_event(&mut out, ev);
    }
    // Trim the trailing newline: dispatch prints the result with its own.
    if out.ends_with('\n') {
        out.pop();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "odbgc-cli-test-trace-{name}-{}",
                std::process::id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn generate(dir: &std::path::Path, name: &str) -> String {
        let path = dir.join(name);
        crate::commands::generate::run(&argv(&format!(
            "--out {} --params tiny --conn 2 --seed 5",
            path.display()
        )))
        .unwrap();
        path.display().to_string()
    }

    #[test]
    fn convert_round_trip_is_byte_identical() {
        let tmp = TempDir::new("roundtrip");
        let bin = generate(&tmp.0, "t.otb");
        let txt = tmp.0.join("t.txt").display().to_string();
        let bin2 = tmp.0.join("t2.otb").display().to_string();

        run(&argv(&format!("convert --in {bin} --out {txt}"))).unwrap();
        run(&argv(&format!("convert --in {txt} --out {bin2}"))).unwrap();
        assert_eq!(
            std::fs::read(&bin).unwrap(),
            std::fs::read(&bin2).unwrap(),
            "binary -> text -> binary must reproduce the file exactly"
        );

        // The streamed text equals the in-memory codec's output.
        let trace = load_trace(&bin).unwrap();
        assert_eq!(
            std::fs::read_to_string(&txt).unwrap(),
            codec::encode(&trace)
        );
    }

    #[test]
    fn verify_accepts_good_and_rejects_damaged() {
        let tmp = TempDir::new("verify");
        let bin = generate(&tmp.0, "t.otb");
        let ok = run(&argv(&format!("verify --trace {bin}"))).unwrap();
        assert!(ok.contains("OK"), "{ok}");

        let mut bytes = std::fs::read(&bin).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let bad = tmp.0.join("bad.otb");
        std::fs::write(&bad, &bytes).unwrap();
        let err = run(&argv(&format!("verify --trace {}", bad.display()))).unwrap_err();
        assert!(err.to_string().contains("INVALID"), "{err}");
    }

    #[test]
    fn stat_counts_events() {
        let tmp = TempDir::new("stat");
        let bin = generate(&tmp.0, "t.otb");
        let out = run(&argv(&format!("stat --trace {bin}"))).unwrap();
        assert!(out.contains("binary format"), "{out}");
        assert!(out.contains("creates"), "{out}");

        // The text twin reports the same census.
        let txt = tmp.0.join("t.txt").display().to_string();
        run(&argv(&format!("convert --in {bin} --out {txt}"))).unwrap();
        let out_txt = run(&argv(&format!("stat --trace {txt}"))).unwrap();
        let census = |s: &str| s.lines().nth(1).unwrap().to_owned();
        assert_eq!(census(&out), census(&out_txt));
    }

    /// Runs the streaming cat into a buffer and returns (text, stats).
    fn cat_to_string(path: &str, limit: u64, mmap: bool) -> (String, CatStats) {
        let reader = AnyBatches::open(path, mmap).unwrap();
        let mut out = Vec::new();
        let stats = cat_batches(path, reader, limit, &mut out).unwrap();
        (String::from_utf8(out).unwrap(), stats)
    }

    #[test]
    fn cat_limit_truncates() {
        let tmp = TempDir::new("cat");
        let bin = generate(&tmp.0, "t.otb");
        let (out, stats) = cat_to_string(&bin, 3, false);
        assert!(out.ends_with('…'), "{out:?}");
        // header + maybe phases line + 3 events + ellipsis.
        assert!(out.lines().count() <= 6, "{out}");
        assert!(out.starts_with("odbgc-trace v1"), "{out}");
        assert_eq!(stats.events, 3);
        // The dispatch path streams to stdout and returns nothing.
        let dispatched = run(&argv(&format!("cat --trace {bin} --limit 3"))).unwrap();
        assert_eq!(dispatched, "");
    }

    #[test]
    fn cat_stream_matches_codec_and_mmap_matches_stream() {
        let tmp = TempDir::new("cat-eq");
        let bin = generate(&tmp.0, "t.otb");
        let trace = load_trace(&bin).unwrap();
        let mut expected = codec::encode(&trace);
        // cat withholds the final newline for the dispatch layer.
        assert_eq!(expected.pop(), Some('\n'));
        let (streamed, _) = cat_to_string(&bin, u64::MAX, false);
        let (mapped, _) = cat_to_string(&bin, u64::MAX, true);
        assert_eq!(streamed, expected);
        assert_eq!(mapped, expected);
    }

    #[test]
    fn cat_peak_allocation_is_bounded_by_blocks_not_file_size() {
        // A trace big enough to span > 3 event blocks (32 KiB payload
        // target each): the streaming cat's reusable text buffer must
        // stay around one block's worth of text, far below the whole
        // file — the block-reuse assertion for the strictly-streaming
        // guarantee.
        let tmp = TempDir::new("cat-bounded");
        let path = tmp.0.join("big.otb");
        let trace = odbgc_trace::synthetic::linear_chain(30_000, 64, None);
        crate::commands::write_trace_file(&path.display().to_string(), &trace, TraceFormat::Binary)
            .unwrap();
        let file_size = std::fs::metadata(&path).unwrap().len() as usize;

        let mut reader = AnyBatches::open(&path.display().to_string(), false).unwrap();
        let mut blocks = 0u64;
        while reader.next_batch().unwrap().is_some() {
            blocks += 1;
        }
        assert!(blocks > 3, "want a >3-block trace, got {blocks} blocks");

        for mmap in [false, true] {
            let (text, stats) = cat_to_string(&path.display().to_string(), u64::MAX, mmap);
            assert_eq!(stats.events, trace.len() as u64);
            assert!(
                stats.peak_buf_bytes < text.len() / 2,
                "peak text buffer {} B must stay well under the {} B output \
                 (mmap={mmap}): the buffer is reused per block, not grown per file",
                stats.peak_buf_bytes,
                text.len()
            );
            assert!(file_size > 3 * 32 * 1024, "file spans >3 blocks");
        }
    }

    #[test]
    fn stat_and_verify_mmap_match_streaming() {
        let tmp = TempDir::new("mmap-parity");
        let bin = generate(&tmp.0, "t.otb");
        let stat_stream = run(&argv(&format!("stat --trace {bin}"))).unwrap();
        let stat_mapped = run(&argv(&format!("stat --trace {bin} --mmap true"))).unwrap();
        assert_eq!(stat_stream, stat_mapped);
        let verify_stream = run(&argv(&format!("verify --trace {bin}"))).unwrap();
        let verify_mapped = run(&argv(&format!("verify --trace {bin} --mmap true"))).unwrap();
        assert_eq!(verify_stream, verify_mapped);
        assert!(verify_mapped.contains("OK"), "{verify_mapped}");

        // Damage is diagnosed identically through the map.
        let mut bytes = std::fs::read(&bin).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let bad = tmp.0.join("bad.otb").display().to_string();
        std::fs::write(&bad, &bytes).unwrap();
        let err_stream = run(&argv(&format!("verify --trace {bad}")))
            .unwrap_err()
            .to_string();
        let err_mapped = run(&argv(&format!("verify --trace {bad} --mmap true")))
            .unwrap_err()
            .to_string();
        assert_eq!(err_stream, err_mapped);
        assert!(err_mapped.contains("INVALID"), "{err_mapped}");
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&[]).is_err());
    }
}
