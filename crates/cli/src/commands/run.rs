//! `odbgc run` — simulate one policy over a trace.

use odbgc_oo7::Oo7App;
use odbgc_sim::{run_single, ReplayOptions, RunTelemetry, SimConfig, Simulator};

use crate::commands::{load_trace, parse_gc_workers};
use crate::flags::Flags;
use crate::spec;
use crate::CliError;

/// Simulates one policy over a trace and reports the outcome.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    let policy_spec = flags.require("policy")?;
    let trace_path = flags.get("trace");
    let conn: u32 = flags.get_or("conn", 3)?;
    let seed: u64 = flags.get_or("seed", 1)?;
    let params_name = flags.get("params");
    let style = flags.get("style");
    let selector = flags.get("selector");
    let series_path = flags.get("series");
    let telemetry_path = flags.get("telemetry");
    let preamble: u64 = flags.get_or("preamble", 10)?;
    let store_geometry = flags.get("store");
    let mmap: bool = flags.get_or("mmap", false)?;
    let gc_workers = parse_gc_workers(&flags)?;
    flags.finish()?;

    // With `--mmap true` a binary tracefile is replayed straight off a
    // read-only memory map in decoded-block batches — the whole trace is
    // never materialized in memory. The RunResult is identical to the
    // in-memory path (see the sim crate's equivalence tests and the CI
    // smoke diff).
    let mapped_path = match (&trace_path, mmap) {
        (Some(path), true) => Some(path.clone()),
        (None, true) => {
            return Err(CliError(
                "--mmap true needs --trace <file.otb> (a binary tracefile)".into(),
            ))
        }
        _ => None,
    };
    let trace = match (&trace_path, &mapped_path) {
        (_, Some(_)) => None,
        (Some(path), None) => Some(load_trace(path)?),
        (None, None) => {
            let params = spec::build_params(params_name.as_deref(), conn, style.as_deref())?;
            Some(Oo7App::standard(params, seed).generate().0)
        }
    };

    let mut config = SimConfig {
        preamble_collections: preamble,
        gc_workers,
        ..SimConfig::default()
    };
    match store_geometry.as_deref() {
        None | Some("paper") => {}
        Some("tiny") => config.store = odbgc_sim::store::StoreConfig::tiny(),
        Some(other) => {
            return Err(CliError(format!(
                "unknown store geometry {other:?} (paper | tiny)"
            )))
        }
    }
    if let Some(sel) = selector {
        config.selector = spec::parse_selector(&sel)?;
        config.selector_seed = seed;
    }
    let mut policy = spec::build_policy(&policy_spec)?;
    let result = match (&mapped_path, &telemetry_path) {
        (Some(trace_file), telemetry_path) => {
            let reader = odbgc_tracefile::open_batches(std::path::Path::new(trace_file))
                .map_err(|e| CliError(format!("{trace_file}: {e}")))?;
            let sim = Simulator::new(config.clone());
            let fail = |e: odbgc_sim::ReplayError<odbgc_tracefile::DecodeError>| {
                CliError(format!("simulation failed: {e}"))
            };
            match telemetry_path {
                None => sim
                    .replay_batched(reader, policy.as_mut(), ReplayOptions::new())
                    .map_err(fail)?,
                Some(path) => {
                    let mut telemetry = RunTelemetry::new(policy.name());
                    let result = sim
                        .replay_batched(
                            reader,
                            policy.as_mut(),
                            ReplayOptions::new().telemetry(&mut telemetry),
                        )
                        .map_err(fail)?;
                    let json = telemetry.to_json().to_string_pretty();
                    std::fs::write(path, json)
                        .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
                    result
                }
            }
        }
        (None, None) => {
            let trace = trace.as_ref().expect("in-memory path has a trace");
            run_single(trace, &config, policy.as_mut())
                .map_err(|e| CliError(format!("simulation failed: {e}")))?
        }
        (None, Some(path)) => {
            // The instrumented path produces the exact same RunResult;
            // the telemetry sink is a pure observer (see sim tests).
            let trace = trace.as_ref().expect("in-memory path has a trace");
            let mut telemetry = RunTelemetry::new(policy.name());
            let result = Simulator::new(config.clone())
                .replay(
                    trace,
                    policy.as_mut(),
                    ReplayOptions::new().telemetry(&mut telemetry),
                )
                .map_err(odbgc_sim::ReplayError::into_sim)
                .map_err(|e| CliError(format!("simulation failed: {e}")))?;
            let json = telemetry.to_json().to_string_pretty();
            std::fs::write(path, json)
                .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
            result
        }
    };

    if let Some(path) = series_path {
        let mut csv = String::from(
            "collection,clock,interval_overwrites,app_io,gc_io,bytes_reclaimed,partition,db_size,actual_garbage\n",
        );
        for c in &result.collections {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                c.index,
                c.clock,
                c.interval_overwrites,
                c.app_io_since_prev,
                c.gc_io,
                c.bytes_reclaimed,
                c.partition,
                c.db_size,
                c.actual_garbage,
            ));
        }
        std::fs::write(&path, csv).map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
    }

    let fmt_opt = |v: Option<f64>| match v {
        Some(v) => format!("{v:.2}%"),
        None => "n/a (run shorter than preamble)".to_owned(),
    };
    let mut out = format!(
        "policy:            {}\n\
         events replayed:   {}\n\
         collections:       {}\n\
         app I/O:           {} pages\n\
         GC I/O:            {} pages ({:.2}% of total)\n\
         achieved GC-I/O:   {} (measured window)\n\
         mean garbage:      {} (measured window)\n\
         garbage generated: {:.1} KiB\n\
         garbage collected: {:.1} KiB\n\
         garbage remaining: {:.1} KiB\n\
         final DB size:     {:.2} MB in {} partitions",
        policy.name(),
        result.events_replayed,
        result.collection_count(),
        result.app_io_total,
        result.gc_io_total,
        result.gc_io_pct_whole_run(),
        fmt_opt(result.gc_io_pct),
        fmt_opt(result.garbage_pct_mean),
        result.total_garbage_generated as f64 / 1024.0,
        result.total_garbage_collected as f64 / 1024.0,
        result.final_garbage_bytes as f64 / 1024.0,
        result.final_db_size as f64 / 1_048_576.0,
        result.partition_count,
    );
    if let Some(path) = &telemetry_path {
        out.push_str(&format!("\ntelemetry written to {path}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn runs_generated_workload_inline() {
        let out = run(&argv(
            "--policy saio:10% --params tiny --conn 2 --preamble 2",
        ))
        .unwrap();
        assert!(out.contains("saio(10.0%"));
        assert!(out.contains("collections:"));
    }

    #[test]
    fn writes_series_csv() {
        let dir = std::env::temp_dir().join("odbgc-cli-test-run");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("series.csv");
        run(&argv(&format!(
            "--policy fixed:25 --params tiny --series {}",
            csv.display()
        )))
        .unwrap();
        let text = std::fs::read_to_string(&csv).unwrap();
        assert!(text.starts_with("collection,clock"));
        assert!(text.lines().count() > 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_flag_writes_verifiable_json() {
        let dir =
            std::env::temp_dir().join(format!("odbgc-cli-test-run-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.json");
        let out = run(&argv(&format!(
            "--policy saio:10% --params tiny --store tiny --preamble 2 --telemetry {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("telemetry written to"));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = odbgc_sim::Json::parse(&text).expect("telemetry must parse");
        assert_eq!(odbgc_sim::verify_header(&doc).as_deref(), Ok("run"));
        // The decision log length matches the reported collection count.
        let colls: u64 = out
            .lines()
            .find(|l| l.starts_with("collections:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(
            doc.get("decision_count").and_then(odbgc_sim::Json::as_u64),
            Some(colls)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn telemetry_run_result_matches_plain_run() {
        let dir =
            std::env::temp_dir().join(format!("odbgc-cli-test-run-tel-eq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.json");
        let plain = run(&argv(
            "--policy saio:10% --params tiny --store tiny --preamble 2",
        ))
        .unwrap();
        let instrumented = run(&argv(&format!(
            "--policy saio:10% --params tiny --store tiny --preamble 2 --telemetry {}",
            path.display()
        )))
        .unwrap();
        // Identical report modulo the trailing "telemetry written" line.
        let stripped = instrumented
            .lines()
            .filter(|l| !l.starts_with("telemetry written"))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(plain, stripped);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_replay_report_matches_in_memory() {
        let dir =
            std::env::temp_dir().join(format!("odbgc-cli-test-run-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.otb");
        crate::commands::generate::run(&argv(&format!(
            "--out {} --params tiny --conn 2 --seed 5",
            path.display()
        )))
        .unwrap();
        let in_memory = run(&argv(&format!(
            "--policy saio:10% --store tiny --preamble 2 --trace {}",
            path.display()
        )))
        .unwrap();
        let mapped = run(&argv(&format!(
            "--policy saio:10% --store tiny --preamble 2 --trace {} --mmap true",
            path.display()
        )))
        .unwrap();
        assert_eq!(in_memory, mapped, "mmap replay must not change the report");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_without_trace_errors() {
        let err = run(&argv("--policy saio:10% --params tiny --mmap true")).unwrap_err();
        assert!(err.to_string().contains("--trace"), "{err}");
    }

    #[test]
    fn selector_flag_is_honored() {
        let out = run(&argv(
            "--policy fixed:25 --params tiny --selector random --seed 3",
        ))
        .unwrap();
        assert!(out.contains("collections:"));
    }

    #[test]
    fn bad_policy_spec_errors() {
        assert!(run(&argv("--policy warp:9 --params tiny")).is_err());
    }

    #[test]
    fn tiny_store_geometry_enables_tiny_workloads() {
        let out = run(&argv(
            "--policy saio:10% --params tiny --store tiny --preamble 2",
        ))
        .unwrap();
        assert!(out.contains("collections:"));
        // With matching geometry the tiny workload actually collects.
        let colls: u64 = out
            .lines()
            .find(|l| l.starts_with("collections:"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(colls > 0, "tiny geometry should trigger collections");
    }

    #[test]
    fn unknown_store_geometry_errors() {
        assert!(run(&argv("--policy saio:10% --store huge")).is_err());
    }

    #[test]
    fn gc_workers_flag_never_changes_the_report() {
        let base = run(&argv(
            "--policy saio:10% --params tiny --store tiny --preamble 2",
        ))
        .unwrap();
        let parallel = run(&argv(
            "--policy saio:10% --params tiny --store tiny --preamble 2 --gc-workers 4",
        ))
        .unwrap();
        assert_eq!(base, parallel, "worker count must not change results");
    }

    #[test]
    fn zero_gc_workers_errors() {
        let err = run(&argv("--policy saio:10% --params tiny --gc-workers 0")).unwrap_err();
        assert!(err.to_string().contains("gc-workers"), "{err}");
    }
}
