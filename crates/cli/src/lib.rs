//! `odbgc` — command-line driver for the collection-rate simulator.
//!
//! ```text
//! odbgc generate --conn 3 --seed 1 --out trace.odbgc     # write an OO7 trace
//! odbgc info --trace trace.odbgc                          # census of a trace
//! odbgc run --trace trace.odbgc --policy saio:10%         # simulate one policy
//! odbgc run --conn 3 --seed 1 --policy saga:10%:fgs-hb    # generate + simulate
//! odbgc sweep --policy saio --points 2,5,10,20 --seeds 1..10 --csv out.csv
//! ```
//!
//! Policy specs:
//!
//! | Spec | Policy |
//! |---|---|
//! | `saio:10%` | SAIO at 10% requested GC-I/O share (`c_hist = 0`) |
//! | `saio:10%:hist=4` / `hist=inf` | SAIO with a history window |
//! | `saga:5%` / `saga:5%:oracle` | SAGA at 5% garbage, oracle estimator |
//! | `saga:5%:fgs-hb` / `saga:5%:fgs-hb@0.5` | SAGA with FGS/HB (history factor) |
//! | `saga:5%:cgs-cb` | SAGA with CGS/CB |
//! | `fixed:200` | collect every 200 pointer overwrites |
//! | `alloc:98304` | collect every 96 KiB allocated |
//! | `coupled:10%:floor=5%[:stretch=X]` | SAIO stretched when garbage < floor |
//! | `quiescent:idle=N:<spec>` | any policy + opportunistic idle collection |
//!
//! The grammar lives in `odbgc_core::spec` ([`odbgc_core::PolicySpec`]):
//! specs are data, parse/`Display` round-trip, and sweeps execute them as
//! an `ExperimentPlan` on a worker pool sized by `--jobs` (or the
//! `ODBGC_JOBS` environment variable, default: all cores).
//!
//! Everything is deterministic in `--seed`, whatever the worker count.

#![warn(missing_docs)]

pub mod commands;
pub mod flags;
pub mod spec;

/// A user-facing CLI failure (bad arguments, bad spec, I/O trouble).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("I/O error: {e}"))
    }
}

/// Dispatches a full argument vector (excluding the program name).
/// Returns the text to print on success.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(usage());
    };
    match cmd.as_str() {
        "generate" => commands::generate::run(rest),
        "info" => commands::info::run(rest),
        "run" => commands::run::run(rest),
        "serve" => commands::serve::run(rest),
        "client" => commands::client::run(rest),
        "serve-bench" => commands::serve_bench::run(rest),
        "sweep" => commands::sweep::run(rest),
        "telemetry" => commands::telemetry::run(rest),
        "trace" => commands::trace::run(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError(format!(
            "unknown command {other:?}; try `odbgc help`"
        ))),
    }
}

/// The top-level usage text.
pub fn usage() -> String {
    "\
odbgc — self-adaptive GC-rate control simulator (SIGMOD'96 reproduction)

USAGE:
  odbgc generate --out <file> [--conn N] [--seed N] [--params small-prime|small|tiny] [--style bidir|forward]
                 [--format binary|text]   (default: by extension, .otb = binary)
  odbgc info     --trace <file>
  odbgc run      (--trace <file> | [--conn N] [--seed N]) --policy <spec>
                 [--selector updated-pointer|random|round-robin|most-garbage]
                 [--series <csv>] [--preamble N] [--store paper|tiny]
                 [--telemetry <json>] [--gc-workers N]
  odbgc serve-bench --policy <spec> [--sessions N] [--shards N] [--ops N]
                 [--batch N] [--sched-seed N] [--seed N] [--store tiny|paper]
                 [--telemetry <json>] [--gc-workers N]
  odbgc serve    --policy <spec> [--listen HOST:PORT] [--shards N]
                 [--window-max N] [--idle-timeout-ms N] [--addr-file <f>]
                 [--store tiny|paper] [--telemetry <json>] [--gc-workers N]
                 [--net-threads N]
  odbgc client   --connect HOST:PORT [--session N] [--ops N] [--batch N]
                 [--window N] [--seed N] [--connections N] [--shutdown true]
  odbgc sweep    --policy saio|saga[:estimator] --points a,b,c [--seeds A..B]
                 [--conn N] [--csv <file>] [--jobs N] [--corpus <dir>]
                 [--telemetry <json>] [--progress N] [--gc-workers N]
  odbgc telemetry verify --file <json>
  odbgc trace    convert --in <file> --out <file> [--format binary|text]
  odbgc trace    stat|verify|cat --trace <file>   (cat: [--limit N])

Binary tracefiles (.otb) are checksummed, block-compressed-by-encoding,
and streamable; `--trace` accepts either format everywhere (sniffed by
content). Sweeps reuse generated traces from the corpus directory given
by --corpus or the ODBGC_CORPUS environment variable.

POLICY SPECS:
  saio:10%[:hist=N|inf]   saga:5%[:oracle|fgs-hb[@h]|cgs-cb]
  fixed:<overwrites>      alloc:<bytes>
  coupled:10%:floor=5%[:stretch=X]
  quiescent:idle=N:<spec>

Sweeps run cell × seed on --jobs worker threads (or ODBGC_JOBS; default:
all cores). Results are independent of the worker count.
Collections run on a per-engine collector pool sized by --gc-workers (or
ODBGC_GC_WORKERS; default 1); the packet scheduler reduces results in a
canonical order, so GC worker count never changes results either.
Everything is deterministic in --seed (default 1).

serve-bench drives N live sessions (default 4) against engines sharded
by partition group (default 2 shards), collections on a background GC
worker, interleaved by a scheduler seeded with --sched-seed — the same
seed always reproduces the same schedule and per-shard results. With
--telemetry it writes one run document per shard from the live decision
log.

serve exposes the same sharded engines over a socket: a readiness-driven
event loop on --net-threads poll threads (or ODBGC_NET_THREADS; default
min(4, cores)) multiplexes any number of connections, turns run on one
executor thread per shard, per-client in-flight windows give explicit
busy responses, idle connections are reaped, and a graceful drain (a
client's --shutdown true) finishes in-flight ops and flushes telemetry
before closing. The bound address goes to stderr and --addr-file;
per-client and per-loop counters ride in telemetry under volatile net_
keys. client drives one seeded session against it — or N sessions
round-robin from one process with --connections — the same workload
generator serve-bench schedules in-process, so loopback telemetry
matches in-process telemetry after stripping volatile keys.

--telemetry writes a versioned JSON document (policy decision log and
per-phase accounting for `run`; per-job wall times, cache tiers, and the
failure list for `sweep`); `odbgc telemetry verify` checks one.
--progress N prints a stderr line every N completed sweep jobs."
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_args_print_usage() {
        let out = dispatch(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(dispatch(&argv("help")).unwrap().contains("POLICY SPECS"));
    }

    #[test]
    fn unknown_command_errors() {
        let e = dispatch(&argv("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }
}
