//! Store hot-path micro-benchmarks: event application through the buffer
//! pool, and end-to-end OO7 trace replay throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use odbgc_oo7::{Oo7App, Oo7Params};
use odbgc_store::{Event, Store, StoreConfig};
use odbgc_trace::{ObjectId, SlotIdx, TraceBuilder};

fn bench_store(c: &mut Criterion) {
    // Single-event costs on a pre-populated store.
    let mut setup = TraceBuilder::new();
    let root = setup.create_unlinked(16, 64);
    setup.root_add(root);
    let mut ids = Vec::new();
    for i in 0..64u32 {
        let id = setup.create_unlinked(128, 2);
        setup.slot_write(root, SlotIdx::new(i), Some(id));
        ids.push(id);
    }
    let setup_trace = setup.finish();
    let make_store = || {
        let mut s = Store::new(StoreConfig::default());
        for ev in setup_trace.iter() {
            s.apply(ev).expect("setup replays");
        }
        s
    };

    let mut group = c.benchmark_group("event_apply");
    group.bench_function("access_hot", |b| {
        let mut store = make_store();
        b.iter(|| black_box(store.apply(&Event::Access { id: ids[0] })))
    });
    group.bench_function("access_scan", |b| {
        // Rotating accesses defeat the buffer: every touch may miss.
        let mut store = make_store();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(store.apply(&Event::Access { id: ids[i] }))
        })
    });
    group.bench_function("slot_relink", |b| {
        let mut store = make_store();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % ids.len();
            black_box(store.apply(&Event::SlotWrite {
                src: ids[i],
                slot: SlotIdx::new(0),
                new: Some(ids[(i + 1) % ids.len()]),
            }))
        })
    });
    group.bench_function("create", |b| {
        let mut store = make_store();
        let mut next = 10_000u64;
        b.iter(|| {
            next += 1;
            black_box(store.apply(&Event::Create {
                id: ObjectId::new(next),
                size: 128,
                slots: Box::new([Some(ids[0])]),
            }))
        })
    });
    group.finish();

    // End-to-end replay throughput on the real workload.
    let (trace, _) = Oo7App::standard(Oo7Params::small_prime(3), 1).generate();
    let mut group = c.benchmark_group("oo7_replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(10);
    group.bench_function("small_prime_conn3", |b| {
        b.iter(|| {
            let mut store = Store::new(StoreConfig::default());
            for ev in trace.iter() {
                store.apply(ev).expect("replay");
            }
            black_box(store.live_bytes())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
