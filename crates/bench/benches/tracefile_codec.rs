//! Tracefile codec micro-benchmarks: binary encode/decode throughput
//! versus the text codec, and streaming replay straight off the binary
//! encoding. These back the corpus design choice — loading a tracefile
//! must beat regenerating the trace by a wide margin.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use odbgc_oo7::{Oo7App, Oo7Params};
use odbgc_trace::codec;

fn bench_tracefile(c: &mut Criterion) {
    let (trace, _) = Oo7App::standard(Oo7Params::small(3), 1).generate();
    let binary = odbgc_tracefile::encode(&trace);
    let text = codec::encode(&trace);
    let events = trace.len() as u64;

    let mut group = c.benchmark_group("tracefile_encode");
    group.throughput(Throughput::Elements(events));
    group.sample_size(20);
    group.bench_function("binary", |b| {
        b.iter(|| black_box(odbgc_tracefile::encode(&trace)))
    });
    group.bench_function("text", |b| b.iter(|| black_box(codec::encode(&trace))));
    group.finish();

    let mut group = c.benchmark_group("tracefile_decode");
    group.throughput(Throughput::Elements(events));
    group.sample_size(20);
    group.bench_function("binary", |b| {
        b.iter(|| black_box(odbgc_tracefile::decode(&binary).expect("decode")))
    });
    group.bench_function("text", |b| {
        b.iter(|| black_box(codec::decode(&text).expect("decode")))
    });
    // The corpus-tier comparison: decoding a tracefile vs regenerating
    // the identical trace from OO7 parameters.
    group.bench_function("regenerate", |b| {
        b.iter(|| black_box(Oo7App::standard(Oo7Params::small(3), 1).generate().0))
    });
    group.finish();

    // Streaming: iterate every event without materializing a Trace.
    let mut group = c.benchmark_group("tracefile_stream");
    group.throughput(Throughput::Elements(events));
    group.sample_size(20);
    group.bench_function("read_events", |b| {
        b.iter(|| {
            let reader = odbgc_tracefile::TraceReader::new(binary.as_slice()).expect("header");
            let mut n = 0u64;
            for ev in reader {
                black_box(ev.expect("event"));
                n += 1;
            }
            n
        })
    });
    group.finish();

    // Zero-copy batches: drain borrowed `&[Event]` blocks without a
    // Trace, per-event allocation, or per-event Result — first off an
    // in-memory slice (what the mmap reader runs over a mapped region),
    // then off an actual file through `open_batches`.
    let dir = std::env::temp_dir().join(format!("odbgc-bench-tracefile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let path = dir.join("bench.otb");
    std::fs::write(&path, &binary).expect("write bench tracefile");

    let mut group = c.benchmark_group("trace_decode_batched");
    group.throughput(Throughput::Elements(events));
    group.sample_size(20);
    group.bench_function("slice", |b| {
        b.iter(|| {
            let blocks = odbgc_tracefile::SliceBlocks::new(binary.as_slice()).expect("header");
            let mut reader = odbgc_tracefile::BatchReader::new(blocks).expect("phase table");
            let mut n = 0u64;
            while let Some(batch) = reader.next_batch().expect("batch") {
                n += black_box(batch).len() as u64;
            }
            n
        })
    });
    group.bench_function("mmap", |b| {
        b.iter(|| {
            let mut reader = odbgc_tracefile::open_batches(&path).expect("open");
            let mut n = 0u64;
            while let Some(batch) = reader.next_batch().expect("batch") {
                n += black_box(batch).len() as u64;
            }
            n
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_tracefile);
criterion_main!(benches);
