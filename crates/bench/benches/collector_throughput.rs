//! Collector micro-benchmarks: survivor planning and full collection of a
//! partition under varying garbage ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use odbgc_gc::{collect_partition, collect_partitions, plan_survivors, Scheduler};
use odbgc_store::{PartitionId, Store, StoreConfig};
use odbgc_trace::{SlotIdx, TraceBuilder};

/// Builds a store whose partition 0 holds `n_objects` chained objects, a
/// `garbage_ratio` fraction of which have been detached.
fn loaded_store(n_objects: usize, garbage_ratio: f64) -> Store {
    let mut b = TraceBuilder::new();
    let root = b.create_unlinked(16, n_objects);
    b.root_add(root);
    let mut ids = Vec::with_capacity(n_objects);
    for i in 0..n_objects {
        let id = b.create_unlinked(64, 1);
        b.slot_write(root, SlotIdx::new(i as u32), Some(id));
        ids.push(id);
    }
    let n_dead = (n_objects as f64 * garbage_ratio) as usize;
    for i in 0..n_dead {
        b.slot_clear(root, SlotIdx::new((i * 2 % n_objects) as u32));
    }
    let mut store = Store::new(StoreConfig::default());
    for ev in b.finish().iter() {
        store.apply(ev).expect("bench trace replays");
    }
    store
}

/// Builds a store whose residents span many partitions (first-fit
/// allocation spills ~1 KiB objects across partitions as each fills),
/// with a `garbage_ratio` fraction detached. Returns the store plus the
/// full partition list for a batch collection.
fn multi_partition_store(
    target_partitions: usize,
    garbage_ratio: f64,
) -> (Store, Vec<PartitionId>) {
    let n_objects = target_partitions * 90;
    let mut b = TraceBuilder::new();
    let root = b.create_unlinked(16, n_objects);
    b.root_add(root);
    for i in 0..n_objects {
        let id = b.create_unlinked(1024, 2);
        b.slot_write(root, SlotIdx::new(i as u32), Some(id));
    }
    let n_dead = (n_objects as f64 * garbage_ratio) as usize;
    for i in 0..n_dead {
        b.slot_clear(root, SlotIdx::new(((i * 7) % n_objects) as u32));
    }
    let mut store = Store::new(StoreConfig::default());
    for ev in b.finish().iter() {
        store.apply(ev).expect("bench trace replays");
    }
    let parts = (0..store.partition_count() as u32)
        .map(PartitionId::new)
        .collect();
    (store, parts)
}

fn bench_collector(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_survivors");
    for &n in &[100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut store = loaded_store(n, 0.3);
            b.iter(|| black_box(plan_survivors(&mut store, PartitionId::new(0))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("collect_partition");
    for &ratio in &[0.0, 0.3, 0.9] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("garbage_{ratio}")),
            &ratio,
            |b, &ratio| {
                b.iter_batched(
                    || loaded_store(500, ratio),
                    |mut store| black_box(collect_partition(&mut store, PartitionId::new(0))),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();

    // Batch collection over the whole store through the packet scheduler
    // at increasing worker counts. Results are worker-count invariant;
    // only wall-clock time may differ.
    let mut group = c.benchmark_group("collect_partition_parallel");
    for &workers in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("workers_{workers}")),
            &workers,
            |b, &workers| {
                let sched = Scheduler::new(workers);
                b.iter_batched(
                    || multi_partition_store(16, 0.4),
                    |(mut store, parts)| black_box(collect_partitions(&mut store, &parts, &sched)),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_collector);
criterion_main!(benches);
