//! Measures the network serve path: full client-driver roundtrips over
//! loopback (frame encode → socket → shard checkout → apply → ack),
//! against the in-process serve mode as the no-socket baseline. The gap
//! between the two is the wire tax per operation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odbgc_core::FixedRatePolicy;
use odbgc_net::{run_client, ClientConfig, NetConfig, NetServer, Request};
use odbgc_sim::engine::{serve, ServeConfig, WorkloadParams};
use odbgc_sim::SimConfig;

const OPS: u64 = 1_000;
const BATCH: u64 = 8;

fn tiny_engine() -> SimConfig {
    SimConfig {
        store: odbgc_sim::store::StoreConfig::tiny(),
        ..SimConfig::default()
    }
}

fn bench_serve_net(c: &mut Criterion) {
    c.bench_function("serve_net_roundtrip/loopback_1k_ops", |b| {
        b.iter(|| {
            let server = NetServer::bind(
                "127.0.0.1:0",
                NetConfig {
                    engine: tiny_engine(),
                    shards: 1,
                    ..NetConfig::default()
                },
                |_| Box::new(FixedRatePolicy::new(20)),
            )
            .expect("bind");
            let addr = server.local_addr().expect("addr").to_string();
            let handle = std::thread::spawn(move || server.run());
            let report = run_client(&ClientConfig {
                addr,
                session: 0,
                ops: OPS,
                batch: BATCH,
                window: 4,
                workload: WorkloadParams::default(),
                shutdown_after: true,
            })
            .expect("client");
            let outcome = handle.join().expect("server");
            black_box((report, outcome))
        })
    });

    c.bench_function("serve_net_roundtrip/in_process_1k_ops", |b| {
        b.iter(|| {
            black_box(
                serve(
                    ServeConfig {
                        engine: tiny_engine(),
                        sessions: 1,
                        shards: 1,
                        ops_per_session: OPS,
                        batch: BATCH,
                        scheduler_seed: 42,
                        workload: WorkloadParams::default(),
                        gc_fault: None,
                    },
                    |_| Box::new(FixedRatePolicy::new(20)),
                )
                .expect("serve"),
            )
        })
    });

    c.bench_function("serve_net_roundtrip/frame_encode_decode_turn", |b| {
        // The pure protocol cost of one 8-op turn, no socket.
        let mut workload =
            odbgc_sim::engine::SessionWorkload::new(0, WorkloadParams::default(), OPS);
        let turn = workload.next_turn(BATCH);
        let req = Request::Ops { ops: turn };
        b.iter(|| {
            let body = black_box(&req).encode();
            black_box(Request::decode(&body).expect("decode"))
        })
    });

    c.bench_function("serve_net_roundtrip/frame_encode_decode_turn_reused", |b| {
        // The same turn through the buffer-reusing entry points
        // (encode_into + frame_into into persistent scratch): the
        // steady-state per-frame cost with no allocation.
        let mut workload =
            odbgc_sim::engine::SessionWorkload::new(0, WorkloadParams::default(), OPS);
        let turn = workload.next_turn(BATCH);
        let req = Request::Ops { ops: turn };
        let mut body = Vec::new();
        let mut wire = Vec::new();
        b.iter(|| {
            black_box(&req).encode_into(&mut body);
            wire.clear();
            odbgc_net::frame_into(&mut wire, &body);
            black_box(Request::decode(&body).expect("decode"))
        })
    });
}

criterion_group!(benches, bench_serve_net);
criterion_main!(benches);
