//! Guards the telemetry layer's zero-cost-when-off contract: replaying a
//! trace with telemetry disabled must not regress
//! when the instrumented telemetry path exists, and the
//! instrumented path's overhead is measured alongside it for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odbgc_core::{RatePolicy, SaioPolicy};
use odbgc_oo7::{Oo7App, Oo7Params};
use odbgc_sim::{ReplayOptions, RunTelemetry, SimConfig, Simulator};
use odbgc_trace::Trace;

fn bench_trace() -> Trace {
    Oo7App::standard(Oo7Params::tiny(), 1).generate().0
}

fn bench_replay(c: &mut Criterion) {
    let trace = bench_trace();
    let sim = Simulator::new(SimConfig::tiny());

    c.bench_function("replay_hot_path/telemetry_off", |b| {
        b.iter(|| {
            let mut policy = SaioPolicy::with_frac(0.10);
            black_box(
                sim.replay(black_box(&trace), &mut policy, ReplayOptions::new())
                    .expect("run"),
            )
        })
    });

    c.bench_function("replay_hot_path/telemetry_on", |b| {
        b.iter(|| {
            let mut policy = SaioPolicy::with_frac(0.10);
            let mut telemetry = RunTelemetry::new(policy.name());
            let result = sim
                .replay(
                    black_box(&trace),
                    &mut policy,
                    ReplayOptions::new().telemetry(&mut telemetry),
                )
                .expect("run");
            black_box((result, telemetry))
        })
    });
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
