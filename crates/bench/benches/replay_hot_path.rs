//! Guards the telemetry layer's zero-cost-when-off contract: replaying a
//! trace through `Simulator::run` (telemetry disabled) must not regress
//! when the instrumented `run_with_telemetry` path exists, and the
//! instrumented path's overhead is measured alongside it for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odbgc_core::SaioPolicy;
use odbgc_oo7::{Oo7App, Oo7Params};
use odbgc_sim::{SimConfig, Simulator};
use odbgc_trace::Trace;

fn bench_trace() -> Trace {
    Oo7App::standard(Oo7Params::tiny(), 1).generate().0
}

fn bench_replay(c: &mut Criterion) {
    let trace = bench_trace();
    let sim = Simulator::new(SimConfig::tiny());

    c.bench_function("replay_hot_path/telemetry_off", |b| {
        b.iter(|| {
            let mut policy = SaioPolicy::with_frac(0.10);
            black_box(sim.run(black_box(&trace), &mut policy).expect("run"))
        })
    });

    c.bench_function("replay_hot_path/telemetry_on", |b| {
        b.iter(|| {
            let mut policy = SaioPolicy::with_frac(0.10);
            black_box(
                sim.run_with_telemetry(black_box(&trace), &mut policy)
                    .expect("run"),
            )
        })
    });
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
