//! Measures how the event-loop server scales with connection count at a
//! fixed total operation budget: the same 512 ops pushed through 1, 16,
//! and 64 connections over a 2-thread loop pool. A thread-per-connection
//! server pays a thread spawn/teardown per connection; the event loop
//! should hold the per-op cost roughly flat as the budget spreads across
//! more (and therefore mostly idle) connections.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odbgc_core::FixedRatePolicy;
use odbgc_net::{run_clients, ClientConfig, NetConfig, NetServer};
use odbgc_sim::engine::WorkloadParams;
use odbgc_sim::SimConfig;

const TOTAL_OPS: u64 = 512;
const BATCH: u64 = 8;
const NET_THREADS: usize = 2;

fn tiny_engine() -> SimConfig {
    SimConfig {
        store: odbgc_sim::store::StoreConfig::tiny(),
        ..SimConfig::default()
    }
}

fn run_at(connections: u32) -> (odbgc_net::MultiClientReport, odbgc_net::NetOutcome) {
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            engine: tiny_engine(),
            shards: 1,
            net_threads: NET_THREADS,
            ..NetConfig::default()
        },
        |_| Box::new(FixedRatePolicy::new(20)),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    let report = run_clients(
        &ClientConfig {
            addr,
            session: 0,
            ops: TOTAL_OPS / connections as u64,
            batch: BATCH,
            window: 4,
            workload: WorkloadParams::default(),
            shutdown_after: true,
        },
        connections,
    )
    .expect("clients");
    let outcome = handle.join().expect("server");
    (report, outcome)
}

fn bench_scaling(c: &mut Criterion) {
    for connections in [1u32, 16, 64] {
        c.bench_function(&format!("serve_net_scaling/conns_{connections}"), |b| {
            b.iter(|| black_box(run_at(connections)))
        });
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
