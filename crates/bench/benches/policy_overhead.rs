//! Micro-benchmarks backing the paper's claim that "our collection rate
//! policies add only little time and space overhead" (§1): the cost of
//! one policy decision and one estimator update, in nanoseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use odbgc_core::{
    CollectionObservation, EstimatorKind, FixedRatePolicy, HistoryLen, RatePolicy, SagaConfig,
    SagaPolicy, SaioConfig, SaioPolicy,
};

fn obs(i: u64) -> CollectionObservation {
    CollectionObservation {
        collection_index: i,
        gc_io: 24 + (i % 7),
        app_io_since_prev: 200 + (i % 31),
        bytes_reclaimed: 60_000 + (i % 1000),
        overwrites_of_collected: 180 + (i % 13),
        total_outstanding_overwrites: 2_000 + (i % 100),
        partition_count: 30,
        db_size: 3_000_000,
        total_collected: 1_000_000 + i * 60_000,
        overwrite_clock: 10_000 + i * 200,
        alloc_clock: 500_000 + i * 12_800,
        exact_garbage: 250_000 + (i % 10_000),
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_decision");

    group.bench_function("fixed", |b| {
        let mut p = FixedRatePolicy::new(200);
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(p.after_collection(&obs(i)))
        })
    });

    group.bench_function("saio_no_history", |b| {
        let mut p = SaioPolicy::with_frac(0.10);
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(p.after_collection(&obs(i)))
        })
    });

    group.bench_function("saio_history_64", |b| {
        let mut p = SaioPolicy::new(SaioConfig::new(0.10).with_history(HistoryLen::Fixed(64)));
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(p.after_collection(&obs(i)))
        })
    });

    group.bench_function("saga_oracle", |b| {
        let mut p = SagaPolicy::new(SagaConfig::new(0.10), EstimatorKind::Oracle.build());
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(p.after_collection(&obs(i)))
        })
    });

    group.bench_function("saga_fgs_hb", |b| {
        let mut p = SagaPolicy::new(
            SagaConfig::new(0.10),
            EstimatorKind::fgs_hb_default().build(),
        );
        let mut i = 0;
        b.iter(|| {
            i += 1;
            black_box(p.after_collection(&obs(i)))
        })
    });

    group.finish();

    let mut group = c.benchmark_group("estimator_update");
    for (name, kind) in [
        ("oracle", EstimatorKind::Oracle),
        ("cgs_cb", EstimatorKind::CgsCb),
        ("fgs_hb", EstimatorKind::fgs_hb_default()),
    ] {
        group.bench_function(name, |b| {
            let mut e = kind.build();
            let mut i = 0;
            b.iter(|| {
                i += 1;
                black_box(e.estimate(&obs(i)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
