//! §2.1: why "clever" fixed-rate heuristics fail.
//!
//! The heuristic infers garbage-per-overwrite from average connectivity
//! and object size (`133 B / 4 ≈ 33 B` per overwrite for the paper's
//! numbers) and schedules a collection per partition's-worth of predicted
//! garbage. The paper reports the application actually creates garbage
//! about five times faster (≈ 1 KB per 6 overwrites), because single
//! overwrites can detach whole clusters and large objects (documents).
//! This experiment measures both quantities and shows the garbage level
//! the mispredicted rate leads to.

use odbgc_sim::core_policies::{connectivity_heuristic_rate, FixedRatePolicy};
use odbgc_sim::oo7::Oo7App;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::{run_single, RunResult};

use crate::scale::Scale;

/// Measured vs predicted garbage rates plus the consequences.
pub struct StrawmanData {
    /// The §2.1 prediction: avg object size / avg connectivity.
    pub predicted_garbage_per_overwrite: f64,
    /// The measured garbage-creation rate.
    pub actual_garbage_per_overwrite: f64,
    /// The rate (overwrites/collection) the heuristic picked.
    pub heuristic_rate: u64,
    /// The run at the heuristic's rate.
    pub heuristic_run: RunResult,
    /// The run at the rate a correct garbage model implies.
    pub corrected_run: RunResult,
}

/// Runs the comparison.
pub fn run(scale: Scale) -> StrawmanData {
    let params = scale.params(3);
    let app = Oo7App::standard(params, scale.series_seed());
    let (trace, chars) = app.generate();
    let config = scale.sim_config();

    let partition_bytes = u64::from(config.store.partition_bytes());
    let heuristic_rate = connectivity_heuristic_rate(
        chars.avg_connectivity(),
        chars.avg_object_size(),
        partition_bytes,
    );
    let predicted = chars.avg_object_size() / chars.avg_connectivity();

    let mut heuristic_policy = FixedRatePolicy::new(heuristic_rate);
    let heuristic_run =
        run_single(&trace, &config, &mut heuristic_policy).expect("OO7 trace replays cleanly");

    // Ground truth garbage creation per overwrite.
    let actual = if heuristic_run.overwrite_clock == 0 {
        0.0
    } else {
        heuristic_run.total_garbage_generated as f64 / heuristic_run.overwrite_clock as f64
    };

    // The rate the heuristic *should* have chosen given the true garbage
    // rate (one partition's worth of actual garbage per collection).
    let corrected_rate = (partition_bytes as f64 / actual.max(1.0)).round() as u64;
    let mut corrected_policy = FixedRatePolicy::new(corrected_rate.max(1));
    let corrected_run =
        run_single(&trace, &config, &mut corrected_policy).expect("OO7 trace replays cleanly");

    StrawmanData {
        predicted_garbage_per_overwrite: predicted,
        actual_garbage_per_overwrite: actual,
        heuristic_rate,
        heuristic_run,
        corrected_run,
    }
}

/// Renders the report.
pub fn report(scale: Scale) -> String {
    let d = run(scale);
    let misprediction =
        d.actual_garbage_per_overwrite / d.predicted_garbage_per_overwrite.max(1e-9);
    let rows = vec![
        vec![
            "predicted garbage/overwrite (B)".into(),
            fmt_f(d.predicted_garbage_per_overwrite, 1),
        ],
        vec![
            "actual garbage/overwrite (B)".into(),
            fmt_f(d.actual_garbage_per_overwrite, 1),
        ],
        vec!["misprediction factor".into(), fmt_f(misprediction, 2)],
        vec![
            "heuristic rate (ow/coll)".into(),
            d.heuristic_rate.to_string(),
        ],
        vec![
            "collections at heuristic rate".into(),
            d.heuristic_run.collection_count().to_string(),
        ],
        vec![
            "garbage left at heuristic rate (KiB)".into(),
            fmt_f(d.heuristic_run.final_garbage_bytes as f64 / 1024.0, 1),
        ],
        vec![
            "collections at corrected rate".into(),
            d.corrected_run.collection_count().to_string(),
        ],
        vec![
            "garbage left at corrected rate (KiB)".into(),
            fmt_f(d.corrected_run.final_garbage_bytes as f64 / 1024.0, 1),
        ],
    ];
    format!(
        "== §2.1 strawman: the connectivity heuristic fails ==\n{}",
        render_table(&["quantity", "value"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_underestimates_garbage_rate() {
        let d = run(Scale::Test);
        // The documented failure: actual garbage per overwrite exceeds the
        // connectivity-based prediction (whole clusters + documents die).
        assert!(
            d.actual_garbage_per_overwrite > d.predicted_garbage_per_overwrite,
            "actual {} must exceed predicted {}",
            d.actual_garbage_per_overwrite,
            d.predicted_garbage_per_overwrite
        );
        // Consequently the heuristic collects no more often than the
        // corrected rate would.
        assert!(d.heuristic_run.collection_count() <= d.corrected_run.collection_count());
    }

    #[test]
    fn report_renders() {
        assert!(report(Scale::Test).contains("misprediction factor"));
    }
}
