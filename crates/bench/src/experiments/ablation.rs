//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Partition selection** — UPDATEDPOINTER vs Random vs RoundRobin vs
//!    the MostGarbage oracle, under a fixed rate: how much garbage does
//!    each find per collection? (Also explains CGS/CB's bias, §4.1.2:
//!    UPDATEDPOINTER deliberately picks richer-than-average partitions.)
//! 2. **Overwrite semantics** — the paper's non-null-old overwrite clock
//!    vs counting every store.
//! 3. **Buffer size** — §3.1 sets buffer = partition size; smaller and
//!    larger buffers shift application I/O.

use odbgc_sim::core_policies::{FixedRatePolicy, SagaPolicy};
use odbgc_sim::gc::SelectorKind;
use odbgc_sim::oo7::Oo7App;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::store::OverwriteSemantics;
use odbgc_sim::{run_single, SimConfig};

use crate::scale::Scale;

fn fixed_rate_for(scale: Scale) -> u64 {
    match scale {
        Scale::Test => 25,
        _ => 200,
    }
}

/// Partition-selection comparison under a fixed collection rate.
pub fn selection_report(scale: Scale) -> String {
    let (trace, _) = Oo7App::standard(scale.params(3), scale.series_seed()).generate();
    let rate = fixed_rate_for(scale);
    let rows: Vec<Vec<String>> = [
        SelectorKind::UpdatedPointer,
        SelectorKind::Random,
        SelectorKind::RoundRobin,
        SelectorKind::MostGarbageOracle,
    ]
    .into_iter()
    .map(|kind| {
        let config = SimConfig {
            selector: kind,
            selector_seed: 42,
            ..scale.sim_config()
        };
        let mut policy = FixedRatePolicy::new(rate);
        let r = run_single(&trace, &config, &mut policy).expect("OO7 trace replays cleanly");
        let per_coll = if r.collection_count() == 0 {
            0.0
        } else {
            r.total_garbage_collected as f64 / 1024.0 / r.collection_count() as f64
        };
        vec![
            format!("{kind:?}"),
            r.collection_count().to_string(),
            fmt_f(r.total_garbage_collected as f64 / 1024.0, 1),
            fmt_f(per_coll, 2),
            fmt_f(r.final_garbage_bytes as f64 / 1024.0, 1),
        ]
    })
    .collect();
    format!(
        "-- Ablation: partition selection (fixed rate {rate} ow/coll) --\n{}",
        render_table(
            &[
                "selector",
                "colls",
                "collected.KiB",
                "yield/coll.KiB",
                "left.KiB"
            ],
            &rows
        )
    )
}

/// Overwrite-semantics comparison under SAGA (oracle estimator).
pub fn semantics_report(scale: Scale) -> String {
    let (trace, _) = Oo7App::standard(scale.params(3), scale.series_seed()).generate();
    let rows: Vec<Vec<String>> = [
        ("non-null-old (paper)", OverwriteSemantics::NonNullOld),
        ("all stores", OverwriteSemantics::AllStores),
    ]
    .into_iter()
    .map(|(name, semantics)| {
        let mut config = scale.sim_config();
        config.store.overwrite_semantics = semantics;
        let mut policy = SagaPolicy::new(
            scale.saga_config(0.10),
            odbgc_sim::core_policies::EstimatorKind::Oracle.build(),
        );
        let r = run_single(&trace, &config, &mut policy).expect("OO7 trace replays cleanly");
        vec![
            name.to_string(),
            r.overwrite_clock.to_string(),
            r.collection_count().to_string(),
            fmt_f(r.garbage_pct_mean.unwrap_or(f64::NAN), 2),
        ]
    })
    .collect();
    format!(
        "-- Ablation: overwrite semantics (SAGA oracle, req 10%) --\n{}",
        render_table(&["semantics", "clock", "colls", "garbage.%"], &rows)
    )
}

/// Buffer-size sensitivity under SAIO.
pub fn buffer_report(scale: Scale) -> String {
    let (trace, _) = Oo7App::standard(scale.params(3), scale.series_seed()).generate();
    let base_pages = scale.sim_config().store.buffer_pages;
    let rows: Vec<Vec<String>> = [base_pages / 2, base_pages, base_pages * 4]
        .into_iter()
        .filter(|&p| p >= 1)
        .map(|pages| {
            let mut config = scale.sim_config();
            config.store.buffer_pages = pages;
            let mut policy = odbgc_sim::core_policies::SaioPolicy::with_frac(0.10);
            let r = run_single(&trace, &config, &mut policy).expect("OO7 trace replays cleanly");
            vec![
                pages.to_string(),
                r.app_io_total.to_string(),
                r.gc_io_total.to_string(),
                fmt_f(r.gc_io_pct.unwrap_or(f64::NAN), 2),
            ]
        })
        .collect();
    format!(
        "-- Ablation: buffer size (SAIO, req 10%) --\n{}",
        render_table(&["buf.pages", "app.io", "gc.io", "gc.io%"], &rows)
    )
}

/// Connection-schema comparison: how much garbage one overwrite detaches.
pub fn schema_report(scale: Scale) -> String {
    use odbgc_sim::oo7::ConnStyle;
    let rows: Vec<Vec<String>> = [
        ("bidirectional (default)", ConnStyle::Bidirectional),
        ("forward-only", ConnStyle::Forward),
    ]
    .into_iter()
    .map(|(name, style)| {
        let mut params = scale.params(3);
        params.conn_style = style;
        let (trace, chars) = Oo7App::standard(params, scale.series_seed()).generate();
        let mut policy = FixedRatePolicy::new(fixed_rate_for(scale));
        let r = run_single(&trace, &scale.sim_config(), &mut policy)
            .expect("OO7 trace replays cleanly");
        let gpo = if r.overwrite_clock == 0 {
            0.0
        } else {
            r.total_garbage_generated as f64 / r.overwrite_clock as f64
        };
        vec![
            name.to_string(),
            r.overwrite_clock.to_string(),
            fmt_f(r.total_garbage_generated as f64 / 1024.0, 1),
            fmt_f(gpo, 1),
            fmt_f(chars.avg_connectivity(), 2),
        ]
    })
    .collect();
    format!(
        "-- Ablation: connection schema (garbage detached per overwrite) --\n{}",
        render_table(
            &[
                "schema",
                "overwrites",
                "garbage.KiB",
                "garbage/ow.B",
                "avg.ptrs"
            ],
            &rows
        )
    )
}

/// Partition-size sensitivity under SAGA: the collection yield scales
/// with the partition, which moves the steady-state interval.
pub fn partition_report(scale: Scale) -> String {
    let (trace, _) = Oo7App::standard(scale.params(3), scale.series_seed()).generate();
    let base = scale.sim_config().store.pages_per_partition;
    let rows: Vec<Vec<String>> = [base / 2, base, base * 2]
        .into_iter()
        .filter(|&p| p >= 1)
        .map(|pages| {
            let mut config = scale.sim_config();
            config.store.pages_per_partition = pages;
            let mut policy = SagaPolicy::new(
                scale.saga_config(0.10),
                odbgc_sim::core_policies::EstimatorKind::Oracle.build(),
            );
            let r = run_single(&trace, &config, &mut policy).expect("OO7 trace replays cleanly");
            let yield_per_coll = if r.collection_count() == 0 {
                0.0
            } else {
                r.total_garbage_collected as f64 / 1024.0 / r.collection_count() as f64
            };
            vec![
                pages.to_string(),
                r.collection_count().to_string(),
                fmt_f(yield_per_coll, 1),
                fmt_f(r.garbage_pct_mean.unwrap_or(f64::NAN), 2),
            ]
        })
        .collect();
    format!(
        "-- Ablation: partition size (SAGA oracle, req 10%) --\n{}",
        render_table(
            &["part.pages", "colls", "yield/coll.KiB", "garbage.%"],
            &rows
        )
    )
}

/// SAIO history-length sweep at the extreme requested fraction, where
/// §4.1.1 says history ameliorates the non-cancelling drift errors.
pub fn saio_history_report(scale: Scale) -> String {
    use odbgc_sim::core_policies::{HistoryLen, SaioConfig, SaioPolicy};
    let (trace, _) = Oo7App::standard(scale.params(3), scale.series_seed()).generate();
    let requested = 50.0;
    let rows: Vec<Vec<String>> = [
        ("0", HistoryLen::None),
        ("1", HistoryLen::Fixed(1)),
        ("4", HistoryLen::Fixed(4)),
        ("16", HistoryLen::Fixed(16)),
        ("inf", HistoryLen::Infinite),
    ]
    .into_iter()
    .map(|(name, hist)| {
        let mut policy = SaioPolicy::new(SaioConfig::new(requested / 100.0).with_history(hist));
        let r = run_single(&trace, &scale.sim_config(), &mut policy)
            .expect("OO7 trace replays cleanly");
        let achieved = crate::common::adaptive_gc_io_pct(&r, scale.preamble());
        vec![
            name.to_string(),
            fmt_f(achieved.unwrap_or(f64::NAN), 3),
            fmt_f(achieved.map(|a| a - requested).unwrap_or(f64::NAN), 3),
        ]
    })
    .collect();
    format!(
        "-- Ablation: SAIO history length at the extreme (req {requested}%) --\n{}",
        render_table(&["c_hist", "achieved.%", "drift.pt"], &rows)
    )
}

/// Renders all ablations.
pub fn report(scale: Scale) -> String {
    format!(
        "== Ablation studies ==\n{}\n{}\n{}\n{}\n{}\n{}",
        selection_report(scale),
        semantics_report(scale),
        buffer_report(scale),
        schema_report(scale),
        partition_report(scale),
        saio_history_report(scale)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_report_covers_all_policies() {
        let r = selection_report(Scale::Test);
        for name in [
            "UpdatedPointer",
            "Random",
            "RoundRobin",
            "MostGarbageOracle",
        ] {
            assert!(r.contains(name), "missing {name}");
        }
    }

    #[test]
    fn all_stores_clock_is_at_least_non_null_clock() {
        let r = semantics_report(Scale::Test);
        let clocks: Vec<u64> = r
            .lines()
            .filter(|l| l.contains("non-null-old") || l.contains("all stores"))
            .map(|l| l.split_whitespace().rev().nth(2).unwrap().parse().unwrap())
            .collect();
        assert_eq!(clocks.len(), 2);
        assert!(clocks[1] > clocks[0], "all-stores clock must be larger");
    }

    #[test]
    fn forward_schema_detaches_more_per_overwrite() {
        let r = schema_report(Scale::Test);
        let gpos: Vec<f64> = r
            .lines()
            .filter(|l| l.contains("bidirectional") || l.contains("forward-only"))
            .map(|l| l.split_whitespace().rev().nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(gpos.len(), 2);
        assert!(
            gpos[1] > gpos[0],
            "forward garbage/overwrite {} must exceed bidirectional {}",
            gpos[1],
            gpos[0]
        );
    }

    #[test]
    fn partition_report_covers_three_sizes() {
        let r = partition_report(Scale::Test);
        assert!(r.lines().count() >= 5);
        assert!(r.contains("part.pages"));
    }

    #[test]
    fn saio_history_report_covers_all_lengths() {
        let r = saio_history_report(Scale::Test);
        for h in ["0", "1", "4", "16", "inf"] {
            assert!(
                r.lines().any(|l| l.trim_start().starts_with(h)),
                "missing c_hist {h}"
            );
        }
    }

    #[test]
    fn larger_buffer_reduces_app_io() {
        let r = buffer_report(Scale::Test);
        let app_ios: Vec<u64> = r
            .lines()
            .skip(3) // header + rule
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(app_ios.len() >= 2);
        assert!(
            app_ios.first().unwrap() >= app_ios.last().unwrap(),
            "app I/O should not grow with buffer size: {app_ios:?}"
        );
    }
}
