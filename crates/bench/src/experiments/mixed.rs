//! Mixed-workload experiment (§1): two applications, one database, one
//! self-adaptive policy.
//!
//! §1 argues against profiling a single application to pick a rate: the
//! profile "would reflect just that single application, which may be in
//! conflict with other applications manipulating the same database." Here
//! two independently seeded OO7 applications are interleaved into one
//! store, so the event stream mixes both apps' phases arbitrarily —
//! GenDB-like allocation from one overlapping reorganization churn from
//! the other. A single SAIO (and SAGA) instance still hits the
//! user-requested level, because the policies adapt to the *observed*
//! aggregate behavior rather than any per-application profile.

use odbgc_sim::core_policies::{EstimatorKind, SagaPolicy, SaioPolicy};
use odbgc_sim::oo7::Oo7App;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::trace::merge::interleave;
use odbgc_sim::trace::Trace;
use odbgc_sim::{RunResult, Simulator};

use crate::scale::Scale;

/// Builds the two-application interleaved workload.
pub fn mixed_trace(scale: Scale) -> Trace {
    let params = scale.params(3);
    let (a, _) = Oo7App::standard(params, scale.series_seed()).generate();
    let (b, _) = Oo7App::standard(params, scale.series_seed() + 100).generate();
    interleave(&[a, b], 42)
}

fn simulate(
    scale: Scale,
    trace: &Trace,
    policy: &mut dyn odbgc_sim::core_policies::RatePolicy,
) -> RunResult {
    Simulator::new(scale.sim_config())
        .replay(trace, policy, odbgc_sim::ReplayOptions::new())
        .expect("mixed trace replays cleanly")
}

/// Renders the report.
pub fn report(scale: Scale) -> String {
    let trace = mixed_trace(scale);
    let mut saio = SaioPolicy::with_frac(0.10);
    let saio_run = simulate(scale, &trace, &mut saio);
    let mut saga = SagaPolicy::new(
        scale.saga_config(0.10),
        EstimatorKind::fgs_hb_default().build(),
    );
    let saga_run = simulate(scale, &trace, &mut saga);

    let rows = vec![
        vec![
            "saio 10%".into(),
            saio_run.collection_count().to_string(),
            fmt_f(saio_run.gc_io_pct.unwrap_or(f64::NAN), 2),
            fmt_f(saio_run.garbage_pct_mean.unwrap_or(f64::NAN), 2),
        ],
        vec![
            "saga 10% (fgs-hb)".into(),
            saga_run.collection_count().to_string(),
            fmt_f(saga_run.gc_io_pct.unwrap_or(f64::NAN), 2),
            fmt_f(saga_run.garbage_pct_mean.unwrap_or(f64::NAN), 2),
        ],
    ];
    format!(
        "== §1: two interleaved applications, one adaptive policy ==\n\
         ({} events from two independently seeded OO7 apps)\n{}",
        trace.len(),
        render_table(
            &["policy", "colls", "gc.io% (req 10)", "garbage% (req 10)"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_trace_replays_and_saio_holds_target() {
        let trace = mixed_trace(Scale::Test);
        let mut policy = SaioPolicy::with_frac(0.10);
        let r = simulate(Scale::Test, &trace, &mut policy);
        assert!(r.collection_count() > 0);
        // Loose band at miniature scale; the integration test asserts a
        // tight band at full scale.
        if let Some(p) = r.gc_io_pct {
            assert!((p - 10.0).abs() < 8.0, "achieved {p}%");
        }
    }

    #[test]
    fn both_apps_phases_are_present() {
        let trace = mixed_trace(Scale::Test);
        let names = trace.phase_names();
        assert!(names.iter().any(|n| n == "app0:Reorg1"));
        assert!(names.iter().any(|n| n == "app1:Reorg2"));
    }

    #[test]
    fn report_renders() {
        assert!(report(Scale::Test).contains("interleaved"));
    }
}
