//! Figure 6: time-varying behavior of garbage estimation.
//!
//! One run per heuristic at a requested garbage percentage of 10%,
//! printing the target, actual, and estimated garbage percentage at each
//! collection. Expected shape: CGS/CB (6a) swings wildly and
//! overestimates; FGS/HB (6b) tracks the actual garbage closely even
//! across the Reorg1 → Traverse → Reorg2 transition.

use odbgc_sim::core_policies::{EstimatorKind, SagaPolicy};
use odbgc_sim::oo7::Oo7App;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::{run_single, RunResult, SimConfig};

use crate::scale::Scale;

/// Requested garbage percentage for the time-varying figures.
pub const REQUESTED_PCT: f64 = 10.0;

/// Runs one heuristic's time series.
pub fn run_series(scale: Scale, estimator: EstimatorKind) -> RunResult {
    let params = scale.params(3);
    let (trace, _) = Oo7App::standard(params, scale.series_seed()).generate();
    let config = SimConfig {
        shadow_estimator: Some(estimator),
        ..scale.sim_config()
    };
    let mut policy = SagaPolicy::new(scale.saga_config(REQUESTED_PCT / 100.0), estimator.build());
    run_single(&trace, &config, &mut policy).expect("OO7 trace replays cleanly")
}

fn series_table(result: &RunResult) -> String {
    let rows: Vec<Vec<String>> = result
        .collections
        .iter()
        .map(|r| {
            vec![
                r.index.to_string(),
                fmt_f(REQUESTED_PCT, 1),
                fmt_f(r.actual_garbage_pct(), 2),
                fmt_f(r.estimated_garbage_pct().unwrap_or(f64::NAN), 2),
            ]
        })
        .collect();
    render_table(&["coll", "target.%", "actual.%", "estimated.%"], &rows)
}

/// Renders both panels.
pub fn report(scale: Scale) -> String {
    let cgs = run_series(scale, EstimatorKind::CgsCb);
    let fgs = run_series(scale, EstimatorKind::fgs_hb_default());
    format!(
        "== Figure 6a: CGS/CB time-varying garbage estimation (req {REQUESTED_PCT}%) ==\n{}\n\
         == Figure 6b: FGS/HB time-varying garbage estimation (req {REQUESTED_PCT}%) ==\n{}",
        series_table(&cgs),
        series_table(&fgs)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_abs_estimation_error(r: &RunResult, skip: usize) -> f64 {
        let errs: Vec<f64> = r
            .collections
            .iter()
            .skip(skip)
            .filter_map(|c| {
                c.estimated_garbage_pct()
                    .map(|e| (e - c.actual_garbage_pct()).abs())
            })
            .collect();
        errs.iter().sum::<f64>() / errs.len().max(1) as f64
    }

    #[test]
    fn fgs_hb_estimates_better_than_cgs_cb() {
        let cgs = run_series(Scale::Test, EstimatorKind::CgsCb);
        let fgs = run_series(Scale::Test, EstimatorKind::fgs_hb_default());
        assert!(cgs.collection_count() > 2);
        assert!(fgs.collection_count() > 2);
        let cgs_err = mean_abs_estimation_error(&cgs, 2);
        let fgs_err = mean_abs_estimation_error(&fgs, 2);
        assert!(
            fgs_err <= cgs_err,
            "FGS/HB error {fgs_err} must not exceed CGS/CB error {cgs_err}"
        );
    }

    #[test]
    fn report_has_both_panels() {
        let r = report(Scale::Test);
        assert!(r.contains("Figure 6a"));
        assert!(r.contains("Figure 6b"));
    }
}
