//! Figure 2: the phases of the OO7 test application.
//!
//! The original is a diagram; the reproducible artifact is a per-phase
//! event census of the generated trace, which demonstrates the documented
//! behavior: GenDB only creates, the reorganizations mix deletion
//! (overwrites) with reinsertion (creations), and Traverse is read-only.

use odbgc_sim::oo7::Oo7App;
use odbgc_sim::report::render_table;
use odbgc_sim::trace::EventKind;

use crate::scale::Scale;

/// Renders the per-phase census.
pub fn report(scale: Scale) -> String {
    let (trace, _) = Oo7App::standard(scale.params(3), scale.series_seed()).generate();
    let stats = trace.stats();
    let rows: Vec<Vec<String>> = stats
        .by_phase
        .iter()
        .map(|(name, counts)| {
            let get = |k: EventKind| counts.get(&k).copied().unwrap_or(0).to_string();
            vec![
                name.clone(),
                get(EventKind::Create),
                get(EventKind::SlotWrite),
                get(EventKind::Access),
            ]
        })
        .collect();
    format!(
        "== Figure 2: application phases (event census) ==\n{}",
        render_table(&["phase", "creations", "slot writes", "accesses"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_shows_expected_phase_behavior() {
        let r = report(Scale::Test);
        assert!(r.contains("GenDB"));
        assert!(r.contains("Reorg1"));
        assert!(r.contains("Traverse"));
        assert!(r.contains("Reorg2"));
        // Traverse row has zero creations and slot writes.
        let traverse_line = r
            .lines()
            .find(|l| l.contains("Traverse"))
            .expect("traverse row");
        let cells: Vec<&str> = traverse_line.split_whitespace().collect();
        assert_eq!(cells[1], "0");
        assert_eq!(cells[2], "0");
        assert_ne!(cells[3], "0");
    }
}
