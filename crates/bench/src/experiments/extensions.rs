//! §5 future-work demonstrations.
//!
//! * **Opportunistic quiescence collection**: under plain SAGA, the
//!   read-only Traverse phase freezes the overwrite clock, so garbage left
//!   over from Reorg1 sits uncollected; the opportunistic wrapper keeps
//!   collecting on an application-I/O bound and enters Reorg2 with less
//!   garbage.
//! * **Coupled SAIO × SAGA**: plain SAIO keeps spending its I/O budget
//!   even when there is nothing to reclaim; the coupled policy stretches
//!   its interval when the FGS/HB estimate says collections are
//!   cost-ineffective, reducing GC I/O at little garbage cost.

use odbgc_sim::core_policies::{
    CoupledConfig, CoupledSaioPolicy, EstimatorKind, OpportunisticConfig, OpportunisticPolicy,
    RatePolicy, SagaPolicy, SaioPolicy,
};
use odbgc_sim::oo7::Oo7App;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::{run_single, RunResult};

use crate::scale::Scale;

fn run_policy(scale: Scale, policy: &mut dyn RatePolicy) -> RunResult {
    let (trace, _) = Oo7App::standard(scale.params(3), scale.series_seed()).generate();
    run_single(&trace, &scale.sim_config(), policy).expect("OO7 trace replays cleanly")
}

/// Collections performed during the Traverse phase of a run.
pub fn traverse_collections(r: &RunResult) -> u64 {
    let traverse_start = r
        .phases
        .iter()
        .find(|(n, _, _)| n == "Traverse")
        .map(|(_, _, c)| *c);
    let reorg2_start = r
        .phases
        .iter()
        .find(|(n, _, _)| n == "Reorg2")
        .map(|(_, _, c)| *c);
    match (traverse_start, reorg2_start) {
        (Some(a), Some(b)) => b - a,
        _ => 0,
    }
}

/// Renders the opportunistic demonstration.
pub fn opportunistic_report(scale: Scale) -> String {
    let quiescence_io = match scale {
        Scale::Test => 50,
        _ => 200,
    };
    let mut plain = SagaPolicy::new(scale.saga_config(0.10), EstimatorKind::Oracle.build());
    let plain_run = run_policy(scale, &mut plain);
    let mut opp = OpportunisticPolicy::new(
        Box::new(SagaPolicy::new(
            scale.saga_config(0.10),
            EstimatorKind::Oracle.build(),
        )),
        OpportunisticConfig { quiescence_io },
    );
    let opp_run = run_policy(scale, &mut opp);

    let rows = vec![
        vec![
            "plain SAGA (oracle, 10%)".into(),
            traverse_collections(&plain_run).to_string(),
            plain_run.collection_count().to_string(),
            fmt_f(plain_run.garbage_pct_mean.unwrap_or(f64::NAN), 2),
        ],
        vec![
            format!("opportunistic (idle={quiescence_io} I/Os)"),
            traverse_collections(&opp_run).to_string(),
            opp_run.collection_count().to_string(),
            fmt_f(opp_run.garbage_pct_mean.unwrap_or(f64::NAN), 2),
        ],
    ];
    format!(
        "-- §5 extension: opportunistic quiescence collection --\n{}",
        render_table(
            &["policy", "colls in Traverse", "colls total", "garbage.%"],
            &rows
        )
    )
}

/// Renders the coupled-policy demonstration.
pub fn coupled_report(scale: Scale) -> String {
    let mut plain = SaioPolicy::with_frac(0.10);
    let plain_run = run_policy(scale, &mut plain);
    let mut coupled = CoupledSaioPolicy::new(CoupledConfig::new(0.10, 0.05));
    let coupled_run = run_policy(scale, &mut coupled);

    let rows = vec![
        vec![
            "plain SAIO (10%)".into(),
            plain_run.gc_io_total.to_string(),
            fmt_f(plain_run.gc_io_pct_whole_run(), 2),
            fmt_f(plain_run.garbage_pct_mean.unwrap_or(f64::NAN), 2),
        ],
        vec![
            "coupled (floor 5%)".into(),
            coupled_run.gc_io_total.to_string(),
            fmt_f(coupled_run.gc_io_pct_whole_run(), 2),
            fmt_f(coupled_run.garbage_pct_mean.unwrap_or(f64::NAN), 2),
        ],
    ];
    format!(
        "-- §5 extension: coupled SAIO × SAGA cost-effectiveness --\n{}",
        render_table(&["policy", "gc.io", "gc.io%", "garbage.%"], &rows)
    )
}

/// Renders both demonstrations.
pub fn report(scale: Scale) -> String {
    format!(
        "== §5 extensions ==\n{}\n{}",
        opportunistic_report(scale),
        coupled_report(scale)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opportunistic_collects_during_traverse() {
        let mut plain =
            SagaPolicy::new(Scale::Test.saga_config(0.10), EstimatorKind::Oracle.build());
        let plain_run = run_policy(Scale::Test, &mut plain);
        let mut opp = OpportunisticPolicy::new(
            Box::new(SagaPolicy::new(
                Scale::Test.saga_config(0.10),
                EstimatorKind::Oracle.build(),
            )),
            OpportunisticConfig { quiescence_io: 20 },
        );
        let opp_run = run_policy(Scale::Test, &mut opp);
        assert!(
            traverse_collections(&opp_run) >= traverse_collections(&plain_run),
            "opportunistic must not collect less during Traverse"
        );
        assert!(opp_run.collection_count() >= plain_run.collection_count());
    }

    #[test]
    fn coupled_spends_no_more_gc_io_than_plain() {
        let mut plain = SaioPolicy::with_frac(0.10);
        let plain_run = run_policy(Scale::Test, &mut plain);
        let mut coupled = CoupledSaioPolicy::new(CoupledConfig::new(0.10, 0.05));
        let coupled_run = run_policy(Scale::Test, &mut coupled);
        assert!(coupled_run.gc_io_total <= plain_run.gc_io_total);
    }

    #[test]
    fn report_renders() {
        let r = report(Scale::Test);
        assert!(r.contains("opportunistic"));
        assert!(r.contains("coupled"));
    }
}
