//! Figure 4: SAIO accuracy as a function of the requested I/O percentage.
//!
//! For each requested GC-I/O percentage, runs the paper's protocol (10
//! seeds) at `c_hist = 0` and `c_hist = ∞` and reports the achieved
//! percentage with min/max error bars. Expected shape: achieved ≈
//! requested along the diagonal, with a slight upward drift and wider
//! bars at the largest fractions for `c_hist = 0` (the non-cancelling
//! misprediction errors of §4.1.1), which history ameliorates.

use odbgc_sim::core_policies::HistoryLen;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::SweepPoint;

use crate::common::{grids, saio_sweep};
use crate::scale::Scale;

/// Both sweeps.
pub struct Fig4Data {
    /// Sweep at `c_hist = 0`.
    pub no_history: Vec<SweepPoint>,
    /// Sweep at `c_hist = ∞`.
    pub infinite_history: Vec<SweepPoint>,
}

/// Runs the sweeps.
pub fn run(scale: Scale) -> Fig4Data {
    let fracs: Vec<f64> = match scale {
        Scale::Test => vec![10.0, 20.0],
        _ => grids::FIG4_FRACS.to_vec(),
    };
    Fig4Data {
        no_history: saio_sweep(scale, 3, &fracs, HistoryLen::None),
        infinite_history: saio_sweep(scale, 3, &fracs, HistoryLen::Infinite),
    }
}

/// Renders the report.
pub fn report(scale: Scale) -> String {
    let d = run(scale);
    let rows: Vec<Vec<String>> = d
        .no_history
        .iter()
        .zip(&d.infinite_history)
        .map(|(h0, hinf)| {
            vec![
                fmt_f(h0.x, 1),
                fmt_f(h0.mean, 2),
                fmt_f(h0.min, 2),
                fmt_f(h0.max, 2),
                fmt_f(hinf.mean, 2),
                fmt_f(hinf.min, 2),
                fmt_f(hinf.max, 2),
            ]
        })
        .collect();
    format!(
        "== Figure 4: SAIO accuracy (achieved GC-I/O % vs requested) ==\n\
         (mean/min/max over seeds; h0 = c_hist 0, hinf = c_hist ∞)\n{}",
        render_table(
            &[
                "req.%",
                "h0.mean",
                "h0.min",
                "h0.max",
                "hinf.mean",
                "hinf.min",
                "hinf.max"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn achieved_tracks_requested() {
        let d = run(Scale::Test);
        for p in &d.no_history {
            if p.mean.is_finite() {
                // Loose band at miniature scale; the full-scale check
                // lives in the integration tests.
                assert!(
                    (p.mean - p.x).abs() < p.x.max(5.0),
                    "requested {} achieved {}",
                    p.x,
                    p.mean
                );
            }
        }
    }

    #[test]
    fn report_renders() {
        assert!(report(Scale::Test).contains("Figure 4"));
    }
}
