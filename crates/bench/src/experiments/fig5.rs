//! Figure 5: SAGA accuracy as a function of the requested garbage
//! percentage, per estimator.
//!
//! Expected shape (paper §4.1.2): the oracle tracks the diagonal almost
//! perfectly; FGS/HB is close with a small systematic "bump"; CGS/CB is
//! poor — its estimate extrapolates the yield of the (deliberately
//! garbage-rich) partition UPDATEDPOINTER selects to the whole database,
//! so it *overestimates* garbage, collects too eagerly, and achieves far
//! less garbage than requested, with wide error bars.

use odbgc_sim::core_policies::EstimatorKind;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::SweepPoint;

use crate::common::{grids, saga_sweep};
use crate::scale::Scale;

/// The three sweeps.
pub struct Fig5Data {
    /// Sweep with the exact oracle.
    pub oracle: Vec<SweepPoint>,
    /// Sweep with CGS/CB.
    pub cgs_cb: Vec<SweepPoint>,
    /// Sweep with FGS/HB (h = 0.8).
    pub fgs_hb: Vec<SweepPoint>,
}

/// Runs the sweeps.
pub fn run(scale: Scale) -> Fig5Data {
    let fracs: Vec<f64> = match scale {
        Scale::Test => vec![10.0, 20.0],
        _ => grids::FIG5_FRACS.to_vec(),
    };
    Fig5Data {
        oracle: saga_sweep(scale, 3, &fracs, EstimatorKind::Oracle),
        cgs_cb: saga_sweep(scale, 3, &fracs, EstimatorKind::CgsCb),
        fgs_hb: saga_sweep(scale, 3, &fracs, EstimatorKind::fgs_hb_default()),
    }
}

/// Renders the report.
pub fn report(scale: Scale) -> String {
    let d = run(scale);
    let rows: Vec<Vec<String>> = d
        .oracle
        .iter()
        .zip(d.cgs_cb.iter().zip(&d.fgs_hb))
        .map(|(o, (c, f))| {
            vec![
                fmt_f(o.x, 1),
                fmt_f(o.mean, 2),
                fmt_f(f.mean, 2),
                fmt_f(f.min, 2),
                fmt_f(f.max, 2),
                fmt_f(c.mean, 2),
                fmt_f(c.min, 2),
                fmt_f(c.max, 2),
            ]
        })
        .collect();
    format!(
        "== Figure 5: SAGA accuracy (achieved garbage % vs requested) ==\n\
         (mean garbage % sampled at each event, post-preamble, over seeds)\n{}",
        render_table(
            &["req.%", "oracle", "fgs-hb", "fgs.min", "fgs.max", "cgs-cb", "cgs.min", "cgs.max"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_quality_ordering_holds() {
        let d = run(Scale::Test);
        // At each requested point, the oracle's error is no worse than
        // CGS/CB's (quality ordering; FGS/HB asserted at full scale in
        // the integration tests where the signal is strong).
        for (o, c) in d.oracle.iter().zip(&d.cgs_cb) {
            if o.mean.is_finite() && c.mean.is_finite() {
                let oracle_err = (o.mean - o.x).abs();
                let cgs_err = (c.mean - c.x).abs();
                assert!(
                    oracle_err <= cgs_err + 2.0,
                    "req {}: oracle err {oracle_err} vs cgs err {cgs_err}",
                    o.x
                );
            }
        }
    }

    #[test]
    fn report_renders() {
        assert!(report(Scale::Test).contains("Figure 5"));
    }
}
