//! One module per reproduced table/figure (see the crate docs for the
//! index).

pub mod ablation;
pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod mixed;
pub mod motivation;
pub mod strawman;
pub mod table1;

use crate::scale::Scale;

/// Runs every experiment in paper order, concatenating the reports.
pub fn all_reports(scale: Scale) -> String {
    let sections = [
        table1::report(scale),
        fig2::report(scale),
        fig1::report(scale),
        strawman::report(scale),
        motivation::report(scale),
        fig4::report(scale),
        fig5::report(scale),
        fig6::report(scale),
        fig7::report_7a(scale),
        fig7::report_7b(scale),
        fig8::report(scale),
        ablation::report(scale),
        mixed::report(scale),
        extensions::report(scale),
    ];
    sections.join("\n")
}
