//! Figure 1: the cost of the collection-rate choice.
//!
//! Sweeps a fixed collection rate (pointer overwrites per collection) and
//! reports (a) total I/O operations and (b) total garbage collected.
//! Expected shape: more frequent collection (small rate) costs many more
//! I/O operations; infrequent collection (large rate) collects little of
//! the garbage — the time/space trade-off motivating the whole paper.

use odbgc_sim::core_policies::PolicySpec;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::sweep_point;

use crate::common::{grids, sweep_plan};
use crate::scale::Scale;

/// The aggregated data behind both panels.
pub struct Fig1Data {
    /// `(rate, total-I/O point, garbage-collected point)`.
    pub rows: Vec<(u64, odbgc_sim::SweepPoint, odbgc_sim::SweepPoint)>,
}

/// Runs the sweep.
pub fn run(scale: Scale) -> Fig1Data {
    let rates: Vec<u64> = match scale {
        Scale::Test => vec![10, 40, 160],
        _ => grids::FIG1_RATES.to_vec(),
    };
    let plan = sweep_plan(
        scale,
        3,
        &scale.seeds(),
        rates
            .iter()
            .map(|&rate| (rate as f64, PolicySpec::fixed(rate))),
    );
    let rows = plan
        .run()
        .cells
        .iter()
        .zip(rates)
        .map(|(cell, rate)| {
            // Aggregate the successful seeds; a failed seed shrinks the
            // run count instead of aborting the figure.
            let total_io: Vec<f64> = cell
                .outcome
                .successes()
                .map(|r| r.total_io() as f64)
                .collect();
            let collected: Vec<f64> = cell
                .outcome
                .successes()
                .map(|r| r.total_garbage_collected as f64 / 1024.0)
                .collect();
            (
                rate,
                sweep_point(rate as f64, &total_io),
                sweep_point(rate as f64, &collected),
            )
        })
        .collect();
    Fig1Data { rows }
}

/// Renders the report.
pub fn report(scale: Scale) -> String {
    let data = run(scale);
    let rows: Vec<Vec<String>> = data
        .rows
        .iter()
        .map(|(rate, io, coll)| {
            vec![
                rate.to_string(),
                fmt_f(io.mean, 0),
                fmt_f(io.min, 0),
                fmt_f(io.max, 0),
                fmt_f(coll.mean, 1),
                fmt_f(coll.min, 1),
                fmt_f(coll.max, 1),
            ]
        })
        .collect();
    format!(
        "== Figure 1: fixed collection rate vs I/O (a) and garbage collected (b) ==\n\
         (rate in pointer overwrites per collection; I/O in page operations;\n\
         garbage collected in KiB; mean/min/max over {} runs)\n{}",
        data.rows.first().map(|(_, p, _)| p.runs).unwrap_or(0),
        render_table(
            &["rate", "io.mean", "io.min", "io.max", "gc.KiB", "gc.min", "gc.max"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_falls_and_garbage_collected_falls_with_rate() {
        let data = run(Scale::Test);
        assert!(data.rows.len() >= 3);
        let first = &data.rows.first().unwrap();
        let last = &data.rows.last().unwrap();
        // Collecting often costs more I/O…
        assert!(first.1.mean > last.1.mean, "I/O must fall with rate");
        // …and collecting rarely reclaims less garbage in total.
        assert!(
            first.2.mean >= last.2.mean,
            "garbage collected must not rise with rate"
        );
    }

    #[test]
    fn report_renders() {
        let r = report(Scale::Test);
        assert!(r.contains("Figure 1"));
        assert!(r.lines().count() > 5);
    }
}
