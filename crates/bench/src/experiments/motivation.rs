//! §2 motivation: pointer overwrites — not allocation — track garbage.
//!
//! Programming-language collectors often trigger on allocation volume,
//! and Yong–Naughton–Yu carried that heuristic over ("collection is
//! triggered … after a fixed amount of storage is allocated"). §2 argues
//! the correlation breaks in object databases: GenDB and the reinsertion
//! halves of the reorganizations allocate heavily while creating little
//! or no garbage, so an allocation trigger collects exactly when there is
//! nothing to collect.
//!
//! This experiment runs an overwrite-triggered and an allocation-triggered
//! fixed policy calibrated to the *same number of collections*, and
//! compares where the collections land (how many during the garbage-free
//! GenDB phase), how many reclaim nothing at all, and the garbage level
//! each achieves for its I/O.

use odbgc_sim::core_policies::{AllocationRatePolicy, FixedRatePolicy};
use odbgc_sim::oo7::Oo7App;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::{run_single, RunResult};

use crate::scale::Scale;

/// Collections performed before the Reorg1 phase marker (i.e. during
/// GenDB, when the database contains no garbage at all).
pub fn collections_during_gendb(r: &RunResult) -> u64 {
    r.phases
        .iter()
        .find(|(n, _, _)| n == "Reorg1")
        .map(|(_, _, c)| *c)
        .unwrap_or(0)
}

/// Runs both policies, calibrating the allocation trigger to match the
/// overwrite policy's collection count.
pub fn run(scale: Scale) -> (RunResult, RunResult) {
    let (trace, _) = Oo7App::standard(scale.params(3), scale.series_seed()).generate();
    let config = scale.sim_config();
    let rate = match scale {
        Scale::Test => 25,
        _ => 200,
    };
    let mut overwrite_policy = FixedRatePolicy::new(rate);
    let by_overwrites =
        run_single(&trace, &config, &mut overwrite_policy).expect("OO7 trace replays cleanly");

    // Calibrate: total allocation / target collection count.
    let total_alloc: u64 = {
        let stats = trace.stats();
        stats.bytes_allocated
    };
    let bytes_per_coll = (total_alloc / by_overwrites.collection_count().max(1)).max(1);
    let mut alloc_policy = AllocationRatePolicy::new(bytes_per_coll);
    let by_allocation =
        run_single(&trace, &config, &mut alloc_policy).expect("OO7 trace replays cleanly");
    (by_overwrites, by_allocation)
}

/// Collections that reclaimed nothing at all (pure I/O waste).
pub fn zero_yield_collections(r: &RunResult) -> u64 {
    r.collections
        .iter()
        .filter(|c| c.bytes_reclaimed == 0)
        .count() as u64
}

fn row(name: &str, r: &RunResult) -> Vec<String> {
    vec![
        name.to_string(),
        r.collection_count().to_string(),
        collections_during_gendb(r).to_string(),
        zero_yield_collections(r).to_string(),
        fmt_f(r.garbage_pct_mean.unwrap_or(f64::NAN), 2),
        r.gc_io_total.to_string(),
    ]
}

/// Renders the report.
pub fn report(scale: Scale) -> String {
    let (by_ow, by_alloc) = run(scale);
    let rows = vec![
        row("overwrite-triggered", &by_ow),
        row("allocation-triggered", &by_alloc),
    ];
    format!(
        "== §2 motivation: overwrite vs allocation triggering ==\n\
         (calibrated to similar total collections; GenDB contains zero\n\
         garbage, so collections there — and any zero-yield collection —\n\
         are pure I/O waste)\n{}",
        render_table(
            &[
                "trigger",
                "colls",
                "colls in GenDB",
                "zero-yield colls",
                "mean garbage %",
                "gc.io"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_trigger_wastes_collections_on_gendb() {
        let (by_ow, by_alloc) = run(Scale::Test);
        // The overwrite trigger cannot fire during GenDB (no overwrites);
        // the allocation trigger fires repeatedly there.
        assert_eq!(collections_during_gendb(&by_ow), 0);
        assert!(
            collections_during_gendb(&by_alloc) > 0,
            "allocation trigger should collect during GenDB"
        );
    }

    #[test]
    fn allocation_trigger_wastes_more_collections_overall() {
        let (by_ow, by_alloc) = run(Scale::Test);
        assert!(
            zero_yield_collections(&by_alloc) > zero_yield_collections(&by_ow),
            "allocation-triggered zero-yield {} should exceed overwrite-triggered {}",
            zero_yield_collections(&by_alloc),
            zero_yield_collections(&by_ow)
        );
    }

    #[test]
    fn report_renders() {
        assert!(report(Scale::Test).contains("allocation-triggered"));
    }
}
