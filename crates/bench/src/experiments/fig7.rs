//! Figure 7: the FGS/HB history-parameter study (7a) and the detailed
//! time-varying view of one configuration (7b).
//!
//! 7a: estimated vs actual garbage percentage over collections for
//! `h ∈ {0.5, 0.8, 0.95}` at a requested 10%. Expected: `h = 0.95` adapts
//! sluggishly with large swings; `h = 0.5` reacts fast but develops an
//! oscillation; `h = 0.8` is the practical middle ground the paper uses.
//!
//! 7b: collection rate (the realized interval in overwrites), collection
//! yield (bytes reclaimed) and garbage percentage over collections at
//! `h = 0.8`. Expected: high cold-start rates, a settling interval, and a
//! yield drop when Reorg2's less-clustered garbage arrives.

use odbgc_sim::core_policies::{EstimatorKind, SagaPolicy};
use odbgc_sim::oo7::Oo7App;
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::{run_single, RunResult, SimConfig};

use crate::common::grids;
use crate::scale::Scale;

/// Requested garbage percentage for the study.
pub const REQUESTED_PCT: f64 = 10.0;

/// Runs the SAGA/FGS-HB series for one history factor.
pub fn run_with_h(scale: Scale, h: f64) -> RunResult {
    let params = scale.params(3);
    let (trace, _) = Oo7App::standard(params, scale.series_seed()).generate();
    let kind = EstimatorKind::FgsHb { h };
    let config = SimConfig {
        shadow_estimator: Some(kind),
        ..scale.sim_config()
    };
    let mut policy = SagaPolicy::new(scale.saga_config(REQUESTED_PCT / 100.0), kind.build());
    run_single(&trace, &config, &mut policy).expect("OO7 trace replays cleanly")
}

/// Renders Figure 7a.
pub fn report_7a(scale: Scale) -> String {
    let mut out = String::from("== Figure 7a: FGS/HB history-parameter study (req 10%) ==\n");
    for &h in &grids::FIG7A_H {
        let r = run_with_h(scale, h);
        let rows: Vec<Vec<String>> = r
            .collections
            .iter()
            .map(|c| {
                vec![
                    c.index.to_string(),
                    fmt_f(c.actual_garbage_pct(), 2),
                    fmt_f(c.estimated_garbage_pct().unwrap_or(f64::NAN), 2),
                ]
            })
            .collect();
        out.push_str(&format!(
            "-- h = {h} --\n{}",
            render_table(&["coll", "actual.%", "estimated.%"], &rows)
        ));
    }
    out
}

/// Renders Figure 7b.
pub fn report_7b(scale: Scale) -> String {
    let r = run_with_h(scale, 0.8);
    let rows: Vec<Vec<String>> = r
        .collections
        .iter()
        .map(|c| {
            vec![
                c.index.to_string(),
                c.interval_overwrites.to_string(),
                fmt_f(c.bytes_reclaimed as f64 / 1024.0, 2),
                fmt_f(c.actual_garbage_pct(), 2),
            ]
        })
        .collect();
    format!(
        "== Figure 7b: collection rate, yield, and garbage over time (h=0.8, req 10%) ==\n{}",
        render_table(&["coll", "interval.ow", "yield.KiB", "garbage.%"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_factors_produce_runs() {
        for &h in &grids::FIG7A_H {
            let r = run_with_h(Scale::Test, h);
            assert!(r.collection_count() > 0, "h={h} produced no collections");
        }
    }

    #[test]
    fn history_factor_changes_behavior_and_estimates_stay_finite() {
        // The estimate itself is GPPO_h × outstanding overwrites, so its
        // step size is workload-dominated (not a smoothness proxy); what
        // must hold is that h actually influences the control loop and
        // every recorded estimate is a sane number. (GPPO smoothness
        // itself is unit-tested in odbgc-core's Ewma.)
        let series = |h: f64| {
            run_with_h(Scale::Test, h)
                .collections
                .iter()
                .filter_map(|c| c.estimated_garbage_pct())
                .collect::<Vec<f64>>()
        };
        let a = series(0.0);
        let b = series(0.95);
        assert!(!a.is_empty() && !b.is_empty());
        for v in a.iter().chain(&b) {
            assert!(v.is_finite() && *v >= 0.0, "estimate {v} out of range");
        }
        assert_ne!(a, b, "history factor must affect the run");
    }

    #[test]
    fn reports_render() {
        assert!(report_7a(Scale::Test).contains("h = 0.8"));
        assert!(report_7b(Scale::Test).contains("interval.ow"));
    }
}
