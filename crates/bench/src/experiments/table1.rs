//! Table 1 + Figure 3: OO7 database parameters and measured structure.
//!
//! Prints the Small′ parameter column of Table 1 and, for each
//! connectivity the paper measures (3, 6, 9), the generated database's
//! census: object counts, bytes, average object size (paper: ≈ 133 B) and
//! average connectivity (paper: ≈ 4 pointers per object), plus the
//! database size range (paper: ≈ 3.7–7.9 MB of allocated storage over
//! the application's lifetime).

use odbgc_sim::core_policies::FixedRatePolicy;
use odbgc_sim::oo7::{Kind, Oo7App};
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::{SimConfig, Simulator};

use crate::scale::Scale;

/// Renders the report.
pub fn report(scale: Scale) -> String {
    let p = scale.params(3);
    let param_rows = vec![
        vec!["NumAtomicPerComp".into(), p.num_atomic_per_comp.to_string()],
        vec!["NumConnPerAtomic".into(), "3/6/9".into()],
        vec!["DocumentSize (bytes)".into(), p.document_size.to_string()],
        vec![
            "ManualSize (kbytes)".into(),
            (p.manual_size / 1024).to_string(),
        ],
        vec!["NumCompPerModule".into(), p.num_comp_per_module.to_string()],
        vec!["NumAssmPerAssm".into(), p.num_assm_per_assm.to_string()],
        vec!["NumAssmLevels".into(), p.num_assm_levels.to_string()],
        vec!["NumCompPerAssm".into(), p.num_comp_per_assm.to_string()],
        vec!["NumModules".into(), p.num_modules.to_string()],
    ];

    let connectivities: Vec<u32> = match scale {
        Scale::Test => vec![2, 3],
        _ => vec![3, 6, 9],
    };
    let mut census_rows = Vec::new();
    for conn in connectivities {
        let params = scale.params(conn);
        let app = Oo7App::standard(params, scale.series_seed());
        let (trace, chars) = app.generate();
        // Allocated-storage footprint over the run (DBSize at the end),
        // measured with a collector running at a moderate fixed rate.
        let mut policy = FixedRatePolicy::new(200);
        let config = SimConfig {
            store: scale.sim_config().store,
            ..SimConfig::default()
        };
        let result = Simulator::new(config)
            .replay(&trace, &mut policy, odbgc_sim::ReplayOptions::new())
            .expect("trace replays");
        census_rows.push(vec![
            conn.to_string(),
            chars.total_objects().to_string(),
            chars.counts[&Kind::AtomicPart].to_string(),
            chars.counts[&Kind::Connection].to_string(),
            fmt_f(chars.avg_object_size(), 1),
            fmt_f(chars.avg_connectivity(), 2),
            fmt_f(chars.total_bytes() as f64 / 1_048_576.0, 2),
            fmt_f(result.final_db_size as f64 / 1_048_576.0, 2),
        ]);
    }
    format!(
        "== Table 1: OO7 Small' parameters ==\n{}\n\
         == Figure 3 / §3.3: measured database structure ==\n\
         (initial live census; DBSize = allocated partitions at end of run)\n{}",
        render_table(&["parameter", "Small'"], &param_rows),
        render_table(
            &[
                "conn",
                "objects",
                "parts",
                "conns",
                "avg.size",
                "avg.ptrs",
                "live.MB",
                "dbsize.MB"
            ],
            &census_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_paper_parameters() {
        let r = report(Scale::Test);
        assert!(r.contains("NumAtomicPerComp"));
        assert!(r.contains("NumModules"));
        assert!(r.contains("avg.size"));
    }
}
