//! Figure 8: sensitivity of policy accuracy to database connectivity.
//!
//! Repeats the SAIO and SAGA (FGS/HB) accuracy sweeps with
//! `NumConnPerAtomic` set to 6 and 9 — one run per data point, as in the
//! paper — and expects the same requested-tracks-achieved shape as at
//! connectivity 3 (Figures 4 and 5).

use odbgc_sim::core_policies::{EstimatorKind, HistoryLen};
use odbgc_sim::report::{fmt_f, render_table};
use odbgc_sim::SweepPoint;

use crate::common::{grids, saga_sweep_seeded, saio_sweep_seeded};
use crate::scale::Scale;

/// Sweeps per connectivity.
pub struct Fig8Data {
    /// `(connectivity, SAIO sweep, SAGA FGS/HB sweep)`.
    pub per_connectivity: Vec<(u32, Vec<SweepPoint>, Vec<SweepPoint>)>,
}

/// Runs the sweeps. Figure 8 uses a single run per data point (§4.2).
pub fn run(scale: Scale) -> Fig8Data {
    let (conns, saio_fracs, saga_fracs): (Vec<u32>, Vec<f64>, Vec<f64>) = match scale {
        Scale::Test => (vec![2, 3], vec![10.0], vec![10.0]),
        _ => (
            vec![6, 9],
            grids::FIG4_FRACS.to_vec(),
            grids::FIG5_FRACS.to_vec(),
        ),
    };
    let seeds = [scale.series_seed()];
    let per_connectivity = conns
        .into_iter()
        .map(|conn| {
            (
                conn,
                saio_sweep_seeded(scale, conn, &saio_fracs, HistoryLen::None, &seeds),
                saga_sweep_seeded(
                    scale,
                    conn,
                    &saga_fracs,
                    EstimatorKind::fgs_hb_default(),
                    &seeds,
                ),
            )
        })
        .collect();
    Fig8Data { per_connectivity }
}

/// Renders the report.
pub fn report(scale: Scale) -> String {
    let d = run(scale);
    let mut out = String::from("== Figure 8: sensitivity to database connectivity ==\n");
    for (conn, saio, saga) in &d.per_connectivity {
        let saio_rows: Vec<Vec<String>> = saio
            .iter()
            .map(|p| vec![fmt_f(p.x, 1), fmt_f(p.mean, 2)])
            .collect();
        let saga_rows: Vec<Vec<String>> = saga
            .iter()
            .map(|p| vec![fmt_f(p.x, 1), fmt_f(p.mean, 2)])
            .collect();
        out.push_str(&format!(
            "-- connectivity {conn}: SAIO --\n{}-- connectivity {conn}: SAGA (FGS/HB) --\n{}",
            render_table(&["req.io%", "achieved"], &saio_rows),
            render_table(&["req.garb%", "achieved"], &saga_rows),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_cover_both_connectivities() {
        let d = run(Scale::Test);
        assert_eq!(d.per_connectivity.len(), 2);
        for (conn, saio, saga) in &d.per_connectivity {
            assert!(*conn >= 2);
            assert!(!saio.is_empty());
            assert!(!saga.is_empty());
        }
    }

    #[test]
    fn report_renders() {
        assert!(report(Scale::Test).contains("connectivity"));
    }
}
