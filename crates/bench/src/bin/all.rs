//! Regenerates every table and figure, in paper order.
fn main() {
    let scale = odbgc_bench::scale_from_args();
    println!("{}", odbgc_bench::experiments::all_reports(scale));
}
