//! Regenerates every table and figure, in paper order.
fn main() {
    let scale = odbgc_bench::Scale::from_env();
    println!("{}", odbgc_bench::experiments::all_reports(scale));
}
