//! Regenerates the report for this experiment (see crate docs).
fn main() {
    let scale = odbgc_bench::Scale::from_env();
    println!("{}", odbgc_bench::experiments::strawman::report(scale));
}
