//! Regenerates the report for this experiment (see crate docs).
fn main() {
    let scale = odbgc_bench::scale_from_args();
    println!("{}", odbgc_bench::experiments::fig2::report(scale));
}
