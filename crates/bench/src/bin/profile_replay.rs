//! Ad-hoc breakdown of oo7 replay cost by event type.

use std::time::Instant;

use odbgc_oo7::{Oo7App, Oo7Params};
use odbgc_store::{Event, Store, StoreConfig};

fn main() {
    let (trace, _) = Oo7App::standard(Oo7Params::small_prime(3), 1).generate();
    println!("events: {}", trace.len());
    let mut counts = std::collections::HashMap::new();
    for ev in trace.iter() {
        *counts.entry(kind(ev)).or_insert(0u64) += 1;
    }
    println!("{counts:?}");

    // Warm-up plus total.
    for _ in 0..3 {
        let mut store = Store::new(StoreConfig::default());
        let t = Instant::now();
        for ev in trace.iter() {
            store.apply(ev).expect("replay");
        }
        println!("total: {:?}", t.elapsed());
    }

    // Elimination variants: measure cost shares by knocking out one
    // component at a time.
    use odbgc_store::AllocPolicy;
    let variants: Vec<(&str, StoreConfig)> = vec![
        ("default", StoreConfig::default()),
        (
            "huge_buffer",
            StoreConfig {
                buffer_pages: 65536,
                ..StoreConfig::default()
            },
        ),
        (
            "append_only",
            StoreConfig {
                alloc_policy: AllocPolicy::AppendOnly,
                ..StoreConfig::default()
            },
        ),
        (
            "page_4k",
            StoreConfig {
                page_size: 4096,
                ..StoreConfig::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let mut best = u128::MAX;
        for _ in 0..5 {
            let mut store = Store::new(cfg.clone());
            let t = Instant::now();
            for ev in trace.iter() {
                store.apply(ev).expect("replay");
            }
            best = best.min(t.elapsed().as_nanos());
        }
        println!("{name:<12} best {:.3}ms", best as f64 / 1e6);
    }
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..5 {
        for ev in trace.iter() {
            acc += matches!(ev, Event::SlotWrite { .. }) as u64;
        }
    }
    println!(
        "iter_only    {:.3}ms ({acc})",
        t.elapsed().as_nanos() as f64 / 5.0 / 1e6
    );
    // Per-kind attribution (adds timer overhead; relative shares only).
    let mut store = Store::new(StoreConfig::default());
    let mut buckets: std::collections::HashMap<&str, (u64, u128)> = Default::default();
    for ev in trace.iter() {
        let t = Instant::now();
        store.apply(ev).expect("replay");
        let ns = t.elapsed().as_nanos();
        let e = buckets.entry(kind(ev)).or_insert((0, 0));
        e.0 += 1;
        e.1 += ns;
    }
    let mut rows: Vec<_> = buckets.into_iter().collect();
    rows.sort_by_key(|(_, (_, ns))| std::cmp::Reverse(*ns));
    for (k, (n, ns)) in rows {
        println!(
            "{k:<12} n={n:<8} total={:.2}ms avg={}ns",
            ns as f64 / 1e6,
            ns / n as u128
        );
    }
}

fn kind(ev: &Event) -> &'static str {
    match ev {
        Event::Create { .. } => "Create",
        Event::SlotWrite { .. } => "SlotWrite",
        Event::Access { .. } => "Access",
        Event::RootAdd { .. } => "RootAdd",
        Event::RootRemove { .. } => "RootRemove",
        _ => "Other",
    }
}
