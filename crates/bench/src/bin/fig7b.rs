//! Regenerates Figure 7b (rate / yield / garbage over collections).
fn main() {
    let scale = odbgc_bench::scale_from_args();
    println!("{}", odbgc_bench::experiments::fig7::report_7b(scale));
}
