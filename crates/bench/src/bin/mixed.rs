//! Regenerates the mixed-workload experiment (two interleaved apps).
fn main() {
    let scale = odbgc_bench::Scale::from_env();
    println!("{}", odbgc_bench::experiments::mixed::report(scale));
}
