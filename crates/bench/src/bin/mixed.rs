//! Regenerates the mixed-workload experiment (two interleaved apps).
fn main() {
    let scale = odbgc_bench::scale_from_args();
    println!("{}", odbgc_bench::experiments::mixed::report(scale));
}
