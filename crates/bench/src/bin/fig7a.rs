//! Regenerates Figure 7a (FGS/HB history-parameter study).
fn main() {
    let scale = odbgc_bench::Scale::from_env();
    println!("{}", odbgc_bench::experiments::fig7::report_7a(scale));
}
