//! Regenerates Figure 7a (FGS/HB history-parameter study).
fn main() {
    let scale = odbgc_bench::scale_from_args();
    println!("{}", odbgc_bench::experiments::fig7::report_7a(scale));
}
