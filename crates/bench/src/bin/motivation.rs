//! Regenerates the §2 motivation experiment (overwrite vs allocation
//! triggering).
fn main() {
    let scale = odbgc_bench::Scale::from_env();
    println!("{}", odbgc_bench::experiments::motivation::report(scale));
}
