//! Regenerates the §2 motivation experiment (overwrite vs allocation
//! triggering).
fn main() {
    let scale = odbgc_bench::scale_from_args();
    println!("{}", odbgc_bench::experiments::motivation::report(scale));
}
