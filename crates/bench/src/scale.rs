//! Experiment scale control.

use odbgc_sim::oo7::Oo7Params;
use odbgc_sim::SimConfig;

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The paper's protocol: Small′ database, 10 seeds, 10-collection
    /// preamble.
    #[default]
    Full,
    /// Small′ database, 3 seeds — same shapes, faster.
    Quick,
    /// Miniature database, 1 seed — for smoke tests only.
    Test,
}

impl Scale {
    /// Reads `ODBGC_SCALE` (`full` / `quick` / `test`), defaulting to Full.
    pub fn from_env() -> Scale {
        match std::env::var("ODBGC_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("test") => Scale::Test,
            _ => Scale::Full,
        }
    }

    /// The seeds to run (the paper uses 10 runs per data point).
    pub fn seeds(self) -> Vec<u64> {
        match self {
            Scale::Full => (1..=10).collect(),
            Scale::Quick => vec![1, 2, 3],
            Scale::Test => vec![1],
        }
    }

    /// The seed used for single-run time-series figures.
    pub fn series_seed(self) -> u64 {
        1
    }

    /// Database parameters at a given connectivity.
    pub fn params(self, connectivity: u32) -> Oo7Params {
        match self {
            Scale::Full | Scale::Quick => Oo7Params::small_prime(connectivity),
            Scale::Test => {
                let mut p = Oo7Params::tiny();
                // Tiny composites have 6 parts; clamp connectivity below.
                p.num_conn_per_atomic = connectivity.min(p.num_atomic_per_comp - 2);
                p
            }
        }
    }

    /// Simulation configuration (paper store geometry; shorter preamble at
    /// test scale where runs have few collections).
    pub fn sim_config(self) -> SimConfig {
        match self {
            Scale::Full | Scale::Quick => SimConfig::default(),
            Scale::Test => SimConfig::tiny(),
        }
    }

    /// Preamble used for post-hoc windowed statistics.
    pub fn preamble(self) -> u64 {
        self.sim_config().preamble_collections
    }

    /// SAGA configuration for a requested garbage fraction. Full/Quick use
    /// the paper's clamps (Δt ∈ [2, 1000] overwrites); the miniature test
    /// database produces only a few hundred overwrites in total, so its
    /// Δt_max shrinks proportionally.
    pub fn saga_config(self, frac: f64) -> odbgc_core::SagaConfig {
        let mut cfg = odbgc_core::SagaConfig::new(frac);
        if self == Scale::Test {
            cfg.dt_max = 20;
        }
        cfg
    }

    /// [`Self::saga_config`] as a plan cell spec.
    pub fn saga_spec(
        self,
        frac: f64,
        estimator: odbgc_core::EstimatorKind,
    ) -> odbgc_core::PolicySpec {
        if self == Scale::Test {
            odbgc_core::PolicySpec::saga_dt_max(frac, estimator, 20)
        } else {
            odbgc_core::PolicySpec::saga(frac, estimator)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_protocol() {
        assert_eq!(Scale::Full.seeds().len(), 10);
        assert_eq!(Scale::Full.preamble(), 10);
        assert_eq!(Scale::Full.params(3).num_comp_per_module, 150);
    }

    #[test]
    fn test_scale_is_miniature() {
        assert_eq!(Scale::Test.seeds(), vec![1]);
        let p = Scale::Test.params(9);
        assert!(p.num_conn_per_atomic < p.num_atomic_per_comp);
        p.validate();
    }

    #[test]
    fn connectivity_flows_through() {
        assert_eq!(Scale::Full.params(6).num_conn_per_atomic, 6);
        assert_eq!(Scale::Quick.params(9).num_conn_per_atomic, 9);
    }
}
